"""Figure 6: average latency of the five path-selection heuristics.

Paper shape to reproduce: on uniform traffic STATIC-XY is (marginally) the
best and all heuristics are close; on the non-uniform patterns the
traffic-sensitive heuristics (MIN-MUX, LFU, LRU, MAX-CREDIT) clearly beat
STATIC-XY at medium-to-high load.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.experiments.path_selection import PAPER_SELECTORS, run_path_selection_study

_CASES = [
    ("uniform", (0.45,)),
    ("transpose", (0.35,)),
    ("bit-reversal", (0.35,)),
    ("shuffle", (0.35,)),
]

_COLUMNS = ["traffic", "load"] + [f"{name}_latency" for name in PAPER_SELECTORS]


@pytest.mark.parametrize(("traffic", "loads"), _CASES, ids=[case[0] for case in _CASES])
def bench_figure6_path_selection(benchmark, bench_config, report, traffic, loads):
    rows = run_once(
        benchmark,
        lambda: run_path_selection_study(
            bench_config,
            selectors=PAPER_SELECTORS,
            traffic_patterns=(traffic,),
            loads=loads,
        ),
    )
    benchmark.extra_info["rows"] = rows
    report(
        f"figure6_{traffic}",
        f"Figure 6 ({traffic}): average latency per path-selection heuristic",
        rows,
        columns=_COLUMNS,
    )
    for row in rows:
        dynamic_best = min(
            row[f"{name}_latency"] for name in ("min-mux", "lfu", "lru", "max-credit")
        )
        if traffic == "uniform":
            # All heuristics stay in the same ballpark on uniform traffic.
            assert dynamic_best <= 1.5 * row["static-xy_latency"]
        else:
            # Traffic-sensitive selection must not lose to STATIC-XY on the
            # non-uniform patterns (the paper shows it winning clearly).
            assert dynamic_best <= 1.05 * row["static-xy_latency"]
