"""Table 3: impact of message length on the look-ahead benefit.

Paper shape to reproduce: the relative improvement of the look-ahead
adaptive router over the no-look-ahead adaptive router shrinks
monotonically as messages get longer (18% at 5 flits down to 6.5% at 50
flits in the paper), because the per-hop pipeline saving is amortised over
more serialization cycles.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.experiments.message_length import run_message_length_study

_COLUMNS = [
    "message_length",
    "lookahead_latency",
    "no_lookahead_latency",
    "pct_improvement",
]


def bench_table3_message_length(benchmark, bench_config, report):
    rows = run_once(
        benchmark,
        lambda: run_message_length_study(
            bench_config, message_lengths=(5, 10, 20, 50), traffic="uniform", load=0.2
        ),
    )
    benchmark.extra_info["rows"] = rows
    report(
        "table3_message_length",
        "Table 3: look-ahead benefit versus message length (uniform, load 0.2)",
        rows,
        columns=_COLUMNS,
    )
    improvements = [row["pct_improvement"] for row in rows]
    # Shorter messages benefit more from saving one pipe stage per hop.
    assert improvements[0] > improvements[-1]
    assert all(value > 0 for value in improvements)
