#!/usr/bin/env python
"""Micro-benchmark: activity-aware kernel vs. the exhaustive reference.

Times complete simulations of a 16x16 mesh (the paper's network) under
both kernel schedules across a range of normalized loads, verifies that
the two schedules produce bit-identical results, and writes the wall-clock
numbers to a JSON file (``BENCH_kernel.json`` at the repository root by
default) so the kernel's performance trajectory is tracked across PRs.

The interesting regimes:

* **low load (<= 0.2)** -- most routers and interfaces are idle most
  cycles; the activity schedule skips them and fast-forwards, so this is
  where the speedup target (>= 3x) applies;
* **high load** -- nearly every component does real work every cycle, so
  the activity schedule can only add bookkeeping; the requirement here is
  *no regression* (speedup ~ 1.0).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full 16x16
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Loads sampled by the full benchmark: the low-load regime the speedup
#: target applies to, plus near- and past-saturation points for the
#: no-regression check.
FULL_LOADS = (0.02, 0.05, 0.1, 0.2, 0.6, 0.8)
SMOKE_LOADS = (0.05, 0.6)


def _base_config(smoke: bool) -> SimulationConfig:
    if smoke:
        return SimulationConfig(
            mesh_dims=(8, 8),
            message_length=20,
            warmup_messages=40,
            measure_messages=150,
            seed=7,
        )
    return SimulationConfig(
        mesh_dims=(16, 16),
        message_length=20,
        warmup_messages=100,
        measure_messages=400,
        seed=7,
    )


def _time_once(config: SimulationConfig, mode: str):
    start = time.perf_counter()
    result = NetworkSimulator(config, kernel_mode=mode).run()
    return time.perf_counter() - start, result


def _time_pair(config: SimulationConfig, repeats: int):
    """Best wall-clock per mode over ``repeats`` interleaved runs.

    The two modes are alternated within each repetition so slow drift in
    the machine's available throughput (noisy neighbours, thermal
    throttling) biases the speedup ratio as little as possible.
    """
    best = {"exhaustive": None, "activity": None}
    results = {}
    for _ in range(repeats):
        for mode in ("exhaustive", "activity"):
            elapsed, result = _time_once(config, mode)
            results[mode] = result
            if best[mode] is None or elapsed < best[mode]:
                best[mode] = elapsed
    return best, results


def run_benchmark(
    smoke: bool = False, repeats: int = 2, loads: Optional[List[float]] = None
) -> Dict[str, object]:
    """Run the kernel comparison and return the JSON-compatible report."""
    base = _base_config(smoke)
    if loads is None:
        loads = list(SMOKE_LOADS if smoke else FULL_LOADS)
    points = []
    for load in loads:
        config = base.variant(normalized_load=load)
        best, results = _time_pair(config, repeats)
        exhaustive_s, activity_s = best["exhaustive"], best["activity"]
        exhaustive, activity = results["exhaustive"], results["activity"]
        identical = exhaustive.to_json() == activity.to_json()
        point = {
            "normalized_load": load,
            "cycles": activity.cycles,
            "exhaustive_seconds": round(exhaustive_s, 4),
            "activity_seconds": round(activity_s, 4),
            "speedup": round(exhaustive_s / activity_s, 3),
            "bit_identical": identical,
        }
        points.append(point)
        print(
            f"load={load:<5} cycles={point['cycles']:<7} "
            f"exhaustive={exhaustive_s:6.2f}s activity={activity_s:6.2f}s "
            f"speedup={point['speedup']:5.2f}x identical={identical}"
        )
    low_load = [p for p in points if p["normalized_load"] <= 0.2]
    report = {
        "benchmark": "kernel",
        "scale": "smoke" if smoke else "full",
        "mesh": "x".join(str(k) for k in base.mesh_dims),
        "message_length": base.message_length,
        "warmup_messages": base.warmup_messages,
        "measure_messages": base.measure_messages,
        "seed": base.seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "points": points,
        "summary": {
            "best_low_load_speedup": max((p["speedup"] for p in low_load), default=None),
            "min_speedup": min(p["speedup"] for p in points),
            "all_bit_identical": all(p["bit_identical"] for p in points),
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 8x8 mesh, two loads, one repetition",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed repetitions per point, best-of (default: 2, smoke: 1)",
    )
    parser.add_argument(
        "--loads",
        default=None,
        metavar="L1,L2,...",
        help="comma-separated normalized loads to sample",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_kernel.json"),
        metavar="FILE",
        help="where to write the JSON report (default: repo-root BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 2)
    loads = (
        [float(part) for part in args.loads.split(",") if part]
        if args.loads
        else None
    )
    report = run_benchmark(smoke=args.smoke, repeats=repeats, loads=loads)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    if not report["summary"]["all_bit_identical"]:
        print("ERROR: kernel schedules disagreed on at least one point", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
