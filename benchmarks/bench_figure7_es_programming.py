"""Figure 7: economical-storage table programming for North-Last routing.

Regenerates the per-destination table of Fig. 7(d): for the router at
(1, 1) of a 3x3 mesh, the sign pair, the fully adaptive candidate ports
and the ports North-Last routing actually programs (the +Y option is
denied whenever an X correction is still pending, to guarantee deadlock
freedom).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.experiments.es_programming import run_es_programming_example

_COLUMNS = ["destination", "sign_x", "sign_y", "candidate_ports", "north_last_ports"]


def bench_figure7_es_programming(benchmark, report):
    rows = run_once(benchmark, run_es_programming_example)
    benchmark.extra_info["rows"] = rows
    report(
        "figure7_es_programming",
        "Figure 7(d): economical-storage table of router (1,1), North-Last routing",
        rows,
        columns=_COLUMNS,
    )
    by_destination = {row["destination"]: row for row in rows}
    assert by_destination[(0, 2)]["north_last_ports"] == "-X"
    assert by_destination[(2, 2)]["north_last_ports"] == "+X"
    assert by_destination[(1, 2)]["north_last_ports"] == "+Y"
