#!/usr/bin/env python
"""Benchmark: streaming-quantile overhead and knee-refinement economy.

Two measurements back the statistical-rigor layer, written to
``BENCH_stats.json`` at the repository root:

* **quantile overhead** -- feeding a latency stream through
  :class:`~repro.stats.latency.RunningStats` with P² p50/p99 trackers,
  against the plain moments-only collector and against the
  ``keep_samples=True`` exact path.  The P² estimators hold five markers
  per quantile instead of the whole sample list (memory-flat at any
  stream length); the report records the wall-clock cost of that and the
  estimation error against the exact percentiles.
* **refinement economy** -- a ``stop.mode="refine"`` load sweep that
  bisects toward the saturation knee of a mesh, against the fixed load
  grid that locates the knee to the same tolerance.  The gate is
  deterministic, not a timing: the refined bracket must enclose the knee
  within tolerance, using strictly fewer simulated load points than the
  equivalent fixed grid.

Usage::

    PYTHONPATH=src python benchmarks/bench_stats.py                # full (16x16)
    PYTHONPATH=src python benchmarks/bench_stats.py --scale smoke  # CI-sized (8x8)

The refinement gates (knee bracketed, fewer points than the fixed grid)
always apply; ``--max-overhead`` optionally gates the streaming-tracker
slowdown ratio for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.config import SimulationConfig
from repro.exec.backend import SerialBackend
from repro.scenario.builtin import refine_sweep_study
from repro.scenario.runner import run_study
from repro.stats.latency import RunningStats

REPO_ROOT = Path(__file__).resolve().parent.parent

QUANTILES = (0.5, 0.99)


def _quantile_overhead(samples: int, seed: int = 7) -> Dict[str, object]:
    """Time one latency stream through the three collector shapes."""
    rng = random.Random(seed)
    values = [rng.expovariate(1.0 / 80.0) + 20.0 for _ in range(samples)]

    plain = RunningStats()
    start = time.perf_counter()
    for value in values:
        plain.add(value)
    plain_seconds = time.perf_counter() - start

    streaming = RunningStats(quantiles=QUANTILES)
    start = time.perf_counter()
    for value in values:
        streaming.add(value)
    streaming_seconds = time.perf_counter() - start

    exact = RunningStats(keep_samples=True)
    start = time.perf_counter()
    for value in values:
        exact.add(value)
    exact_p50 = exact.percentile(0.5)
    exact_p99 = exact.percentile(0.99)
    exact_seconds = time.perf_counter() - start

    def error_pct(estimate: float, truth: float) -> float:
        return abs(estimate - truth) / truth * 100.0 if truth else 0.0

    return {
        "samples": samples,
        "plain_seconds": round(plain_seconds, 4),
        "streaming_seconds": round(streaming_seconds, 4),
        "exact_seconds": round(exact_seconds, 4),
        # Cost of the five-marker trackers over the bare moments loop.
        "overhead_ratio": round(streaming_seconds / plain_seconds, 3),
        "p50_error_pct": round(error_pct(streaming.quantile(0.5), exact_p50), 3),
        "p99_error_pct": round(error_pct(streaming.quantile(0.99), exact_p99), 3),
    }


def _refine_economy(
    mesh: Tuple[int, int], loads: Tuple[float, float], tolerance: float, smoke: bool
) -> Dict[str, object]:
    """Run the knee-seeking sweep and compare against the fixed grid.

    Transpose traffic under dimension-order routing is the curve with a
    pronounced knee inside the swept span (adaptive routing on uniform
    traffic pushes its knee past the bisection bound at these run
    lengths); the measured-message count is sized so the backlog past
    the knee actually trips the latency-explosion detector.
    """
    base = SimulationConfig(
        mesh_dims=mesh,
        traffic="transpose",
        routing="dimension-order",
        message_length=20,
        warmup_messages=150 if smoke else 300,
        measure_messages=1_200 if smoke else 4_800,
        seed=7,
    )
    study = refine_sweep_study(
        base, loads=loads, tolerance=tolerance, max_points=0
    )
    backend = SerialBackend()
    start = time.perf_counter()
    outcome = run_study(study, backend=backend)
    elapsed = time.perf_counter() - start

    executed: List[Tuple[float, bool]] = [
        (point.config.normalized_load, result.saturated)
        for point, result in zip(outcome.points, outcome.results)
    ]
    saturated = [load for load, sat in executed if sat]
    bracket_high = min(saturated) if saturated else None
    unsaturated_below = [
        load for load, sat in executed
        if not sat and bracket_high is not None and load < bracket_high
    ]
    bracket_low = max(unsaturated_below) if unsaturated_below else None
    knee_bracketed = (
        bracket_low is not None
        and bracket_high is not None
        and bracket_high - bracket_low <= tolerance + 1e-12
    )
    # A fixed grid locating the knee to the same resolution must step the
    # whole swept span at the tolerance.
    span = max(loads) - min(loads)
    fixed_grid_points = int(round(span / tolerance)) + 1
    refine_points = len(executed)
    return {
        "mesh": "x".join(str(k) for k in mesh),
        "loads": list(loads),
        "tolerance": tolerance,
        "seconds": round(elapsed, 2),
        "simulations_run": backend.simulations_run,
        "executed_loads": [round(load, 6) for load, _ in executed],
        "bracket_low": bracket_low,
        "bracket_high": bracket_high,
        "knee_bracketed": knee_bracketed,
        "refine_points": refine_points,
        "fixed_grid_points": fixed_grid_points,
        "points_saved": fixed_grid_points - refine_points,
    }


def run_benchmark(smoke: bool = False) -> Dict[str, object]:
    """Run both measurements; returns the JSON report."""
    samples = 50_000 if smoke else 400_000
    overhead = _quantile_overhead(samples)
    print(
        f"quantiles: n={overhead['samples']} plain={overhead['plain_seconds']}s "
        f"streaming={overhead['streaming_seconds']}s "
        f"(x{overhead['overhead_ratio']}) "
        f"p50 err={overhead['p50_error_pct']}% p99 err={overhead['p99_error_pct']}%"
    )
    mesh = (8, 8) if smoke else (16, 16)
    tolerance = 0.1 if smoke else 0.05
    refine = _refine_economy(mesh, (0.1, 0.9), tolerance, smoke)
    print(
        f"refine: mesh={refine['mesh']} knee in "
        f"[{refine['bracket_low']}, {refine['bracket_high']}] "
        f"({refine['refine_points']} points vs {refine['fixed_grid_points']} "
        f"fixed-grid, {refine['seconds']}s)"
    )
    return {
        "benchmark": "stats",
        "scale": "smoke" if smoke else "full",
        "seed": 7,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quantile_overhead": overhead,
        "refine": refine,
        "summary": {
            "overhead_ratio": overhead["overhead_ratio"],
            "p99_error_pct": overhead["p99_error_pct"],
            "knee_bracketed": refine["knee_bracketed"],
            "refine_points": refine["refine_points"],
            "fixed_grid_points": refine["fixed_grid_points"],
            "refine_beats_fixed_grid": (
                refine["refine_points"] < refine["fixed_grid_points"]
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke: CI-sized 8x8 refinement; full: 16x16 (default)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if the streaming-tracker slowdown over the "
        "plain moments loop exceeds RATIO",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_stats.json"),
        metavar="FILE",
        help="where to write the JSON report (default: repo-root BENCH_stats.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.scale == "smoke")
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    summary = report["summary"]
    if not summary["knee_bracketed"]:
        print("ERROR: refinement failed to bracket the saturation knee", file=sys.stderr)
        return 1
    if not summary["refine_beats_fixed_grid"]:
        print(
            f"ERROR: refinement used {summary['refine_points']} points, not fewer "
            f"than the {summary['fixed_grid_points']}-point fixed grid",
            file=sys.stderr,
        )
        return 1
    if args.max_overhead is not None and summary["overhead_ratio"] > args.max_overhead:
        print(
            f"ERROR: streaming-quantile overhead {summary['overhead_ratio']}x "
            f"exceeded the {args.max_overhead}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
