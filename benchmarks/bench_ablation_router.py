"""Ablation benchmarks for the router design choices called out in DESIGN.md.

These are not paper figures; they quantify the sensitivity of the headline
results to the microarchitectural knobs the paper holds fixed:

* pipeline depth (how much of the LA benefit is the single removed stage),
* virtual channels per physical channel (the paper argues VCs are a sunk
  cost; this shows what adaptivity gains from them), and
* per-VC buffer depth (credit round-trip slack).

They run on a deliberately small mesh so the whole ablation suite adds
only a few seconds to the harness.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator


def _ablation_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(
        mesh_dims=(6, 6),
        message_length=20,
        warmup_messages=60,
        measure_messages=400,
        traffic="transpose",
        normalized_load=0.3,
        routing="duato",
        table="economical",
        selector="max-credit",
        seed=7,
    )
    return base.variant(**overrides)


def bench_ablation_pipeline_depth(benchmark, report):
    def study():
        rows = []
        for pipeline in ("proud", "la-proud"):
            result = NetworkSimulator(_ablation_config(pipeline=pipeline)).run()
            rows.append(
                {
                    "pipeline": pipeline,
                    "latency": result.latency,
                    "hops": result.summary.avg_hops,
                    "saturated": result.saturated,
                }
            )
        return rows

    rows = run_once(benchmark, study)
    benchmark.extra_info["rows"] = rows
    report("ablation_pipeline", "Ablation: PROUD vs LA-PROUD pipeline depth", rows)
    la = next(row for row in rows if row["pipeline"] == "la-proud")
    proud = next(row for row in rows if row["pipeline"] == "proud")
    assert la["latency"] < proud["latency"]


def bench_ablation_virtual_channels(benchmark, report):
    def study():
        rows = []
        for vcs in (2, 4, 8):
            result = NetworkSimulator(_ablation_config(vcs_per_port=vcs)).run()
            rows.append(
                {"vcs_per_port": vcs, "latency": result.latency, "saturated": result.saturated}
            )
        return rows

    rows = run_once(benchmark, study)
    benchmark.extra_info["rows"] = rows
    report("ablation_vcs", "Ablation: virtual channels per physical channel", rows)
    # More virtual channels must never make the adaptive router slower by a
    # large factor (they add alternate paths at fixed link bandwidth).
    latencies = {row["vcs_per_port"]: row["latency"] for row in rows}
    assert latencies[4] <= 1.5 * latencies[2]


def bench_ablation_buffer_depth(benchmark, report):
    def study():
        rows = []
        for depth in (2, 5, 10):
            result = NetworkSimulator(_ablation_config(buffer_depth=depth)).run()
            rows.append(
                {"buffer_depth": depth, "latency": result.latency, "saturated": result.saturated}
            )
        return rows

    rows = run_once(benchmark, study)
    benchmark.extra_info["rows"] = rows
    report("ablation_buffers", "Ablation: per-VC flit buffer depth", rows)
    latencies = {row["buffer_depth"]: row["latency"] for row in rows}
    # Deeper buffers absorb credit round trips: latency must not increase.
    assert latencies[10] <= latencies[2] * 1.1


def bench_simulator_throughput(benchmark):
    """Raw simulator speed: cycles simulated per second on a loaded 6x6 mesh.

    Unlike the experiment benchmarks this one is a genuine timing
    microbenchmark (several rounds), useful for tracking performance
    regressions of the simulation kernel itself.
    """
    config = _ablation_config(measure_messages=150, warmup_messages=20)

    def run_simulation():
        return NetworkSimulator(config).run().cycles

    cycles = benchmark(run_simulation)
    assert cycles > 0
