#!/usr/bin/env python
"""Micro-benchmark: flat struct-of-arrays core vs. the object network.

Times complete simulations under both core schedules (both on the default
activity kernel with batched switch allocation and link transport),
verifies that the schedules produce bit-identical latency/throughput
numbers, and writes the wall-clock report to ``BENCH_core.json`` at the
repository root so the core performance trajectory is tracked across PRs.

The measured grid is the regime map of the optimisation:

* **8x8 and 16x16 meshes** -- the test scale and the paper scale;
* **load 0.02** -- almost everything is idle; the flat core's single
  active-index pass and the object core's per-component quiescence both
  skip nearly everything (the flat core must not regress here);
* **load 0.1** -- light traffic, mixed regime;
* **saturation (load 0.8)** -- every router moves flits every cycle, the
  regime the flat core targets: one inlined pass over global arrays
  replaces hundreds of per-component method dispatches per cycle;
* **32x32 saturation** -- a first scaling datapoint beyond the paper
  scale, where the object core's per-component overhead compounds.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py                # full grid
    PYTHONPATH=src python benchmarks/bench_core.py --scale smoke  # CI-sized

The CI smoke run additionally gates on the speedup via ``--fail-below``:
the script exits non-zero if any sampled point's speedup falls below the
given ratio.  CI uses ``--fail-below 0.9``: a real core regression lands
well below 1.0 while shared-runner timing noise stays above 0.9 on the
reported speedup, which is the *median* of the per-repetition
objects/flat ratios (each taken from one interleaved pair; see
``_time_pair``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Normalized load of the saturation point (past the knee of the 16x16
#: latency/load curve for uniform traffic; matches the other benchmarks).
SATURATION_LOAD = 0.8

#: (mesh, loads) grids per scale.  The 32x32 entry is saturation-only:
#: it is the scaling datapoint, and its low-load points would dominate
#: the wall-clock without adding information.
FULL_GRID: List[Tuple[Tuple[int, int], Tuple[float, ...]]] = [
    ((8, 8), (0.02, 0.1, SATURATION_LOAD)),
    ((16, 16), (0.02, 0.1, SATURATION_LOAD)),
    ((32, 32), (SATURATION_LOAD,)),
]
SMOKE_GRID: List[Tuple[Tuple[int, int], Tuple[float, ...]]] = [
    ((8, 8), (0.05, SATURATION_LOAD)),
]

MODES = ("objects", "flat")


def _base_config(mesh: Tuple[int, int], smoke: bool) -> SimulationConfig:
    if smoke:
        return SimulationConfig(
            mesh_dims=mesh,
            message_length=20,
            warmup_messages=40,
            measure_messages=150,
            seed=7,
        )
    return SimulationConfig(
        mesh_dims=mesh,
        message_length=20,
        warmup_messages=100,
        measure_messages=400,
        seed=7,
    )


def _time_once(config: SimulationConfig, mode: str):
    """Wall-clock of the simulation *run* under ``mode``.

    Network construction is excluded from the timer: both cores build the
    same object network first (the flat core lowers it into arrays at
    init), and the identical table/topology build would otherwise dilute
    the measured ratio -- on a 32x32 mesh construction is a large
    constant share of a short run.  The garbage collector is paused
    during the timed region so a collection landing inside one mode's
    run cannot skew the pair.
    """
    import gc

    simulator = NetworkSimulator(config.variant(core_mode=mode))
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def _time_pair(config: SimulationConfig, repeats: int):
    """Median speedup over ``repeats`` interleaved objects/flat pairs.

    The two modes alternate within each repetition, so each repetition
    yields one objects/flat ratio taken under near-identical machine
    conditions; the median of those ratios is robust against the
    throughput drift and scheduler spikes of shared runners.  The
    per-mode minima are also reported for context.
    """
    best: Dict[str, Optional[float]] = {mode: None for mode in MODES}
    ratios = []
    results = {}
    for _ in range(repeats):
        elapsed = {}
        for mode in MODES:
            elapsed[mode], results[mode] = _time_once(config, mode)
            if best[mode] is None or elapsed[mode] < best[mode]:
                best[mode] = elapsed[mode]
        ratios.append(elapsed["objects"] / elapsed["flat"])
    ratios.sort()
    middle = len(ratios) // 2
    if len(ratios) % 2:
        median = ratios[middle]
    else:
        median = (ratios[middle - 1] + ratios[middle]) / 2.0
    return best, median, results


def _identical(objects, flat) -> bool:
    """Everything the simulation computed matches (the configs differ in
    core_mode by construction, so compare the computed fields)."""
    return (
        objects.summary.as_dict() == flat.summary.as_dict()
        and objects.cycles == flat.cycles
        and objects.zero_load_latency == flat.zero_load_latency
        and objects.effective_message_rate == flat.effective_message_rate
    )


def run_benchmark(smoke: bool = False, repeats: int = 3) -> Dict[str, object]:
    """Run the core-schedule comparison; returns the JSON report."""
    grid = SMOKE_GRID if smoke else FULL_GRID
    points = []
    for mesh, loads in grid:
        base = _base_config(mesh, smoke)
        for load in loads:
            config = base.variant(normalized_load=load)
            best, median_speedup, results = _time_pair(config, repeats)
            objects_s, flat_s = best["objects"], best["flat"]
            identical = _identical(results["objects"], results["flat"])
            point = {
                "mesh": "x".join(str(k) for k in mesh),
                "normalized_load": load,
                "saturation": load >= SATURATION_LOAD,
                "cycles": results["flat"].cycles,
                "objects_seconds": round(objects_s, 4),
                "flat_seconds": round(flat_s, 4),
                "speedup": round(median_speedup, 3),
                "bit_identical": identical,
            }
            points.append(point)
            print(
                f"mesh={point['mesh']:<6} load={load:<5} "
                f"cycles={point['cycles']:<7} objects={objects_s:6.2f}s "
                f"flat={flat_s:6.2f}s speedup={point['speedup']:5.2f}x "
                f"identical={identical}"
            )
    saturation = [p for p in points if p["saturation"]]
    report = {
        "benchmark": "core",
        "scale": "smoke" if smoke else "full",
        "kernel_mode": "activity",
        "switch_mode": "batched",
        "link_mode": "batched",
        "message_length": 20,
        "seed": 7,
        "repeats": repeats,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "points": points,
        "summary": {
            "min_speedup": min(p["speedup"] for p in points),
            "min_saturation_speedup": min(
                (p["speedup"] for p in saturation), default=None
            ),
            # The paper-scale regime the optimisation targets.
            "speedup_16x16_saturation": next(
                (p["speedup"] for p in saturation if p["mesh"] == "16x16"), None
            ),
            # The first beyond-paper-scale datapoint.
            "speedup_32x32_saturation": next(
                (p["speedup"] for p in saturation if p["mesh"] == "32x32"), None
            ),
            "all_bit_identical": all(p["bit_identical"] for p in points),
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke: CI-sized 8x8 run; full: 8x8 + 16x16 + 32x32 grid (default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed objects/flat pairs per point; the reported speedup "
        "is the median per-pair ratio (default: 3)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if any point's speedup falls below RATIO "
        "(CI gates the smoke run at 0.9; see the module docstring)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_core.json"),
        metavar="FILE",
        help="where to write the JSON report (default: repo-root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    smoke = args.scale == "smoke"
    repeats = args.repeats if args.repeats is not None else 3
    report = run_benchmark(smoke=smoke, repeats=repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    if not report["summary"]["all_bit_identical"]:
        print("ERROR: core schedules disagreed on at least one point", file=sys.stderr)
        return 1
    if args.fail_below is not None and report["summary"]["min_speedup"] < args.fail_below:
        print(
            f"ERROR: minimum speedup {report['summary']['min_speedup']}x fell "
            f"below the {args.fail_below}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
