"""Table 5: routing-table storage cost and property summary.

This benchmark is analytic (no simulation); it regenerates the comparison
table for the paper's 256-node 2-D mesh and for the Cray T3D-sized 2048
node 3-D network quoted in Section 5.2.1.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.experiments.cost_table import run_cost_table

_COLUMNS = ["scheme", "entries_per_router", "scalability", "adaptivity", "topologies"]


def bench_table5_cost_model(benchmark, report):
    rows = run_once(benchmark, lambda: run_cost_table(num_nodes=256, n_dims=2))
    benchmark.extra_info["rows"] = rows
    report(
        "table5_cost_model_256",
        "Table 5: table-storage schemes for a 256-node 2-D mesh",
        rows,
        columns=_COLUMNS,
    )
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["full-table"]["entries_per_router"] == 256
    assert by_scheme["economical-storage"]["entries_per_router"] == 9


def bench_table5_cost_model_cray_t3d(benchmark, report):
    rows = run_once(benchmark, lambda: run_cost_table(num_nodes=2048, n_dims=3))
    benchmark.extra_info["rows"] = rows
    report(
        "table5_cost_model_t3d",
        "Table 5 (T3D scale): table-storage schemes for a 2048-node 3-D network",
        rows,
        columns=_COLUMNS,
    )
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["economical-storage"]["entries_per_router"] == 27
