"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a
scaled-down network (the paper's 16x16 mesh with 410,000 messages per data
point is far too slow for a pure-Python flit-level simulation), prints the
reproduced rows and records them in the pytest-benchmark ``extra_info`` so
they survive in the JSON output.

Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run the
full-scale configuration instead (expect hours per benchmark).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import SimulationConfig
from repro.core.results import format_rows

#: Directory where each benchmark drops its reproduced table as plain text.
RESULTS_DIR = Path(__file__).parent / "results"


def _base_config() -> SimulationConfig:
    """The benchmark-scale simulation configuration."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return SimulationConfig.paper()
    # 8x8 mesh (power-of-two node count so the bit-permutation patterns are
    # defined), 20-flit messages as in the paper, a reduced measurement
    # window so a full harness run stays in the minutes range.
    return SimulationConfig(
        mesh_dims=(8, 8),
        message_length=20,
        warmup_messages=80,
        measure_messages=600,
        seed=42,
    )


@pytest.fixture(scope="session")
def bench_config() -> SimulationConfig:
    """Scaled-down base configuration shared by all benchmarks."""
    return _base_config()


@pytest.fixture(scope="session")
def report():
    """Callable that prints a reproduced table and saves it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, title: str, rows, columns=None) -> None:
        text = f"{title}\n{format_rows(rows, columns=columns, precision=2)}\n"
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")

    return _report


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    A single data point of these benchmarks is a complete simulation
    campaign, so repeating it for statistical timing accuracy would
    multiply the harness runtime for no benefit.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
