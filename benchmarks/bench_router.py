#!/usr/bin/env python
"""Micro-benchmark: batched switch allocation vs. the reference busy path.

Times complete simulations under both router switch schedules (both on
the default activity kernel), verifies that the schedules produce
bit-identical latency/throughput numbers, and writes the wall-clock
report to ``BENCH_router.json`` at the repository root so the busy-path
performance trajectory is tracked across PRs.

The measured grid is the regime map of the optimisation:

* **8x8 and 16x16 meshes** -- the test scale and the paper scale;
* **load 0.02** -- almost everything is idle; the activity kernel already
  skips whole routers, and the batched pass additionally skips the idle
  channels of the few active ones;
* **load 0.1** -- light traffic, mixed regime;
* **saturation (load 0.8)** -- every router works every cycle, the
  regime where the activity kernel alone gains ~1x (see
  ``BENCH_kernel.json``) and the batched allocation pass has to deliver
  its >= 1.5x end-to-end target on 16x16.

Usage::

    PYTHONPATH=src python benchmarks/bench_router.py                # full grid
    PYTHONPATH=src python benchmarks/bench_router.py --scale smoke  # CI-sized

The CI smoke run additionally gates on the speedup via ``--fail-below``:
the script exits non-zero if any sampled point's speedup falls below the
given ratio.  CI uses ``--fail-below 0.9`` -- the true smoke ratio is
~1.8x, so a real regression lands at or below ~1.0 while shared-runner
timing noise stays above 0.9 on the best-of-N interleaved measurement.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Normalized load of the saturation point (past the knee of the 16x16
#: latency/load curve for uniform traffic; matches BENCH_kernel's top load).
SATURATION_LOAD = 0.8

#: (mesh, loads) grids per scale.
FULL_GRID: List[Tuple[Tuple[int, int], Tuple[float, ...]]] = [
    ((8, 8), (0.02, 0.1, SATURATION_LOAD)),
    ((16, 16), (0.02, 0.1, SATURATION_LOAD)),
]
SMOKE_GRID: List[Tuple[Tuple[int, int], Tuple[float, ...]]] = [
    ((8, 8), (0.05, SATURATION_LOAD)),
]

MODES = ("reference", "batched")


def _base_config(mesh: Tuple[int, int], smoke: bool) -> SimulationConfig:
    if smoke:
        return SimulationConfig(
            mesh_dims=mesh,
            message_length=20,
            warmup_messages=40,
            measure_messages=150,
            seed=7,
        )
    return SimulationConfig(
        mesh_dims=mesh,
        message_length=20,
        warmup_messages=100,
        measure_messages=400,
        seed=7,
    )


def _time_once(config: SimulationConfig, mode: str):
    start = time.perf_counter()
    result = NetworkSimulator(config.variant(switch_mode=mode)).run()
    return time.perf_counter() - start, result


def _time_pair(config: SimulationConfig, repeats: int):
    """Best wall-clock per mode over ``repeats`` interleaved runs.

    The two modes are alternated within each repetition so slow drift in
    the machine's available throughput (noisy neighbours, thermal
    throttling) biases the speedup ratio as little as possible.
    """
    best: Dict[str, Optional[float]] = {mode: None for mode in MODES}
    results = {}
    for _ in range(repeats):
        for mode in MODES:
            elapsed, result = _time_once(config, mode)
            results[mode] = result
            if best[mode] is None or elapsed < best[mode]:
                best[mode] = elapsed
    return best, results


def _identical(reference, batched) -> bool:
    """Everything the simulation computed matches (the configs differ in
    switch_mode by construction, so compare the computed fields)."""
    return (
        reference.summary.as_dict() == batched.summary.as_dict()
        and reference.cycles == batched.cycles
        and reference.zero_load_latency == batched.zero_load_latency
        and reference.effective_message_rate == batched.effective_message_rate
    )


def run_benchmark(smoke: bool = False, repeats: int = 2) -> Dict[str, object]:
    """Run the switch-schedule comparison; returns the JSON report."""
    grid = SMOKE_GRID if smoke else FULL_GRID
    points = []
    for mesh, loads in grid:
        base = _base_config(mesh, smoke)
        for load in loads:
            config = base.variant(normalized_load=load)
            best, results = _time_pair(config, repeats)
            reference_s, batched_s = best["reference"], best["batched"]
            identical = _identical(results["reference"], results["batched"])
            point = {
                "mesh": "x".join(str(k) for k in mesh),
                "normalized_load": load,
                "saturation": load >= SATURATION_LOAD,
                "cycles": results["batched"].cycles,
                "reference_seconds": round(reference_s, 4),
                "batched_seconds": round(batched_s, 4),
                "speedup": round(reference_s / batched_s, 3),
                "bit_identical": identical,
            }
            points.append(point)
            print(
                f"mesh={point['mesh']:<6} load={load:<5} "
                f"cycles={point['cycles']:<7} reference={reference_s:6.2f}s "
                f"batched={batched_s:6.2f}s speedup={point['speedup']:5.2f}x "
                f"identical={identical}"
            )
    saturation = [p for p in points if p["saturation"]]
    report = {
        "benchmark": "router",
        "scale": "smoke" if smoke else "full",
        "kernel_mode": "activity",
        "message_length": 20,
        "seed": 7,
        "repeats": repeats,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "points": points,
        "summary": {
            "min_speedup": min(p["speedup"] for p in points),
            "min_saturation_speedup": min(
                (p["speedup"] for p in saturation), default=None
            ),
            "all_bit_identical": all(p["bit_identical"] for p in points),
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke: CI-sized 8x8 run; full: 8x8 + 16x16 grid (default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed repetitions per point, best-of (default: 2, smoke: 2)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if any point's speedup falls below RATIO "
        "(CI gates the smoke run at 0.9; see the module docstring)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_router.json"),
        metavar="FILE",
        help="where to write the JSON report (default: repo-root BENCH_router.json)",
    )
    args = parser.parse_args(argv)
    smoke = args.scale == "smoke"
    repeats = args.repeats if args.repeats is not None else 2
    report = run_benchmark(smoke=smoke, repeats=repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    if not report["summary"]["all_bit_identical"]:
        print("ERROR: switch schedules disagreed on at least one point", file=sys.stderr)
        return 1
    if args.fail_below is not None and report["summary"]["min_speedup"] < args.fail_below:
        print(
            f"ERROR: minimum speedup {report['summary']['min_speedup']}x fell "
            f"below the {args.fail_below}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
