#!/usr/bin/env python
"""Micro-benchmark: closed-loop workload runs, flat core vs. object network.

Times complete DAG-driven workload simulations under both core schedules
(both on the default activity kernel with batched switch allocation and
link transport), verifies that the schedules produce bit-identical
latency/throughput numbers *and* bit-identical drain metrics, and writes
the wall-clock report to ``BENCH_workload.json`` at the repository root
so the closed-loop performance trajectory is tracked across PRs.

The measured grid covers the three built-in generator families in their
characteristic regimes:

* **ring all-reduce** -- a long serial dependency chain of neighbour
  transfers; the network is mostly idle, so both cores lean on their
  quiescence machinery (the flat core must not regress here);
* **phased all-to-all** -- barrier-synchronised bursts where every group
  member sends simultaneously, the congested regime;
* **tensor-parallel LLM decode** -- compute delays interleaved with
  group all-reduces and activation hand-offs, the mixed regime the
  subsystem targets.

Usage::

    PYTHONPATH=src python benchmarks/bench_workload.py                # full grid
    PYTHONPATH=src python benchmarks/bench_workload.py --scale smoke  # CI-sized

The CI smoke run additionally gates on the speedup via ``--fail-below``:
the script exits non-zero if any sampled point's speedup falls below the
given ratio.  CI uses ``--fail-below 0.9``: a real regression lands well
below 1.0 while shared-runner timing noise stays above 0.9 on the
reported speedup, which is the *median* of the per-repetition
objects/flat ratios (each taken from one interleaved pair; see
``_time_pair``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (label, mesh, workload overrides) grids per scale.
FULL_GRID: List[Tuple[str, Tuple[int, int], Dict[str, object]]] = [
    (
        "allreduce",
        (8, 8),
        {"workload": "allreduce", "workload_iters": 4, "workload_hidden": 256},
    ),
    (
        "alltoall",
        (8, 8),
        {"workload": "alltoall", "workload_iters": 2, "workload_group": 16},
    ),
    (
        "llm-decode",
        (8, 8),
        {
            "workload": "llm-decode",
            "workload_layers": 4,
            "workload_hidden": 256,
            "workload_group": 8,
        },
    ),
    (
        "llm-decode",
        (16, 16),
        {
            "workload": "llm-decode",
            "workload_layers": 4,
            "workload_hidden": 256,
            "workload_group": 16,
        },
    ),
]
SMOKE_GRID: List[Tuple[str, Tuple[int, int], Dict[str, object]]] = [
    (
        "allreduce",
        (4, 4),
        {"workload": "allreduce", "workload_iters": 2, "workload_hidden": 64},
    ),
    (
        "llm-decode",
        (4, 4),
        {
            "workload": "llm-decode",
            "workload_layers": 2,
            "workload_hidden": 64,
            "workload_group": 4,
        },
    ),
]

MODES = ("objects", "flat")


def _point_config(mesh: Tuple[int, int], overrides: Dict[str, object]) -> SimulationConfig:
    return SimulationConfig(mesh_dims=mesh, message_length=20, seed=7, **overrides)


def _time_once(config: SimulationConfig, mode: str):
    """Wall-clock of the simulation *run* under ``mode``.

    Construction (network build, DAG expansion, critical-path analysis)
    is excluded from the timer: both cores expand the identical DAG, and
    the shared build would otherwise dilute the measured ratio.  The
    garbage collector is paused during the timed region so a collection
    landing inside one mode's run cannot skew the pair.
    """
    import gc

    simulator = NetworkSimulator(config.variant(core_mode=mode))
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def _time_pair(config: SimulationConfig, repeats: int):
    """Median speedup over ``repeats`` interleaved objects/flat pairs.

    The two modes alternate within each repetition, so each repetition
    yields one objects/flat ratio taken under near-identical machine
    conditions; the median of those ratios is robust against the
    throughput drift and scheduler spikes of shared runners.  The
    per-mode minima are also reported for context.
    """
    best: Dict[str, Optional[float]] = {mode: None for mode in MODES}
    ratios = []
    results = {}
    for _ in range(repeats):
        elapsed = {}
        for mode in MODES:
            elapsed[mode], results[mode] = _time_once(config, mode)
            if best[mode] is None or elapsed[mode] < best[mode]:
                best[mode] = elapsed[mode]
        ratios.append(elapsed["objects"] / elapsed["flat"])
    ratios.sort()
    middle = len(ratios) // 2
    if len(ratios) % 2:
        median = ratios[middle]
    else:
        median = (ratios[middle - 1] + ratios[middle]) / 2.0
    return best, median, results


def _identical(objects, flat) -> bool:
    """Everything the simulation computed matches, drain metrics included
    (the configs differ in core_mode by construction, so compare the
    computed fields)."""
    return (
        objects.summary.as_dict() == flat.summary.as_dict()
        and objects.cycles == flat.cycles
        and objects.zero_load_latency == flat.zero_load_latency
        and objects.drain == flat.drain
    )


def run_benchmark(smoke: bool = False, repeats: int = 3) -> Dict[str, object]:
    """Run the closed-loop core-schedule comparison; returns the report."""
    grid = SMOKE_GRID if smoke else FULL_GRID
    points = []
    for label, mesh, overrides in grid:
        config = _point_config(mesh, overrides)
        best, median_speedup, results = _time_pair(config, repeats)
        objects_s, flat_s = best["objects"], best["flat"]
        identical = _identical(results["objects"], results["flat"])
        drain = results["flat"].drain or {}
        point = {
            "workload": label,
            "mesh": "x".join(str(k) for k in mesh),
            "transfers": drain.get("transfers", 0),
            "cycles": results["flat"].cycles,
            "drained": bool(drain.get("drained", False)),
            "time_to_drain": drain.get("time_to_drain"),
            "cp_utilization": drain.get("critical_path_utilization"),
            "objects_seconds": round(objects_s, 4),
            "flat_seconds": round(flat_s, 4),
            "speedup": round(median_speedup, 3),
            "bit_identical": identical,
        }
        points.append(point)
        print(
            f"workload={label:<10} mesh={point['mesh']:<6} "
            f"cycles={point['cycles']:<7} objects={objects_s:6.2f}s "
            f"flat={flat_s:6.2f}s speedup={point['speedup']:5.2f}x "
            f"identical={identical} drained={point['drained']}"
        )
    report = {
        "benchmark": "workload",
        "scale": "smoke" if smoke else "full",
        "kernel_mode": "activity",
        "switch_mode": "batched",
        "link_mode": "batched",
        "message_length": 20,
        "seed": 7,
        "repeats": repeats,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "points": points,
        "summary": {
            "min_speedup": min(p["speedup"] for p in points),
            "all_bit_identical": all(p["bit_identical"] for p in points),
            "all_drained": all(p["drained"] for p in points),
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke: CI-sized 4x4 points; full: 8x8 + 16x16 grid (default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed objects/flat pairs per point; the reported speedup "
        "is the median per-pair ratio (default: 3)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if any point's speedup falls below RATIO "
        "(CI gates the smoke run at 0.9; see the module docstring)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_workload.json"),
        metavar="FILE",
        help="where to write the JSON report (default: repo-root BENCH_workload.json)",
    )
    args = parser.parse_args(argv)
    smoke = args.scale == "smoke"
    repeats = args.repeats if args.repeats is not None else 3
    report = run_benchmark(smoke=smoke, repeats=repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    if not report["summary"]["all_bit_identical"]:
        print("ERROR: core schedules disagreed on at least one point", file=sys.stderr)
        return 1
    if not report["summary"]["all_drained"]:
        print("ERROR: at least one workload failed to drain", file=sys.stderr)
        return 1
    if args.fail_below is not None and report["summary"]["min_speedup"] < args.fail_below:
        print(
            f"ERROR: minimum speedup {report['summary']['min_speedup']}x fell "
            f"below the {args.fail_below}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
