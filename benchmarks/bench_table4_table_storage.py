"""Table 4: adaptive-routing performance with the table-storage schemes.

Paper shape to reproduce: the economical-storage table performs exactly
like the full table; the meta-table with the maximal-adaptivity (block)
mapping congests at the cluster boundaries and saturates earlier than the
meta-table with the minimal-adaptivity (row) mapping, which itself behaves
like a deterministic dimension-order router.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.experiments.table_storage import run_table_storage_study

_CASES = [
    ("uniform", (0.15, 0.4)),
    ("transpose", (0.15, 0.3)),
    ("bit-reversal", (0.15, 0.3)),
]

_COLUMNS = [
    "traffic",
    "load",
    "meta_adaptive_label",
    "meta_deterministic_label",
    "economical_label",
    "full_table_label",
]


@pytest.mark.parametrize(("traffic", "loads"), _CASES, ids=[case[0] for case in _CASES])
def bench_table4_table_storage(benchmark, bench_config, report, traffic, loads):
    rows = run_once(
        benchmark,
        lambda: run_table_storage_study(
            bench_config,
            traffic_patterns=(traffic,),
            loads=loads,
            include_full_table=True,
        ),
    )
    benchmark.extra_info["rows"] = rows
    report(
        f"table4_{traffic}",
        f"Table 4 ({traffic}): latency per table-storage scheme ('Sat.' = saturated)",
        rows,
        columns=_COLUMNS,
    )
    for row in rows:
        # Economical storage must be indistinguishable from the full table.
        assert row["economical_latency"] == pytest.approx(row["full_table_latency"])
