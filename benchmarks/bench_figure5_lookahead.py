"""Figure 5: look-ahead / adaptivity comparison for the four traffic patterns.

Paper shape to reproduce: at low load the no-look-ahead routers are
~10-15% slower than the look-ahead adaptive router; on the non-uniform
patterns the deterministic routers fall far behind (or saturate) at high
load, while on uniform traffic the deterministic routers stay competitive.
The embedded table of Figure 5 (absolute LA-ADAPT latencies) corresponds
to the ``la_adapt_latency`` column.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.experiments.lookahead import run_lookahead_comparison

#: (traffic pattern, loads to sample).  The high load sits near (but below)
#: the deterministic router's saturation point so the adaptive advantage is
#: visible, mirroring the load ranges of Fig. 5(a)-(d).
_CASES = [
    ("uniform", (0.15, 0.45)),
    ("transpose", (0.15, 0.4)),
    ("bit-reversal", (0.15, 0.4)),
    ("shuffle", (0.15, 0.4)),
]

_COLUMNS = [
    "traffic",
    "load",
    "la_adapt_latency",
    "no-la-det_pct_increase",
    "no-la-adapt_pct_increase",
    "la-det_pct_increase",
]


@pytest.mark.parametrize(("traffic", "loads"), _CASES, ids=[case[0] for case in _CASES])
def bench_figure5_lookahead(benchmark, bench_config, report, traffic, loads):
    rows = run_once(
        benchmark,
        lambda: run_lookahead_comparison(
            bench_config, traffic_patterns=(traffic,), loads=loads
        ),
    )
    benchmark.extra_info["rows"] = rows
    report(
        f"figure5_{traffic}",
        f"Figure 5 ({traffic}): % latency increase over the LA-ADAPT router",
        rows,
        columns=_COLUMNS,
    )
    for row in rows:
        # Removing look-ahead from the adaptive router must cost latency.
        assert row["no-la-adapt_pct_increase"] > 0
