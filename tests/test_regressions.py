"""Direct regression coverage for the PR 2 bugfix paths.

PR 2 fixed three silent-failure modes -- mesh tornado wrap-around,
pattern crashes on 1-node topologies, and silent Bernoulli rate clamping
-- and PR 4 is rewriting the router hot path underneath them, so each fix
gets pinned here at both the unit level and end to end:

* tornado on a mesh clamps at the edge (never wraps into a short
  backward trip), including on rectangular, odd-extent and extent-1
  dimensions, and a tornado simulation drains completely;
* uniform and hotspot report fixed points (``None``) on a 1-node
  topology instead of crashing, including when the lone node *is* the
  hotspot, and a traffic source built over them never emits a message;
* the Bernoulli clamp warns exactly when the requested rate exceeds one
  message/cycle, and the recorded ``effective_message_rate`` survives
  every serialization boundary (JSON round-trip and the result cache).
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.simulator import NetworkSimulator
from repro.network.topology import MeshTopology
from repro.traffic.patterns import HotspotPattern, TornadoPattern, UniformPattern


@pytest.fixture
def rng() -> random.Random:
    return random.Random(7)


# -- tornado wrap-around clamping on meshes ------------------------------------------


@pytest.mark.parametrize("dims", [(4, 4), (5, 3), (8, 2), (6,)])
def test_mesh_tornado_never_moves_backwards(dims, rng):
    """On any mesh shape the clamped offset must keep every hop
    non-negative in every dimension -- the PR 2 bug turned high-edge
    sources into short *backward* (wrapped) trips."""
    mesh = MeshTopology(dims)
    pattern = TornadoPattern(mesh)
    for source in range(mesh.num_nodes):
        destination = pattern.destination(source, rng)
        if destination is None:
            continue
        for src, dst, extent in zip(
            mesh.coordinates(source), mesh.coordinates(destination), dims
        ):
            assert src <= dst <= extent - 1, (
                f"tornado on mesh {dims} moved {source}->{destination} "
                "backwards or out of range"
            )


def test_mesh_tornado_clamp_values_on_a_rectangle(rng):
    """Spot-check the clamped arithmetic on a non-square mesh: offset is
    ``extent // 2 - 1`` per dimension, clamped at the boundary."""
    mesh = MeshTopology((5, 3))
    pattern = TornadoPattern(mesh)
    # Offsets are (5//2 - 1, 3//2 - 1) = (1, 0): only X moves here.
    assert pattern.destination(mesh.node_id((1, 1)), rng) == mesh.node_id((2, 1))
    assert pattern.destination(mesh.node_id((3, 2)), rng) == mesh.node_id((4, 2))
    # High-edge X sources clamp onto themselves -> fixed points, not
    # wrapped short backward trips as before the fix.
    assert pattern.destination(mesh.node_id((4, 0)), rng) is None
    assert pattern.destination(mesh.node_id((4, 2)), rng) is None


class _Line:
    """A 4x1 mesh-like stub: the built-in topologies reject extent-1
    dimensions, but the pattern guard (``extent > 1``) must still hold
    for plugin topologies that allow them."""

    dims = (4, 1)
    num_nodes = 4
    wraps = False

    def coordinates(self, node):
        return (node, 0)

    def node_id(self, coords):
        return coords[0]


def test_mesh_tornado_extent_one_dimension_is_left_alone(rng):
    """An extent-1 dimension has nowhere to go: the clamp must leave the
    coordinate untouched instead of underflowing ``extent // 2 - 1``
    into a negative offset."""
    pattern = TornadoPattern(_Line())
    # X offset is 4//2 - 1 = 1, Y (extent 1) stays put.
    assert pattern.destination(0, rng) == 1
    assert pattern.destination(2, rng) == 3
    assert pattern.destination(3, rng) is None  # clamped fixed point


def test_tornado_simulation_on_a_mesh_drains_completely():
    """End to end: a tornado run on a mesh must terminate with every
    created message delivered (the wrapped destinations of the old
    arithmetic skewed distances and could starve edge flows)."""
    config = SimulationConfig.tiny(
        traffic="tornado",
        routing="west-first",
        normalized_load=0.2,
        seed=3,
    )
    simulator = NetworkSimulator(config)
    result = simulator.run()
    assert result.summary.completion_ratio == 1.0
    assert simulator.stats.delivered == simulator.stats.created


# -- uniform / hotspot on 1-node topologies ------------------------------------------


class _OneNode:
    """Minimal 1-node topology stand-in (built-ins require >= 2/dim)."""

    num_nodes = 1
    dims = (1,)

    def node_id(self, coords):
        return 0


def test_uniform_on_one_node_is_a_fixed_point(rng):
    assert UniformPattern(_OneNode()).destination(0, rng) is None


def test_hotspot_on_one_node_is_a_fixed_point_even_as_the_hotspot(rng):
    # The lone node is necessarily the hotspot: the "send to hotspot"
    # branch must not fire for the hotspot itself, and the uniform
    # fallback must report the fixed point instead of crashing.
    pattern = HotspotPattern(_OneNode(), hotspot=0, fraction=1.0)
    for _ in range(50):
        assert pattern.destination(0, rng) is None


def test_one_node_source_never_emits_messages(rng):
    """A traffic source whose pattern only produces fixed points must
    stay silent forever rather than looping or crashing."""
    from repro.engine.rng import SimulationRNG
    from repro.traffic.generator import TrafficGenerator
    from repro.traffic.injection import BernoulliInjection

    generator = TrafficGenerator(
        topology=_OneNode(),
        pattern=UniformPattern(_OneNode()),
        process=BernoulliInjection(0.5),
        message_length=4,
        rng=SimulationRNG(seed=5),
        max_messages=10,
    )
    (source,) = generator.sources()
    for cycle in range(50):
        assert source.messages_due(cycle) == []
    assert generator.generated == 0


# -- Bernoulli rate clamp and effective_message_rate ---------------------------------


def _clamping_config(**overrides) -> SimulationConfig:
    return SimulationConfig.tiny(
        normalized_load=8.0,
        injection="bernoulli",
        message_length=1,
        measure_messages=60,
        warmup_messages=10,
        max_cycles=200,
        seed=31,
    ).variant(**overrides)


def test_bernoulli_clamp_warns_and_names_the_rates():
    with pytest.warns(RuntimeWarning, match="Bernoulli limit") as captured:
        simulator = NetworkSimulator(_clamping_config())
    message = str(captured[0].message)
    assert "8.0" in message  # the offending normalized load is named
    assert simulator.effective_message_rate == 1.0


def test_bernoulli_at_exactly_rate_one_does_not_warn():
    """The clamp warning must fire only *beyond* the limit; a request of
    exactly one message per cycle is representable and silent."""
    from repro.traffic.injection import message_rate_for_load

    config = SimulationConfig.tiny(injection="bernoulli", message_length=1, seed=2)
    topology = NetworkSimulator(config).topology
    # Solve for the normalized load that lands exactly on rate 1.0.
    unit_rate_load = 1.0 / message_rate_for_load(topology, 1, 1.0)
    exact = config.variant(
        normalized_load=unit_rate_load, measure_messages=50, warmup_messages=5,
        max_cycles=150,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        simulator = NetworkSimulator(exact)
    assert simulator.effective_message_rate == pytest.approx(1.0)


def test_effective_rate_survives_json_round_trip():
    with pytest.warns(RuntimeWarning, match="Bernoulli limit"):
        result = NetworkSimulator(_clamping_config()).run()
    assert result.effective_message_rate == 1.0
    loaded = SimulationResult.from_json(result.to_json())
    assert loaded.effective_message_rate == 1.0
    assert loaded == result


def test_effective_rate_survives_the_result_cache(tmp_path):
    from repro.exec.cache import ResultCache

    with pytest.warns(RuntimeWarning, match="Bernoulli limit"):
        config = _clamping_config()
        result = NetworkSimulator(config).run()
    cache = ResultCache(tmp_path)
    cache.put(config, result)
    cached = cache.get(config)
    assert cached is not None
    assert cached.effective_message_rate == result.effective_message_rate
    assert cached.to_json() == result.to_json()
