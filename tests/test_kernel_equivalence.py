"""Bit-identical equivalence of the activity-aware and exhaustive kernels.

The activity-aware schedule may only skip cycles that are provable no-ops
for a component, so a simulation driven by it must reproduce the
exhaustive schedule exactly: the same messages created at the same
cycles, the same RNG draw sequences per component, the same arbitration
outcomes -- and therefore a :class:`LatencySummary` that matches
field-for-field, bit-for-bit.  These tests run the experiment grid of
routing algorithms, traffic patterns, injection processes and loads under
both schedules and compare everything the simulation reports.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

#: (routing, traffic, injection, load) grid covering the adaptive and
#: deterministic routers, random and permutation patterns (including the
#: clamped mesh tornado), both injection processes, and a load close to
#: saturation where the network stays busy end to end.
GRID = [
    ("duato", "uniform", "exponential", 0.2),
    ("duato", "shuffle", "exponential", 0.15),
    ("duato", "uniform", "bernoulli", 0.3),
    ("dimension-order", "transpose", "exponential", 0.2),
    ("west-first", "tornado", "exponential", 0.25),
    ("duato", "uniform", "exponential", 0.75),
]


def _config(routing: str, traffic: str, injection: str, load: float) -> SimulationConfig:
    return SimulationConfig.tiny(
        routing=routing,
        traffic=traffic,
        injection=injection,
        normalized_load=load,
        seed=11,
    )


def _run(config: SimulationConfig, mode: str):
    return NetworkSimulator(config, kernel_mode=mode).run()


@pytest.mark.parametrize(
    ("routing", "traffic", "injection", "load"),
    GRID,
    ids=[f"{r}-{t}-{i}-{l}" for r, t, i, l in GRID],
)
def test_latency_summary_is_bit_identical(routing, traffic, injection, load):
    config = _config(routing, traffic, injection, load)
    exhaustive = _run(config, "exhaustive")
    activity = _run(config, "activity")

    reference = exhaustive.summary.as_dict()
    candidate = activity.summary.as_dict()
    assert set(candidate) == set(reference)
    for field, expected in reference.items():
        assert candidate[field] == expected, (
            f"LatencySummary.{field} diverged under the activity schedule: "
            f"{candidate[field]!r} != {expected!r}"
        )
    assert activity.cycles == exhaustive.cycles
    assert activity.zero_load_latency == exhaustive.zero_load_latency
    assert activity.effective_message_rate == exhaustive.effective_message_rate
    # The full serialized result (config included) must round-trip equal.
    assert activity.to_json() == exhaustive.to_json()


#: Contention-heavy variants: few virtual channels, shallow buffers and
#: long messages force VC-allocation failures and credit stalls, the
#: regime where an unsound quiescence rule diverges (a header blocked on
#: an output VC that this router's own switch stage frees later in the
#: same cycle receives no mailbox wake).
CONTENTION_GRID = [
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.6},
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.9},
    {"vcs_per_port": 3, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.6,
     "traffic": "transpose"},
    {"vcs_per_port": 2, "buffer_depth": 5, "message_length": 4, "normalized_load": 0.9,
     "pipeline": "proud"},
]


@pytest.mark.parametrize(
    "overrides",
    CONTENTION_GRID,
    ids=[
        f"vcs{o['vcs_per_port']}-buf{o['buffer_depth']}-len{o['message_length']}"
        f"-load{o['normalized_load']}"
        for o in CONTENTION_GRID
    ],
)
def test_equivalence_under_vc_contention(overrides):
    config = SimulationConfig.tiny(seed=1).variant(
        measure_messages=150, warmup_messages=20, **overrides
    )
    exhaustive = _run(config, "exhaustive")
    activity = _run(config, "activity")
    assert activity.to_json() == exhaustive.to_json(), (
        f"activity schedule diverged under contention: "
        f"latency {activity.latency} vs {exhaustive.latency}, "
        f"cycles {activity.cycles} vs {exhaustive.cycles}"
    )


def test_equivalence_across_selectors_with_rng_draws():
    """The 'random' selector draws from per-router RNG streams during VC
    allocation; skipped no-op cycles must not shift those draws."""
    config = SimulationConfig.tiny(selector="random", normalized_load=0.35, seed=3)
    assert _run(config, "activity").to_json() == _run(config, "exhaustive").to_json()


def test_equivalence_on_proud_pipeline_without_lookahead():
    config = SimulationConfig.tiny(pipeline="proud", normalized_load=0.2, seed=5)
    assert _run(config, "activity").to_json() == _run(config, "exhaustive").to_json()


def test_equivalence_when_budget_caps_the_run():
    """With a hard cycle limit the clock must land on the same cycle, even
    though the activity kernel fast-forwards over idle spans."""
    config = SimulationConfig.tiny(normalized_load=0.1, max_cycles=400, seed=9)
    exhaustive = _run(config, "exhaustive")
    activity = _run(config, "activity")
    assert activity.cycles == exhaustive.cycles
    assert activity.to_json() == exhaustive.to_json()


def test_simulator_rejects_unknown_kernel_mode():
    with pytest.raises(ValueError):
        NetworkSimulator(SimulationConfig.tiny(), kernel_mode="warp-speed")
