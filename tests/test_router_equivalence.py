"""Bit-identical equivalence of the batched and reference switch schedules.

The batched busy path may only restructure *how* the per-cycle work is
found and ordered, never *what* it decides: the same virtual channels
must be allocated, the same round-robin grants issued, the same selector
and RNG consultations made -- so a simulation run under
``switch_mode="batched"`` must reproduce ``switch_mode="reference"``
field for field, bit for bit.  These tests sweep a grid of topology x
routing x VC-count x load points (modeled on
``tests/test_kernel_equivalence.py``) and additionally cross the switch
axis with the kernel-schedule axis, since the two two-implementation
contracts must compose.

Note the two configurations differ in their ``switch_mode`` field, so
the comparison covers everything the simulation *computes* (summary,
cycles, analytics) rather than the raw config-bearing JSON.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

#: (mesh_dims, routing, vcs_per_port, traffic, load) grid covering square,
#: rectangular and odd-extent meshes (the repo's routing algorithms are
#: mesh-only by design -- tori need a dateline VC discipline), the
#: adaptive and deterministic routers, minimum and paper VC counts,
#: permutation and random patterns, and loads from the contention-free
#: regime up to saturation.
GRID = [
    ((4, 4), "duato", 2, "uniform", 0.2),
    ((4, 4), "duato", 4, "uniform", 0.75),
    ((4, 4), "duato", 4, "shuffle", 0.15),
    ((4, 4), "duato", 3, "transpose", 0.6),
    ((4, 4), "dimension-order", 1, "uniform", 0.3),
    ((4, 4), "dimension-order", 4, "transpose", 0.2),
    ((4, 4), "west-first", 2, "tornado", 0.25),
    ((4, 4), "negative-first", 4, "bit-reversal", 0.4),
    ((5, 3), "duato", 4, "uniform", 0.3),
    ((2, 8), "dimension-order", 2, "tornado", 0.25),
]


def _config(mesh_dims, routing, vcs, traffic, load) -> SimulationConfig:
    return SimulationConfig.tiny(
        mesh_dims=mesh_dims,
        routing=routing,
        vcs_per_port=vcs,
        traffic=traffic,
        normalized_load=load,
        seed=13,
    )


def _run(config: SimulationConfig, switch_mode: str, kernel_mode: str = "activity"):
    return NetworkSimulator(
        config.variant(switch_mode=switch_mode), kernel_mode=kernel_mode
    ).run()


def _assert_equivalent(batched, reference) -> None:
    """Field-for-field equality of everything the simulation computed."""
    expected = reference.summary.as_dict()
    actual = batched.summary.as_dict()
    assert set(actual) == set(expected)
    for field, value in expected.items():
        assert actual[field] == value, (
            f"LatencySummary.{field} diverged under the batched switch "
            f"schedule: {actual[field]!r} != {value!r}"
        )
    assert batched.cycles == reference.cycles
    assert batched.zero_load_latency == reference.zero_load_latency
    assert batched.effective_message_rate == reference.effective_message_rate
    # The configs deliberately differ in switch_mode only; everything
    # else must round-trip equal.
    assert batched.config.variant(switch_mode="reference") == reference.config


@pytest.mark.parametrize(
    ("mesh_dims", "routing", "vcs", "traffic", "load"),
    GRID,
    ids=[
        f"{'x'.join(map(str, dims))}-{r}-vc{v}-{t}-{l}"
        for dims, r, v, t, l in GRID
    ],
)
def test_batched_switch_is_bit_identical(mesh_dims, routing, vcs, traffic, load):
    config = _config(mesh_dims, routing, vcs, traffic, load)
    _assert_equivalent(_run(config, "batched"), _run(config, "reference"))


#: Contention-heavy variants: few VCs, shallow buffers and long messages
#: force allocation failures, credit stalls and same-cycle output-VC
#: releases -- the regime where an ordering bug in the flat pass (or a
#: stale membership array) diverges from the reference traversal.
CONTENTION_GRID = [
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.9},
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.6,
     "traffic": "transpose"},
    {"vcs_per_port": 3, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.9,
     "pipeline": "proud"},
    {"vcs_per_port": 2, "buffer_depth": 5, "message_length": 4, "normalized_load": 0.9,
     "injection": "bernoulli"},
]


@pytest.mark.parametrize(
    "overrides",
    CONTENTION_GRID,
    ids=[
        f"vcs{o['vcs_per_port']}-buf{o['buffer_depth']}-len{o['message_length']}"
        f"-load{o['normalized_load']}"
        for o in CONTENTION_GRID
    ],
)
def test_equivalence_under_vc_contention(overrides):
    config = SimulationConfig.tiny(seed=1).variant(
        measure_messages=150, warmup_messages=20, **overrides
    )
    _assert_equivalent(_run(config, "batched"), _run(config, "reference"))


def test_equivalence_with_rng_drawing_selector():
    """The 'random' selector draws from per-router RNG streams during VC
    allocation; the batched pass must visit ROUTING channels in the exact
    reference order or the draw sequences shift."""
    config = SimulationConfig.tiny(selector="random", normalized_load=0.5, seed=3)
    _assert_equivalent(_run(config, "batched"), _run(config, "reference"))


def test_equivalence_with_history_selector():
    """LRU reads the usage metadata the forward path maintains; batching
    the per-flit bookkeeping must not change what the selector sees."""
    config = SimulationConfig.tiny(selector="lru", normalized_load=0.5, seed=7)
    _assert_equivalent(_run(config, "batched"), _run(config, "reference"))


@pytest.mark.parametrize("kernel_mode", ["exhaustive", "activity"])
def test_switch_axis_crosses_kernel_axis(kernel_mode):
    """All four (kernel schedule, switch schedule) combinations agree on
    one contended point: the two equivalence contracts compose."""
    config = SimulationConfig.tiny(normalized_load=0.6, seed=17)
    batched = _run(config, "batched", kernel_mode)
    reference = _run(config, "reference", kernel_mode)
    _assert_equivalent(batched, reference)
    # And across the kernel axis for the same switch mode, the full JSON
    # (config included) must match, as in test_kernel_equivalence.
    other = "activity" if kernel_mode == "exhaustive" else "exhaustive"
    assert batched.to_json() == _run(config, "batched", other).to_json()


def test_switch_mode_recorded_in_result_config():
    config = SimulationConfig.tiny(normalized_load=0.1, seed=5)
    result = _run(config, "reference")
    assert result.config.switch_mode == "reference"
    assert _run(config, "batched").config.switch_mode == "batched"


def test_config_rejects_unknown_switch_mode():
    with pytest.raises(ValueError, match="switch"):
        SimulationConfig.tiny(switch_mode="warp-speed")


def test_router_config_rejects_unknown_switch_mode():
    from repro.router.config import RouterConfig

    with pytest.raises(ValueError, match="switch"):
        RouterConfig(switch_mode="warp-speed")
