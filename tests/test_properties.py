"""Property-based tests (hypothesis) for core invariants.

These cover the data structures whose correctness the whole simulation
rests on: topology geometry, the sign-indexed economical-storage table,
turn-model providers, the round-robin arbiter, interval routing and the
streaming statistics accumulator.
"""

import statistics

from hypothesis import given, settings, strategies as st

from repro.network.topology import LOCAL_PORT, MeshTopology, TorusTopology, port_direction
from repro.router.arbiter import RoundRobinArbiter
from repro.routing.providers import (
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)
from repro.stats.latency import RunningStats
from repro.tables.economical import EconomicalStorageTable
from repro.tables.interval import IntervalRoutingTable
from repro.traffic.message import Message

# Keep the generated networks small so each example stays fast.
mesh_dims = st.tuples(st.integers(2, 6), st.integers(2, 6))
three_d_dims = st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 3))


@settings(max_examples=30, deadline=None)
@given(dims=mesh_dims, data=st.data())
def test_mesh_coordinates_round_trip_and_distance_symmetry(dims, data):
    mesh = MeshTopology(dims)
    a = data.draw(st.integers(0, mesh.num_nodes - 1))
    b = data.draw(st.integers(0, mesh.num_nodes - 1))
    assert mesh.node_id(mesh.coordinates(a)) == a
    assert mesh.distance(a, b) == mesh.distance(b, a)
    assert (mesh.distance(a, b) == 0) == (a == b)


@settings(max_examples=30, deadline=None)
@given(dims=mesh_dims, data=st.data())
def test_minimal_ports_reduce_distance(dims, data):
    mesh = MeshTopology(dims)
    a = data.draw(st.integers(0, mesh.num_nodes - 1))
    b = data.draw(st.integers(0, mesh.num_nodes - 1))
    ports = mesh.minimal_ports(a, b)
    if a == b:
        assert ports == (LOCAL_PORT,)
        return
    for port in ports:
        neighbor = mesh.neighbor(a, port)
        assert neighbor is not None
        assert mesh.distance(neighbor, b) == mesh.distance(a, b) - 1
    # Dimension-order routing always picks one of the minimal ports.
    assert mesh.dimension_order_port(a, b) in ports


@settings(max_examples=20, deadline=None)
@given(dims=mesh_dims, data=st.data())
def test_torus_minimal_ports_reduce_distance(dims, data):
    torus = TorusTopology(dims)
    a = data.draw(st.integers(0, torus.num_nodes - 1))
    b = data.draw(st.integers(0, torus.num_nodes - 1))
    if a == b:
        return
    for port in torus.minimal_ports(a, b):
        neighbor = torus.neighbor(a, port)
        assert torus.distance(neighbor, b) == torus.distance(a, b) - 1


@settings(max_examples=15, deadline=None)
@given(dims=st.one_of(mesh_dims, three_d_dims), data=st.data())
def test_economical_table_matches_minimal_provider(dims, data):
    mesh = MeshTopology(dims)
    table = EconomicalStorageTable(mesh)
    provider = minimal_adaptive_provider(mesh)
    a = data.draw(st.integers(0, mesh.num_nodes - 1))
    b = data.draw(st.integers(0, mesh.num_nodes - 1))
    assert set(table.lookup(a, b)) == set(provider(a, b))
    assert table.entries_per_router() == 3 ** mesh.n_dims


@settings(max_examples=20, deadline=None)
@given(dims=mesh_dims, data=st.data())
def test_turn_model_providers_subset_of_minimal_and_nonempty(dims, data):
    mesh = MeshTopology(dims)
    adaptive = minimal_adaptive_provider(mesh)
    providers = [
        north_last_provider(mesh),
        west_first_provider(mesh),
        negative_first_provider(mesh),
    ]
    a = data.draw(st.integers(0, mesh.num_nodes - 1))
    b = data.draw(st.integers(0, mesh.num_nodes - 1))
    for provider in providers:
        permitted = provider(a, b)
        assert permitted
        assert set(permitted) <= set(adaptive(a, b))


@settings(max_examples=30, deadline=None)
@given(
    num_slots=st.integers(1, 8),
    request_sets=st.lists(st.lists(st.integers(0, 7), max_size=8), min_size=1, max_size=50),
)
def test_arbiter_grants_are_always_valid_requests(num_slots, request_sets):
    arbiter = RoundRobinArbiter(num_slots)
    for raw_requests in request_sets:
        requests = [slot for slot in raw_requests if slot < num_slots]
        grant = arbiter.grant(requests)
        if requests:
            assert grant in requests
        else:
            assert grant is None


@settings(max_examples=30, deadline=None)
@given(num_slots=st.integers(2, 6), rounds=st.integers(10, 60))
def test_arbiter_is_fair_under_full_load(num_slots, rounds):
    arbiter = RoundRobinArbiter(num_slots)
    counts = [0] * num_slots
    for _ in range(rounds * num_slots):
        counts[arbiter.grant(list(range(num_slots)))] += 1
    assert max(counts) - min(counts) <= 1


@settings(max_examples=10, deadline=None)
@given(dims=mesh_dims, data=st.data())
def test_interval_routing_delivers_every_message(dims, data):
    mesh = MeshTopology(dims)
    table = IntervalRoutingTable(mesh)
    source = data.draw(st.integers(0, mesh.num_nodes - 1))
    destination = data.draw(st.integers(0, mesh.num_nodes - 1))
    current = source
    for _ in range(2 * mesh.num_nodes + 1):
        if current == destination:
            break
        (port,) = table.lookup(current, destination)
        current = mesh.neighbor(current, port)
        assert current is not None
    assert current == destination


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
def test_running_stats_matches_statistics_module(values):
    stats = RunningStats()
    for value in values:
        stats.add(value)
    assert stats.count == len(values)
    assert stats.mean == statistics.fmean(values) or abs(
        stats.mean - statistics.fmean(values)
    ) < 1e-6 * max(1.0, abs(statistics.fmean(values)))
    expected_std = statistics.stdev(values) if len(values) > 1 else 0.0
    assert abs(stats.std - expected_std) < 1e-6 * max(1.0, expected_std)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


@settings(max_examples=50, deadline=None)
@given(length=st.integers(1, 64))
def test_message_flit_decomposition_properties(length):
    message = Message(source=0, destination=3, length=length, creation_cycle=0)
    flits = message.make_flits()
    assert len(flits) == length
    assert flits[0].is_head
    assert flits[-1].is_tail
    assert sum(1 for flit in flits if flit.is_head) == 1
    assert sum(1 for flit in flits if flit.is_tail) == 1
    assert [flit.sequence for flit in flits] == list(range(length))


@settings(max_examples=20, deadline=None)
@given(port=st.integers(1, 9))
def test_port_direction_round_trip(port):
    dimension, sign = port_direction(port)
    from repro.network.topology import port_for

    assert port_for(dimension, positive=(sign > 0)) == port
