"""Tests for the n-dimensional mesh topology."""

import pytest

from repro.network.topology import (
    LOCAL_PORT,
    MeshTopology,
    port_direction,
    port_for,
)


def test_port_numbering_convention():
    assert LOCAL_PORT == 0
    assert port_for(0, positive=True) == 1   # +X / East
    assert port_for(0, positive=False) == 2  # -X / West
    assert port_for(1, positive=True) == 3   # +Y / North
    assert port_for(1, positive=False) == 4  # -Y / South


def test_port_direction_round_trips():
    for dimension in range(3):
        for positive in (True, False):
            port = port_for(dimension, positive)
            assert port_direction(port) == (dimension, 1 if positive else -1)


def test_port_direction_rejects_local_port():
    with pytest.raises(ValueError):
        port_direction(LOCAL_PORT)


def test_mesh_counts_and_radix(mesh4x4):
    assert mesh4x4.num_nodes == 16
    assert mesh4x4.n_dims == 2
    assert mesh4x4.radix == 5


def test_mesh_rejects_degenerate_dimensions():
    with pytest.raises(ValueError):
        MeshTopology((1, 4))
    with pytest.raises(ValueError):
        MeshTopology(())


def test_coordinates_and_node_id_are_inverses(mesh4x4):
    for node in range(mesh4x4.num_nodes):
        assert mesh4x4.node_id(mesh4x4.coordinates(node)) == node


def test_coordinate_layout_dimension_zero_fastest(mesh4x4):
    assert mesh4x4.coordinates(0) == (0, 0)
    assert mesh4x4.coordinates(1) == (1, 0)
    assert mesh4x4.coordinates(4) == (0, 1)
    assert mesh4x4.node_id((3, 3)) == 15


def test_node_id_validates_bounds(mesh4x4):
    with pytest.raises(ValueError):
        mesh4x4.node_id((4, 0))
    with pytest.raises(ValueError):
        mesh4x4.node_id((0,))


def test_neighbors_interior_node(mesh4x4):
    node = mesh4x4.node_id((1, 1))
    assert mesh4x4.neighbor(node, port_for(0, True)) == mesh4x4.node_id((2, 1))
    assert mesh4x4.neighbor(node, port_for(0, False)) == mesh4x4.node_id((0, 1))
    assert mesh4x4.neighbor(node, port_for(1, True)) == mesh4x4.node_id((1, 2))
    assert mesh4x4.neighbor(node, port_for(1, False)) == mesh4x4.node_id((1, 0))


def test_neighbors_missing_at_mesh_edges(mesh4x4):
    corner = mesh4x4.node_id((0, 0))
    assert mesh4x4.neighbor(corner, port_for(0, False)) is None
    assert mesh4x4.neighbor(corner, port_for(1, False)) is None
    assert mesh4x4.neighbor(corner, port_for(0, True)) is not None


def test_neighbor_of_local_port_is_none(mesh4x4):
    assert mesh4x4.neighbor(5, LOCAL_PORT) is None


def test_reverse_port_pairs_up(mesh4x4):
    assert mesh4x4.reverse_port(port_for(0, True)) == port_for(0, False)
    assert mesh4x4.reverse_port(port_for(1, False)) == port_for(1, True)


def test_links_are_consistent_with_neighbors(mesh4x4):
    links = list(mesh4x4.links())
    # A 4x4 mesh has 2 * (3*4 + 3*4) = 48 unidirectional links.
    assert len(links) == 48
    for node, port, neighbor, neighbor_port in links:
        assert mesh4x4.neighbor(node, port) == neighbor
        assert mesh4x4.neighbor(neighbor, neighbor_port) == node


def test_relative_signs(mesh4x4):
    origin = mesh4x4.node_id((1, 1))
    assert mesh4x4.relative_signs(origin, mesh4x4.node_id((3, 2))) == (1, 1)
    assert mesh4x4.relative_signs(origin, mesh4x4.node_id((0, 1))) == (-1, 0)
    assert mesh4x4.relative_signs(origin, origin) == (0, 0)


def test_minimal_ports_quadrant_and_axis(mesh4x4):
    origin = mesh4x4.node_id((1, 1))
    northeast = mesh4x4.node_id((3, 3))
    assert set(mesh4x4.minimal_ports(origin, northeast)) == {
        port_for(0, True),
        port_for(1, True),
    }
    east_only = mesh4x4.node_id((3, 1))
    assert mesh4x4.minimal_ports(origin, east_only) == (port_for(0, True),)
    assert mesh4x4.minimal_ports(origin, origin) == (LOCAL_PORT,)


def test_dimension_order_port_prefers_x_first(mesh4x4):
    origin = mesh4x4.node_id((1, 1))
    assert mesh4x4.dimension_order_port(origin, mesh4x4.node_id((3, 3))) == port_for(0, True)
    assert mesh4x4.dimension_order_port(origin, mesh4x4.node_id((1, 3))) == port_for(1, True)
    assert mesh4x4.dimension_order_port(origin, origin) == LOCAL_PORT


def test_distance_is_manhattan(mesh4x4):
    assert mesh4x4.distance(mesh4x4.node_id((0, 0)), mesh4x4.node_id((3, 3))) == 6
    assert mesh4x4.distance(mesh4x4.node_id((2, 1)), mesh4x4.node_id((2, 1))) == 0


def test_average_distance_known_value():
    # For a k x k mesh the average one-dimension distance over ordered
    # distinct pairs gives the classic (k+1)/3 per dimension scaled by the
    # pair-counting correction; check against a direct small computation.
    mesh = MeshTopology((3, 3))
    total, count = 0, 0
    for a in range(9):
        for b in range(9):
            if a != b:
                total += mesh.distance(a, b)
                count += 1
    assert mesh.average_distance() == pytest.approx(total / count)


def test_bisection_and_saturation_rate():
    mesh = MeshTopology((16, 16))
    assert mesh.bisection_channels() == 32
    assert mesh.saturation_flit_rate() == pytest.approx(0.25)
    rectangular = MeshTopology((8, 4))
    # The binding cut is across the longer (8-wide) dimension.
    assert rectangular.bisection_channels() == 2 * 4
    assert rectangular.saturation_flit_rate() == pytest.approx(0.5)


def test_three_dimensional_mesh():
    mesh = MeshTopology((3, 3, 3))
    assert mesh.num_nodes == 27
    assert mesh.radix == 7
    center = mesh.node_id((1, 1, 1))
    corner = mesh.node_id((2, 2, 2))
    assert mesh.distance(center, corner) == 3
    assert len(mesh.minimal_ports(center, corner)) == 3
