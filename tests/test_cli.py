"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main

TINY_ARGS = [
    "--mesh", "4x4",
    "--message-length", "4",
    "--messages", "150",
    "--warmup", "20",
    "--load", "0.2",
]


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_bad_mesh_and_loads():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--mesh", "axb"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--loads", "0.1,x"])


def test_run_command_prints_a_summary_row(capsys):
    exit_code = main(["run", *TINY_ARGS])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "latency" in output
    assert "uniform" in output


def test_run_command_honours_configuration_flags(capsys):
    exit_code = main(
        ["run", *TINY_ARGS, "--traffic", "transpose", "--selector", "lru",
         "--pipeline", "proud", "--table", "full"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "transpose" in output
    assert "lru" in output
    assert "proud" in output


def test_sweep_command_prints_one_row_per_load(capsys):
    exit_code = main(["sweep", *TINY_ARGS, "--loads", "0.1,0.3"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
    # header + separator + two data rows
    assert len(lines) == 4
    assert lines[0].startswith("load")


def test_experiment_names_cover_every_paper_item():
    assert set(EXPERIMENTS) == {
        "figure5", "table3", "figure6", "table4", "table5", "figure7",
    }


def test_experiment_table5_is_analytic_and_fast(capsys):
    exit_code = main(["experiment", "table5", "--scale", "tiny"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "economical-storage" in output
    assert "full-table" in output


def test_experiment_figure7_prints_the_programming_table(capsys):
    exit_code = main(["experiment", "figure7"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "north_last_ports" in output
    assert "+Y" in output


def test_experiment_rejects_unknown_name():
    with pytest.raises(SystemExit):
        main(["experiment", "figure99"])
