"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main

TINY_ARGS = [
    "--mesh", "4x4",
    "--message-length", "4",
    "--messages", "150",
    "--warmup", "20",
    "--load", "0.2",
]


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_bad_mesh_and_loads():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--mesh", "axb"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--loads", "0.1,x"])


def test_run_command_prints_a_summary_row(capsys):
    exit_code = main(["run", *TINY_ARGS])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "latency" in output
    assert "uniform" in output


def test_run_command_honours_configuration_flags(capsys):
    exit_code = main(
        ["run", *TINY_ARGS, "--traffic", "transpose", "--selector", "lru",
         "--pipeline", "proud", "--table", "full"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "transpose" in output
    assert "lru" in output
    assert "proud" in output


def test_sweep_command_prints_one_row_per_load(capsys):
    exit_code = main(["sweep", *TINY_ARGS, "--loads", "0.1,0.3"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
    # header + separator + two data rows
    assert len(lines) == 4
    assert lines[0].startswith("load")


def test_experiment_names_cover_every_paper_item():
    assert set(EXPERIMENTS) == {
        "figure5", "table3", "figure6", "table4", "table5", "figure7",
    }


def test_experiment_table5_is_analytic_and_fast(capsys):
    exit_code = main(["experiment", "table5", "--scale", "tiny"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "economical-storage" in output
    assert "full-table" in output


def test_experiment_figure7_prints_the_programming_table(capsys):
    exit_code = main(["experiment", "figure7"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "north_last_ports" in output
    assert "+Y" in output


def test_experiment_rejects_unknown_name():
    with pytest.raises(SystemExit):
        main(["experiment", "figure99"])


def test_run_command_caches_results(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(["run", *TINY_ARGS, "--cache-dir", str(cache_dir)]) == 0
    first = capsys.readouterr().out
    assert len(list(cache_dir.glob("*.json"))) == 1
    # Second invocation is served from the cache and prints the same row.
    assert main(["run", *TINY_ARGS, "--cache-dir", str(cache_dir)]) == 0
    assert capsys.readouterr().out == first


def test_sweep_command_accepts_workers(capsys):
    exit_code = main(["sweep", *TINY_ARGS, "--loads", "0.1,0.3", "--workers", "2"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
    assert len(lines) == 4


def test_campaign_command_prints_markdown_report(capsys):
    exit_code = main(
        ["campaign", "--scale", "tiny", "--loads", "0.2", "--patterns", "uniform"]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("## Reproduction campaign")
    assert "### Figure 5" in captured.out
    assert "simulations run" in captured.err


def test_campaign_command_warm_cache_runs_zero_simulations(tmp_path, capsys):
    cache_dir = str(tmp_path / "campaign-cache")
    args = ["campaign", "--scale", "tiny", "--loads", "0.2",
            "--patterns", "uniform", "--cache-dir", cache_dir]
    assert main(args) == 0
    capsys.readouterr()
    assert main([*args, "--workers", "2"]) == 0
    captured = capsys.readouterr()
    assert "campaign: 0 simulations run" in captured.err


def test_analytic_experiments_do_not_create_a_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "never-created"
    assert main(["experiment", "table5", "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert not cache_dir.exists()


def test_workers_flag_rejects_non_positive_counts():
    with pytest.raises(SystemExit):
        main(["run", *TINY_ARGS, "--workers", "0"])
    with pytest.raises(SystemExit):
        main(["run", *TINY_ARGS, "--workers", "-3"])


def test_cache_dir_pointing_at_a_file_fails_cleanly(tmp_path):
    not_a_dir = tmp_path / "file"
    not_a_dir.write_text("")
    with pytest.raises(SystemExit) as excinfo:
        main(["run", *TINY_ARGS, "--cache-dir", str(not_a_dir)])
    assert "cannot use cache directory" in str(excinfo.value)


def test_campaign_bad_output_path_still_prints_the_report(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--scale", "tiny", "--loads", "0.2",
              "--patterns", "uniform", "--output", "/no/such/dir/report.md"])
    assert "cannot write report" in str(excinfo.value)
    assert capsys.readouterr().out.startswith("## Reproduction campaign")


def test_campaign_rejects_more_than_two_loads():
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--scale", "tiny", "--loads", "0.1,0.2,0.3"])
    assert "one or two loads" in str(excinfo.value)


def test_campaign_command_writes_output_file(tmp_path, capsys):
    output = tmp_path / "report.md"
    exit_code = main(
        ["campaign", "--scale", "tiny", "--loads", "0.2",
         "--patterns", "uniform", "--output", str(output)]
    )
    assert exit_code == 0
    capsys.readouterr()
    assert output.read_text().startswith("## Reproduction campaign")
