"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main

TINY_ARGS = [
    "--mesh", "4x4",
    "--message-length", "4",
    "--messages", "150",
    "--warmup", "20",
    "--load", "0.2",
]


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_bad_mesh_and_loads():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--mesh", "axb"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--loads", "0.1,x"])


def test_run_command_prints_a_summary_row(capsys):
    exit_code = main(["run", *TINY_ARGS])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "latency" in output
    assert "uniform" in output


def test_run_command_honours_configuration_flags(capsys):
    exit_code = main(
        ["run", *TINY_ARGS, "--traffic", "transpose", "--selector", "lru",
         "--pipeline", "proud", "--table", "full"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "transpose" in output
    assert "lru" in output
    assert "proud" in output


def test_run_command_accepts_schedule_mode_flags(capsys):
    # Pinning both busy-path schedule axes must not change the numbers
    # relative to the defaults (both axes are bit-identical pairs).
    exit_code = main(["run", *TINY_ARGS, "--switch-mode", "reference",
                      "--link-mode", "reference"])
    assert exit_code == 0
    pinned = capsys.readouterr().out
    assert main(["run", *TINY_ARGS]) == 0
    assert capsys.readouterr().out == pinned


def test_parser_rejects_unknown_link_mode():
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--link-mode", "telepathy"])


def test_sweep_command_prints_one_row_per_load(capsys):
    exit_code = main(["sweep", *TINY_ARGS, "--loads", "0.1,0.3"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
    # header + separator + two data rows
    assert len(lines) == 4
    assert lines[0].startswith("load")


def test_experiment_names_cover_every_paper_item():
    assert set(EXPERIMENTS) == {
        "figure5", "table3", "figure6", "table4", "table5", "figure7",
    }


def test_experiment_table5_is_analytic_and_fast(capsys):
    exit_code = main(["experiment", "table5", "--scale", "tiny"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "economical-storage" in output
    assert "full-table" in output


def test_experiment_figure7_prints_the_programming_table(capsys):
    exit_code = main(["experiment", "figure7"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "north_last_ports" in output
    assert "+Y" in output


def test_experiment_rejects_unknown_name():
    with pytest.raises(SystemExit):
        main(["experiment", "figure99"])


def test_run_command_caches_results(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(["run", *TINY_ARGS, "--cache-dir", str(cache_dir)]) == 0
    first = capsys.readouterr().out
    assert len(list(cache_dir.glob("*.json"))) == 1
    # Second invocation is served from the cache and prints the same row.
    assert main(["run", *TINY_ARGS, "--cache-dir", str(cache_dir)]) == 0
    assert capsys.readouterr().out == first


def test_sweep_command_accepts_workers(capsys):
    exit_code = main(["sweep", *TINY_ARGS, "--loads", "0.1,0.3", "--workers", "2"])
    assert exit_code == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
    assert len(lines) == 4


def test_campaign_command_prints_markdown_report(capsys):
    exit_code = main(
        ["campaign", "--scale", "tiny", "--loads", "0.2", "--patterns", "uniform"]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("## Reproduction campaign")
    assert "### Figure 5" in captured.out
    assert "simulations run" in captured.err


def test_campaign_command_warm_cache_runs_zero_simulations(tmp_path, capsys):
    cache_dir = str(tmp_path / "campaign-cache")
    args = ["campaign", "--scale", "tiny", "--loads", "0.2",
            "--patterns", "uniform", "--cache-dir", cache_dir]
    assert main(args) == 0
    capsys.readouterr()
    assert main([*args, "--workers", "2"]) == 0
    captured = capsys.readouterr()
    assert "campaign: 0 simulations run" in captured.err


def test_analytic_experiments_do_not_create_a_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "never-created"
    assert main(["experiment", "table5", "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert not cache_dir.exists()


def test_workers_flag_rejects_non_positive_counts():
    with pytest.raises(SystemExit):
        main(["run", *TINY_ARGS, "--workers", "0"])
    with pytest.raises(SystemExit):
        main(["run", *TINY_ARGS, "--workers", "-3"])


def test_cache_dir_pointing_at_a_file_fails_cleanly(tmp_path):
    not_a_dir = tmp_path / "file"
    not_a_dir.write_text("")
    with pytest.raises(SystemExit) as excinfo:
        main(["run", *TINY_ARGS, "--cache-dir", str(not_a_dir)])
    assert "cannot use cache directory" in str(excinfo.value)


def test_campaign_bad_output_path_still_prints_the_report(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--scale", "tiny", "--loads", "0.2",
              "--patterns", "uniform", "--output", "/no/such/dir/report.md"])
    assert "cannot write report" in str(excinfo.value)
    assert capsys.readouterr().out.startswith("## Reproduction campaign")


def test_campaign_rejects_more_than_two_loads():
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--scale", "tiny", "--loads", "0.1,0.2,0.3"])
    assert "one or two loads" in str(excinfo.value)


def test_campaign_command_writes_output_file(tmp_path, capsys):
    output = tmp_path / "report.md"
    exit_code = main(
        ["campaign", "--scale", "tiny", "--loads", "0.2",
         "--patterns", "uniform", "--output", str(output)]
    )
    assert exit_code == 0
    capsys.readouterr()
    assert output.read_text().startswith("## Reproduction campaign")


# -- the study subcommand ------------------------------------------------------------


def test_study_list_shows_builtins_and_registries(capsys):
    assert main(["study", "--list"]) == 0
    output = capsys.readouterr().out
    assert "figure5" in output
    assert "campaign" in output
    assert "traffic" in output
    assert "uniform" in output


def test_study_without_spec_fails_cleanly():
    with pytest.raises(SystemExit) as excinfo:
        main(["study"])
    assert "spec file or built-in name" in str(excinfo.value)


def test_study_unknown_name_lists_alternatives():
    with pytest.raises(SystemExit) as excinfo:
        main(["study", "figure99"])
    assert "figure5" in str(excinfo.value)


def test_study_runs_builtin_analytic_by_name(capsys):
    assert main(["study", "figure7"]) == 0
    output = capsys.readouterr().out
    assert "north_last_ports" in output
    assert "+Y" in output


def test_study_runs_a_spec_file_and_writes_output(tmp_path, capsys):
    from repro.core.config import SimulationConfig
    from repro.scenario.builtin import sweep_study

    spec = sweep_study(
        SimulationConfig.tiny(measure_messages=100, warmup_messages=10),
        loads=(0.1, 0.2),
        stop_at_saturation=False,
    )
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(spec.to_json(), encoding="utf-8")
    report_file = tmp_path / "report.txt"
    cache_dir = tmp_path / "cache"
    args = ["study", str(spec_file), "--cache-dir", str(cache_dir),
            "--output", str(report_file)]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("load")
    assert report_file.read_text() == captured.out[: len(report_file.read_text())]
    assert "study sweep: 2 simulations run" in captured.err
    # Workers and the warm cache reproduce the identical report.
    assert main([*args, "--workers", "2"]) == 0
    rerun = capsys.readouterr()
    assert rerun.out == captured.out
    assert "0 simulations run" in rerun.err


def test_study_campaign_prints_markdown(tmp_path, capsys):
    # The tiny builtin campaign is the slowest study; trim it via a spec
    # derived from the shipped one with only the two analytic members.
    import json as json_module

    from repro.scenario.builtin import spec_path

    data = json_module.loads(spec_path("campaign").read_text(encoding="utf-8"))
    data["members"] = [m for m in data["members"] if m["kind"] == "analytic"]
    spec_file = tmp_path / "analytic_campaign.json"
    spec_file.write_text(json_module.dumps(data), encoding="utf-8")
    assert main(["study", str(spec_file)]) == 0
    output = capsys.readouterr().out
    assert output.startswith("## Reproduction campaign")
    assert "### Table 5" in output
    assert "### Figure 7" in output


def test_study_rejects_unreadable_spec_file(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["study", str(tmp_path / "missing.json")])
    assert "cannot read study spec" in str(excinfo.value)


def test_study_bad_component_name_fails_cleanly(tmp_path):
    import json as json_module

    from repro.core.config import SimulationConfig

    base = SimulationConfig.tiny().to_dict()
    base["traffic"] = "no-such-pattern"
    spec_file = tmp_path / "bad_component.json"
    spec_file.write_text(
        json_module.dumps({"study": "bad", "kind": "grid", "base": base}),
        encoding="utf-8",
    )
    with pytest.raises(SystemExit) as excinfo:
        main(["study", str(spec_file)])
    message = str(excinfo.value)
    assert message.startswith("lapses: cannot run study")
    assert "no-such-pattern" in message


def test_study_malformed_spec_shape_fails_cleanly(tmp_path):
    import json as json_module

    spec_file = tmp_path / "malformed.json"
    # An axis without "field"/"variants" is a shape error, not a value error.
    spec_file.write_text(
        json_module.dumps(
            {"study": "bad", "kind": "grid", "base": {}, "axes": [{"values": [1]}]}
        ),
        encoding="utf-8",
    )
    with pytest.raises(SystemExit) as excinfo:
        main(["study", str(spec_file)])
    assert "invalid study spec" in str(excinfo.value)
