"""Tests for the routing algorithms (dimension-order, Duato, turn model)."""

import pytest

from repro.network.topology import LOCAL_PORT, MeshTopology, TorusTopology, port_for
from repro.routing.base import RouteDecision, VirtualChannelClasses
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.routing.turn_model import TurnModelRouting
from repro.tables.economical import EconomicalStorageTable
from repro.tables.full_table import FullRoutingTable

EAST = port_for(0, True)
NORTH = port_for(1, True)


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


def test_route_decision_all_ports_deduplicates():
    decision = RouteDecision(adaptive_ports=(1, 3), escape_port=1)
    assert decision.all_ports == (1, 3)
    decision = RouteDecision(adaptive_ports=(3,), escape_port=1)
    assert decision.all_ports == (3, 1)


def test_vc_classes_reject_overlap():
    with pytest.raises(ValueError):
        VirtualChannelClasses(adaptive_vcs=(0, 1), escape_vcs=(1,))


def test_dimension_order_decision_and_classes(mesh):
    algorithm = DimensionOrderRouting(mesh)
    origin = mesh.node_id((1, 1))
    decision = algorithm.decide(origin, mesh.node_id((3, 3)))
    assert decision.adaptive_ports == (EAST,)
    assert decision.escape_port == EAST
    classes = algorithm.vc_classes(4)
    assert classes.adaptive_vcs == (0, 1, 2, 3)
    assert classes.escape_vcs == ()


def test_dimension_order_on_torus_uses_dateline_classes():
    torus = TorusTopology((4, 4))
    algorithm = DimensionOrderRouting(torus)
    assert algorithm.min_virtual_channels == 2
    with pytest.raises(ValueError):
        algorithm.vc_classes(1)  # one VC cannot hold two dateline classes
    classes = algorithm.vc_classes(4)
    assert classes.adaptive_vcs == ()
    assert classes.escape_vcs == (0, 1, 2, 3)
    assert classes.escape_classes == ((0, 1), (2, 3))
    # Decisions must flow entirely through the class-aware escape branch.
    origin = torus.node_id((0, 0))
    decision = algorithm.decide(origin, torus.node_id((3, 0)))
    assert decision.adaptive_ports == ()
    assert decision.escape_port != LOCAL_PORT


def test_duato_classes_reserve_escape_channels(mesh):
    table = EconomicalStorageTable(mesh)
    algorithm = DuatoFullyAdaptiveRouting(mesh, table, num_escape_vcs=1)
    classes = algorithm.vc_classes(4)
    assert classes.escape_vcs == (0,)
    assert classes.adaptive_vcs == (1, 2, 3)
    assert algorithm.min_virtual_channels == 2


def test_duato_requires_enough_vcs(mesh):
    table = EconomicalStorageTable(mesh)
    algorithm = DuatoFullyAdaptiveRouting(mesh, table)
    with pytest.raises(ValueError):
        algorithm.vc_classes(1)


def test_duato_decision_combines_table_and_escape(mesh):
    table = EconomicalStorageTable(mesh)
    algorithm = DuatoFullyAdaptiveRouting(mesh, table)
    origin = mesh.node_id((1, 1))
    decision = algorithm.decide(origin, mesh.node_id((3, 3)))
    assert set(decision.adaptive_ports) == {EAST, NORTH}
    assert decision.escape_port == EAST  # dimension-order goes X first
    local = algorithm.decide(origin, origin)
    assert local.adaptive_ports == (LOCAL_PORT,)
    assert local.escape_port == LOCAL_PORT


def test_duato_with_full_table_matches_economical(mesh):
    economical = DuatoFullyAdaptiveRouting(mesh, EconomicalStorageTable(mesh))
    full = DuatoFullyAdaptiveRouting(mesh, FullRoutingTable(mesh))
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            a = economical.decide(source, destination)
            b = full.decide(source, destination)
            assert set(a.adaptive_ports) == set(b.adaptive_ports)
            assert a.escape_port == b.escape_port


def test_duato_torus_needs_two_escape_vcs(mesh):
    torus = TorusTopology((4, 4))
    # One escape VC cannot hold two dateline classes; zero never works.
    with pytest.raises(ValueError, match="2 escape VCs"):
        DuatoFullyAdaptiveRouting(torus, EconomicalStorageTable(torus))
    with pytest.raises(ValueError):
        DuatoFullyAdaptiveRouting(mesh, EconomicalStorageTable(mesh), num_escape_vcs=0)
    algorithm = DuatoFullyAdaptiveRouting(
        torus, EconomicalStorageTable(torus), num_escape_vcs=2
    )
    classes = algorithm.vc_classes(4)
    assert classes.escape_vcs == (0, 1)
    assert classes.adaptive_vcs == (2, 3)
    assert classes.escape_classes == ((0,), (1,))
    # On a mesh the discipline is off: no dateline classes are declared.
    on_mesh = DuatoFullyAdaptiveRouting(mesh, EconomicalStorageTable(mesh))
    assert on_mesh.vc_classes(4).escape_classes is None


def test_turn_model_routing_decisions(mesh):
    algorithm = TurnModelRouting(mesh, model="north-last")
    origin = mesh.node_id((1, 1))
    decision = algorithm.decide(origin, mesh.node_id((3, 3)))
    assert decision.adaptive_ports == (EAST,)
    assert decision.escape_port == EAST
    assert algorithm.min_virtual_channels == 1
    classes = algorithm.vc_classes(2)
    assert classes.escape_vcs == ()


def test_turn_model_with_programmed_table(mesh):
    from repro.routing.providers import north_last_provider

    table = EconomicalStorageTable(mesh, provider=north_last_provider(mesh))
    direct = TurnModelRouting(mesh, model="north-last")
    tabled = TurnModelRouting(mesh, model="north-last", table=table)
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            assert set(direct.decide(source, destination).adaptive_ports) == set(
                tabled.decide(source, destination).adaptive_ports
            )


def test_turn_model_rejects_unknown_model(mesh):
    with pytest.raises(ValueError):
        TurnModelRouting(mesh, model="east-last")
