"""Tests for the two-phase cycle-driven simulation kernel."""

import pytest

from repro.engine.clock import Clock
from repro.engine.kernel import SimulationKernel


class RecordingComponent:
    """Records the order and cycles of its deliver/evaluate calls."""

    def __init__(self, name, log):
        self.name = name
        self.log = log

    def deliver(self, cycle):
        self.log.append((cycle, self.name, "deliver"))

    def evaluate(self, cycle):
        self.log.append((cycle, self.name, "evaluate"))


def test_step_runs_deliver_before_evaluate_for_all_components():
    log = []
    kernel = SimulationKernel()
    kernel.register_all([RecordingComponent("a", log), RecordingComponent("b", log)])
    kernel.step()
    assert log == [
        (0, "a", "deliver"),
        (0, "b", "deliver"),
        (0, "a", "evaluate"),
        (0, "b", "evaluate"),
    ]


def test_step_advances_clock():
    kernel = SimulationKernel()
    kernel.step()
    kernel.step()
    assert kernel.clock.now == 2


def test_run_executes_requested_cycles():
    log = []
    kernel = SimulationKernel()
    kernel.register(RecordingComponent("a", log))
    executed = kernel.run(5)
    assert executed == 5
    assert kernel.clock.now == 5
    assert len(log) == 10  # deliver + evaluate per cycle


def test_run_honours_stop_condition():
    kernel = SimulationKernel()
    kernel.add_stop_condition(lambda cycle: cycle >= 3)
    executed = kernel.run(100)
    assert executed == 3
    assert kernel.clock.now == 3


def test_run_rejects_negative_budget():
    with pytest.raises(ValueError):
        SimulationKernel().run(-1)


def test_run_with_zero_budget_does_nothing():
    kernel = SimulationKernel()
    assert kernel.run(0) == 0
    assert kernel.clock.now == 0


def test_external_clock_is_used():
    clock = Clock(start=10)
    kernel = SimulationKernel(clock=clock)
    kernel.step()
    assert clock.now == 11


def test_components_property_preserves_registration_order():
    kernel = SimulationKernel()
    first = RecordingComponent("a", [])
    second = RecordingComponent("b", [])
    kernel.register(first)
    kernel.register(second)
    assert kernel.components == [first, second]


# -- activity-aware schedule --------------------------------------------------


class SleepyComponent(RecordingComponent):
    """Activity-aware component scripted with a queue of event cycles.

    Runs (and logs) only when the kernel schedules it; reports the next
    scripted event from ``events`` and sleeps in between (``None`` once
    the script is exhausted).
    """

    def __init__(self, name, log, events):
        super().__init__(name, log)
        self.events = sorted(events)
        self.wake = None

    def set_wake(self, callback):
        self.wake = callback

    def next_event_cycle(self, cycle):
        while self.events and self.events[0] < cycle:
            self.events.pop(0)
        return self.events[0] if self.events else None


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError):
        SimulationKernel(mode="lazy")


def test_activity_mode_runs_plain_components_every_cycle():
    """Components without quiescence hooks degrade to the exhaustive schedule."""
    log_activity, log_exhaustive = [], []
    for mode, log in (("activity", log_activity), ("exhaustive", log_exhaustive)):
        kernel = SimulationKernel(mode=mode)
        kernel.register_all([RecordingComponent("a", log), RecordingComponent("b", log)])
        kernel.run(4)
    assert log_activity == log_exhaustive


def test_activity_mode_skips_quiescent_components():
    log = []
    kernel = SimulationKernel(mode="activity")
    kernel.register(SleepyComponent("s", log, events=[0, 3, 7]))
    executed = kernel.run(10)
    assert executed == 10
    assert kernel.clock.now == 10
    # Both phases ran exactly at the scripted event cycles.
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 3, 7]


def test_activity_mode_fast_forwards_an_idle_system():
    """With every component asleep the clock jumps straight between events
    instead of burning empty cycles, and still lands on the full budget."""
    log = []
    kernel = SimulationKernel(mode="activity")
    kernel.register(SleepyComponent("s", log, events=[100]))
    executed = kernel.run(1000)
    assert executed == 1000
    assert kernel.clock.now == 1000
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 100]


def test_wake_callback_reactivates_a_sleeping_component():
    log = []
    sleeper = SleepyComponent("s", log, events=[])
    kernel = SimulationKernel(mode="activity")
    kernel.register(sleeper)
    kernel.run(3)  # runs at cycle 0, then sleeps with no scheduled event
    assert [entry[0] for entry in log] == [0, 0]
    sleeper.wake(5)
    kernel.run(10)
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 5]
    assert kernel.clock.now == 13


def test_wake_keeps_the_earliest_of_several_requests():
    log = []
    sleeper = SleepyComponent("s", log, events=[])
    kernel = SimulationKernel(mode="activity")
    kernel.register(sleeper)
    kernel.run(1)
    sleeper.wake(9)
    sleeper.wake(4)  # earlier wake supersedes the later one
    sleeper.wake(7)  # later wake is ignored while an earlier one is pending
    kernel.run(20)
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 4]


def test_activity_mode_honours_stop_conditions_at_visited_cycles():
    log = []
    kernel = SimulationKernel(mode="activity")
    kernel.register(SleepyComponent("s", log, events=[0, 2, 4, 6]))
    kernel.add_stop_condition(lambda cycle: cycle >= 5)
    executed = kernel.run(100)
    # Stop conditions are checked at every loop iteration (cycle 5 included,
    # before any fast-forward decision), exactly as the exhaustive kernel
    # would: both stop with the clock at 5.
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 2, 4]
    assert executed == 5
    assert kernel.clock.now == 5


def test_activity_step_executes_single_cycles():
    log = []
    kernel = SimulationKernel(mode="activity")
    kernel.register(SleepyComponent("s", log, events=[0, 2]))
    assert kernel.step() == 0
    assert kernel.step() == 1  # sleeper skipped, clock still advances
    assert kernel.step() == 2
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 2]


# -- sender-side active hint --------------------------------------------------


class HintedComponent(SleepyComponent):
    """Sleepy component that also accepts the kernel's active-flag view,
    the way routers and interfaces do via ``set_active_hint``."""

    def __init__(self, name, log, events):
        super().__init__(name, log, events)
        self.flags = None
        self.index = None

    def set_active_hint(self, flags, index):
        self.flags = flags
        self.index = index


def test_register_installs_the_live_active_flag_view_in_both_modes():
    """``set_active_hint`` receives the kernel's *own* active list (not a
    copy) plus the component's slot, in exhaustive and activity mode
    alike, and the slot starts True."""
    for mode in ("exhaustive", "activity"):
        kernel = SimulationKernel(mode=mode)
        component = HintedComponent("h", [], events=[])
        kernel.register(component)
        assert component.flags is kernel._active, mode
        assert component.index == 0, mode
        assert component.flags[component.index] is True, mode


def test_active_hint_tracks_quiescence_and_wakeups():
    """The flag the senders read goes False when the component sleeps and
    True again once a wake re-activates it."""
    log = []
    kernel = SimulationKernel(mode="activity")
    component = HintedComponent("h", log, events=[])
    kernel.register(component)
    assert component.flags[component.index]
    kernel.run(2)  # runs cycle 0, then quiesces with nothing scheduled
    assert not component.flags[component.index]
    component.wake(3)
    kernel.run(5)  # re-activated at cycle 3, then quiesces again
    assert [entry[0] for entry in log if entry[2] == "deliver"] == [0, 3]
    assert not component.flags[component.index]


def test_exhaustive_mode_keeps_the_hint_true_forever():
    """Exhaustive kernels never sleep components, so a guarded sender
    (skip the callback when the flag is True) never calls it at all."""
    kernel = SimulationKernel()
    component = HintedComponent("h", [], events=[])
    kernel.register(component)
    kernel.run(5)
    assert component.flags[component.index] is True


def _drive_wake_schedule(skip_when_active):
    """One receiver plus a scripted sender; the sender either always
    invokes the wake callback (the old behaviour) or first checks the
    active flag the way the wired send paths now do."""
    log = []
    kernel = SimulationKernel(mode="activity")
    receiver = HintedComponent("r", log, events=[])
    kernel.register(receiver)

    def send(when):
        if skip_when_active and receiver.flags[receiver.index]:
            return
        receiver.wake(when)

    send(0)  # receiver still active from registration
    kernel.run(3)  # receiver runs cycle 0, then sleeps
    send(5)  # receiver asleep: the wake must go through
    send(7)  # still asleep; later wake ignored while 5 is pending
    kernel.run(10)
    return [entry[0] for entry in log if entry[2] == "deliver"]


def test_skipping_wake_when_active_is_identical_to_always_waking():
    """The senders' flag check is exactly the condition under which
    ``_wake`` early-returns, so guarding the callback changes nothing
    about which cycles the receiver runs."""
    guarded = _drive_wake_schedule(skip_when_active=True)
    always = _drive_wake_schedule(skip_when_active=False)
    assert guarded == always == [0, 5]


def test_mode_is_reported():
    assert SimulationKernel().mode == "exhaustive"
    assert SimulationKernel(mode="activity").mode == "activity"
    assert "activity" in repr(SimulationKernel(mode="activity"))
