"""Tests for the two-phase cycle-driven simulation kernel."""

import pytest

from repro.engine.clock import Clock
from repro.engine.kernel import SimulationKernel


class RecordingComponent:
    """Records the order and cycles of its deliver/evaluate calls."""

    def __init__(self, name, log):
        self.name = name
        self.log = log

    def deliver(self, cycle):
        self.log.append((cycle, self.name, "deliver"))

    def evaluate(self, cycle):
        self.log.append((cycle, self.name, "evaluate"))


def test_step_runs_deliver_before_evaluate_for_all_components():
    log = []
    kernel = SimulationKernel()
    kernel.register_all([RecordingComponent("a", log), RecordingComponent("b", log)])
    kernel.step()
    assert log == [
        (0, "a", "deliver"),
        (0, "b", "deliver"),
        (0, "a", "evaluate"),
        (0, "b", "evaluate"),
    ]


def test_step_advances_clock():
    kernel = SimulationKernel()
    kernel.step()
    kernel.step()
    assert kernel.clock.now == 2


def test_run_executes_requested_cycles():
    log = []
    kernel = SimulationKernel()
    kernel.register(RecordingComponent("a", log))
    executed = kernel.run(5)
    assert executed == 5
    assert kernel.clock.now == 5
    assert len(log) == 10  # deliver + evaluate per cycle


def test_run_honours_stop_condition():
    kernel = SimulationKernel()
    kernel.add_stop_condition(lambda cycle: cycle >= 3)
    executed = kernel.run(100)
    assert executed == 3
    assert kernel.clock.now == 3


def test_run_rejects_negative_budget():
    with pytest.raises(ValueError):
        SimulationKernel().run(-1)


def test_run_with_zero_budget_does_nothing():
    kernel = SimulationKernel()
    assert kernel.run(0) == 0
    assert kernel.clock.now == 0


def test_external_clock_is_used():
    clock = Clock(start=10)
    kernel = SimulationKernel(clock=clock)
    kernel.step()
    assert clock.now == 11


def test_components_property_preserves_registration_order():
    kernel = SimulationKernel()
    first = RecordingComponent("a", [])
    second = RecordingComponent("b", [])
    kernel.register(first)
    kernel.register(second)
    assert kernel.components == [first, second]
