"""Tests for the component registries and plugin machinery."""

import random

import pytest

from repro import registry
from repro.registry import REGISTRIES, Registry, register
from repro.core.config import SimulationConfig
from repro.selection.base import PathSelector
from repro.traffic.patterns import TrafficPattern, make_pattern
from repro.network.topology import MeshTopology


# -- generic Registry behaviour ------------------------------------------------------


def test_register_and_get_round_trip():
    reg = Registry("widget")
    sentinel = object()
    reg.register("thing", obj=sentinel)
    assert reg.get("thing") is sentinel
    assert "thing" in reg
    assert reg.names() == ("thing",)
    assert len(reg) == 1


def test_get_unknown_name_lists_sorted_alternatives():
    reg = Registry("widget")
    reg.register("zeta", obj=object())
    reg.register("alpha", obj=object())
    with pytest.raises(ValueError) as excinfo:
        reg.get("nope")
    message = str(excinfo.value)
    assert "unknown widget 'nope'" in message
    assert "alpha, zeta" in message


def test_decorator_uses_the_name_attribute():
    reg = Registry("widget")

    @reg.register()
    class Gadget:
        name = "gadget"

    assert reg.get("gadget") is Gadget


def test_duplicate_registration_rejected_unless_replace():
    reg = Registry("widget")
    first, second = object(), object()
    reg.register("thing", obj=first)
    # Re-registering the identical object is a no-op (idempotent imports).
    reg.register("thing", obj=first)
    with pytest.raises(ValueError) as excinfo:
        reg.register("thing", obj=second)
    assert "already registered" in str(excinfo.value)
    reg.register("thing", obj=second, replace=True)
    assert reg.get("thing") is second


def test_registration_without_any_name_fails():
    reg = Registry("widget")
    with pytest.raises(ValueError):
        reg.register(obj=object())


def test_describe_reports_provenance_and_summary():
    reg = Registry("widget")

    @reg.register("doc")
    def factory():
        """Builds the documented widget."""

    rows = reg.describe()
    assert rows == [
        {
            "name": "doc",
            "provenance": f"{__name__}:test_describe_reports_provenance_and_summary.<locals>.factory",
            "summary": "Builds the documented widget.",
        }
    ]


def test_unregister_removes_an_entry():
    reg = Registry("widget")
    reg.register("thing", obj=object())
    reg.unregister("thing")
    assert "thing" not in reg
    reg.unregister("thing")  # idempotent


# -- the global registries -----------------------------------------------------------


def test_builtin_registries_are_populated_lazily():
    assert "uniform" in registry.TRAFFIC_PATTERNS
    assert "duato" in registry.ROUTING_ALGORITHMS
    assert "economical" in registry.ROUTING_TABLES
    assert "lru" in registry.SELECTORS
    assert "la-proud" in registry.PIPELINES
    assert "exponential" in registry.INJECTIONS
    assert {"mesh", "torus"} <= set(registry.TOPOLOGIES.names())


def test_register_helper_rejects_unknown_kind():
    with pytest.raises(ValueError) as excinfo:
        register("flux-capacitor", "x")
    assert "unknown registry kind" in str(excinfo.value)


def test_describe_registries_covers_every_kind():
    snapshot = registry.describe_registries()
    assert set(snapshot) == set(REGISTRIES)
    assert any(entry["name"] == "uniform" for entry in snapshot["traffic"])


def test_component_provenance_is_stable_and_complete():
    config = SimulationConfig.tiny()
    provenance = registry.config_component_provenance(config)
    assert set(provenance) == {
        "traffic", "routing", "table", "selector", "pipeline", "injection",
        "switch_mode", "link_mode", "core_mode", "topology",
    }
    assert provenance["switch_mode"] == "repro.router.switch:BATCHED"
    assert provenance["link_mode"] == "repro.network.link:BATCHED"
    assert provenance["core_mode"] == "repro.network.flatcore:FLAT"
    assert provenance["traffic"] == "repro.traffic.patterns:UniformPattern"
    assert provenance == registry.config_component_provenance(config)


def test_component_provenance_includes_workloads_and_skips_none():
    # Closed-loop configs gain a workload entry; open-loop configs omit
    # the None-valued field from the key surface entirely.
    open_loop = registry.config_component_provenance(SimulationConfig.tiny())
    assert "workload" not in open_loop
    closed = registry.config_component_provenance(
        SimulationConfig.tiny(workload="allreduce")
    )
    assert closed["workload"] == "repro.workload.builtin:ring_allreduce_workload"


# -- plugging in user components -----------------------------------------------------


class _EchoPattern(TrafficPattern):
    """Every node sends to node 0 (test pattern)."""

    name = "echo-zero"

    def destination(self, source, rng):
        return None if source == 0 else 0


@pytest.fixture
def echo_pattern_registered():
    register("traffic", obj=_EchoPattern)
    yield
    registry.TRAFFIC_PATTERNS.unregister("echo-zero")


def test_user_pattern_builds_through_make_pattern(echo_pattern_registered):
    pattern = make_pattern("echo-zero", MeshTopology((2, 2)))
    assert isinstance(pattern, _EchoPattern)
    assert pattern.destination(3, random.Random(0)) == 0
    assert "echo-zero" in registry.TRAFFIC_PATTERNS.names()


def test_user_pattern_passes_config_validation(echo_pattern_registered):
    config = SimulationConfig.tiny(traffic="echo-zero")
    assert config.traffic == "echo-zero"


def test_user_selector_plugs_into_the_simulator(echo_pattern_registered):
    @register("selector", "always-first")
    class AlwaysFirst(PathSelector):
        name = "always-first"

        def select(self, candidates):
            return candidates[0].port

    try:
        from repro.core.simulator import NetworkSimulator

        config = SimulationConfig.tiny(
            selector="always-first", measure_messages=30, warmup_messages=5
        )
        result = NetworkSimulator(config).run()
        assert result.summary.delivered > 0
    finally:
        registry.SELECTORS.unregister("always-first")


def test_load_plugin_imports_dotted_modules():
    module = registry.load_plugin("json")
    import json

    assert module is json


def test_editing_a_file_plugin_changes_its_provenance(tmp_path):
    plugin = tmp_path / "editable.py"
    body = (
        "from repro.registry import register\n"
        "from repro.traffic.patterns import TrafficPattern\n"
        "@register('traffic', 'editable-pattern', replace=True)\n"
        "class EditablePattern(TrafficPattern):\n"
        "    name = 'editable-pattern'\n"
        "    def destination(self, source, rng):\n"
        "        return None\n"
    )
    try:
        plugin.write_text(body, encoding="utf-8")
        registry.load_plugin(str(plugin))
        before = registry.TRAFFIC_PATTERNS.provenance("editable-pattern")
        # Edit the implementation: the content digest in the module name --
        # and therefore the provenance feeding the cache key -- must change.
        plugin.write_text(body + "\n# changed implementation\n", encoding="utf-8")
        registry.load_plugin(str(plugin))
        after = registry.TRAFFIC_PATTERNS.provenance("editable-pattern")
        assert before != after
    finally:
        registry.TRAFFIC_PATTERNS.unregister("editable-pattern")
        import sys as sys_module

        for name in [n for n in sys_module.modules if n.startswith("repro_plugin_editable")]:
            sys_module.modules.pop(name, None)
