"""Tests for injection processes and normalized-load calibration."""

import random

import pytest

from repro.network.topology import MeshTopology, TorusTopology
from repro.traffic.injection import (
    BernoulliInjection,
    ExponentialInjection,
    message_rate_for_load,
    saturation_flit_rate,
    saturation_message_rate,
)


def test_saturation_flit_rate_matches_topology():
    mesh = MeshTopology((16, 16))
    assert saturation_flit_rate(mesh) == pytest.approx(0.25)
    torus = TorusTopology((16, 16))
    assert saturation_flit_rate(torus) == pytest.approx(0.5)


def test_saturation_message_rate_divides_by_length():
    mesh = MeshTopology((16, 16))
    assert saturation_message_rate(mesh, 20) == pytest.approx(0.0125)
    with pytest.raises(ValueError):
        saturation_message_rate(mesh, 0)


def test_message_rate_for_load_scales_linearly():
    mesh = MeshTopology((8, 8))
    base = message_rate_for_load(mesh, 20, 0.1)
    assert message_rate_for_load(mesh, 20, 0.2) == pytest.approx(2 * base)
    assert message_rate_for_load(mesh, 20, 0.0) == 0.0
    with pytest.raises(ValueError):
        message_rate_for_load(mesh, 20, -0.1)


def test_exponential_intervals_have_the_right_mean():
    process = ExponentialInjection(rate=0.05)
    rng = random.Random(7)
    samples = [process.next_interval(rng) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(20.0, rel=0.05)


def test_exponential_zero_rate_never_fires():
    process = ExponentialInjection(rate=0.0)
    assert process.next_interval(random.Random(0)) == float("inf")


def test_bernoulli_intervals_are_integers_with_right_mean():
    process = BernoulliInjection(rate=0.25)
    rng = random.Random(11)
    samples = [process.next_interval(rng) for _ in range(20000)]
    assert all(interval == int(interval) and interval >= 1 for interval in samples)
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(4.0, rel=0.05)


def test_bernoulli_rejects_rates_above_one():
    with pytest.raises(ValueError):
        BernoulliInjection(rate=1.5)


def test_negative_rates_rejected():
    with pytest.raises(ValueError):
        ExponentialInjection(rate=-0.1)
