"""Tests for the paper's per-table/figure experiments.

Each experiment runs through its builtin Study (the supported path; the
legacy ``run_*`` shims are deprecated and covered by
``test_deprecations.py`` only) with a deliberately tiny configuration so
the whole file stays fast.  The semantic assertions check the paper's
qualitative claims (look-ahead helps at low load, ES equals the full
table, the Figure 7 programming) rather than absolute numbers.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.scenario import run_study
from repro.scenario.builtin import (
    ROUTER_VARIANTS,
    cost_table_study,
    es_programming_study,
    lookahead_study,
    message_length_study,
    path_selection_study,
    table_storage_study,
)


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig.tiny(measure_messages=300, warmup_messages=30)


def test_router_variants_cover_the_four_organisations():
    assert set(ROUTER_VARIANTS) == {"no-la-det", "no-la-adapt", "la-det", "la-adapt"}


def test_lookahead_comparison_rows(tiny_config):
    rows = run_study(
        lookahead_study(tiny_config, traffic_patterns=("uniform",), loads=(0.15,))
    ).rows
    assert len(rows) == 1
    row = rows[0]
    assert row["traffic"] == "uniform"
    assert row["la_adapt_latency"] > 0
    # Removing look-ahead must cost latency at low load.
    assert row["no-la-adapt_pct_increase"] > 0
    assert row["no-la-det_pct_increase"] > 0
    # The LA deterministic router is nearly identical to LA adaptive at low
    # load (the paper reports a negligible difference).
    assert abs(row["la-det_pct_increase"]) < 10.0


def test_message_length_study_shows_shrinking_benefit(tiny_config):
    rows = run_study(
        message_length_study(
            tiny_config, message_lengths=(2, 16), traffic="uniform", load=0.15
        )
    ).rows
    assert [row["message_length"] for row in rows] == [2, 16]
    short, long = rows
    assert short["pct_improvement"] > long["pct_improvement"]
    assert short["pct_improvement"] > 0


def test_path_selection_study_rows(tiny_config):
    rows = run_study(
        path_selection_study(
            tiny_config,
            selectors=("static-xy", "max-credit"),
            traffic_patterns=("transpose",),
            loads=(0.3,),
        )
    ).rows
    assert len(rows) == 1
    row = rows[0]
    assert row["static-xy_latency"] > 0
    assert row["max-credit_latency"] > 0


def test_table_storage_study_economical_equals_full(tiny_config):
    rows = run_study(
        table_storage_study(
            tiny_config,
            traffic_patterns=("uniform",),
            loads=(0.2,),
            include_full_table=True,
        )
    ).rows
    row = rows[0]
    assert row["economical_latency"] == pytest.approx(row["full_table_latency"])
    assert row["meta_deterministic_latency"] > 0
    assert row["economical_label"] != ""


def test_cost_table_matches_paper_values():
    table = run_study(cost_table_study(num_nodes=256, n_dims=2)).rows
    rows = {row["scheme"]: row for row in table}
    assert rows["full-table"]["entries_per_router"] == 256
    assert rows["economical-storage"]["entries_per_router"] == 9
    assert rows["interval"]["entries_per_router"] == 5
    table_3d = run_study(cost_table_study(num_nodes=2048, n_dims=3)).rows
    t3d = {row["scheme"]: row for row in table_3d}
    assert t3d["economical-storage"]["entries_per_router"] == 27


def test_es_programming_example_matches_figure7():
    rows = run_study(es_programming_study()).rows
    assert len(rows) == 9
    by_destination = {row["destination"]: row for row in rows}
    # Destination (0,2): candidates -X and +Y, North-Last keeps only -X.
    north_west = by_destination[(0, 2)]
    assert north_west["sign_x"] == "-" and north_west["sign_y"] == "+"
    assert "+Y" in north_west["candidate_ports"]
    assert north_west["north_last_ports"] == "-X"
    # Destination (1,2): straight north keeps its +Y port.
    straight_north = by_destination[(1, 2)]
    assert straight_north["north_last_ports"] == "+Y"
    # The local entry names the local port.
    assert by_destination[(1, 1)]["candidate_ports"] == "local"
