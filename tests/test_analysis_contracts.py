"""Contract-level tests of the house-style linter.

Three things live here because they exercise the *live* tree rather than
fixtures:

* the C-check workflow end to end -- a drifted cache-key surface must
  fail (C001) until ``CACHE_FORMAT_VERSION`` is bumped, then keep
  failing (C002) until the fingerprint is regenerated, then pass;
* the R-checks against the real registries and builtin study specs,
  plus deliberately broken temporary entries;
* the tier-1 guarantee that the repository itself lints clean through
  the same entry points CI uses, with no suppressions beyond the
  documented ones.

The hash-seed regression at the bottom pins the property the D-checks
exist to protect: simulation results are bit-identical across
``PYTHONHASHSEED`` values.
"""

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis.cachekey import (
    cache_key_findings,
    current_fingerprint,
    default_fingerprint_path,
    load_fingerprint,
    write_fingerprint,
)
from repro.analysis.registry_spec import (
    REQUIRED_SCHEDULE_PAIRS,
    probe_registry_entries,
    schedule_pair_findings,
    study_spec_findings,
)
from repro.analysis.runner import main, run_lint
from repro.analysis.source import discover_sources
from repro.registry import REGISTRIES
from repro.scenario.spec import Study

SRC_REPRO = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_REPRO.parent.parent

FINGERPRINT = Path("cache_key.fingerprint")  # name reused for tmp copies


# -- C-checks: pure drift scenarios --------------------------------------------------


def test_matching_fingerprint_is_clean():
    current = current_fingerprint()
    assert cache_key_findings(current, copy.deepcopy(current), FINGERPRINT) == []


def test_missing_fingerprint_is_c002():
    findings = cache_key_findings(current_fingerprint(), None, FINGERPRINT)
    assert [f.rule for f in findings] == ["C002"]
    assert "--update-fingerprint" in findings[0].message


def test_surface_drift_without_version_bump_is_c001():
    current = current_fingerprint()
    recorded = copy.deepcopy(current)
    recorded["config_fields"].pop("buffer_depth")
    findings = cache_key_findings(current, recorded, FINGERPRINT)
    assert [f.rule for f in findings] == ["C001"]
    message = findings[0].message
    assert "CACHE_FORMAT_VERSION" in message
    assert "buffer_depth" in message  # the drift is described
    # C001 anchors at the version constant, where the fix goes.
    assert findings[0].path.endswith("cache.py")


def test_default_change_and_provenance_change_are_both_drift():
    current = current_fingerprint()
    recorded = copy.deepcopy(current)
    recorded["config_fields"]["seed"] = "999"
    assert [
        f.rule for f in cache_key_findings(current, recorded, FINGERPRINT)
    ] == ["C001"]
    recorded = copy.deepcopy(current)
    recorded["provenance_fields"] = ["traffic"]
    assert [
        f.rule for f in cache_key_findings(current, recorded, FINGERPRINT)
    ] == ["C001"]


def test_drift_with_version_bump_downgrades_to_stale_fingerprint():
    current = current_fingerprint()
    recorded = copy.deepcopy(current)
    recorded["config_fields"]["new_knob"] = "None"
    recorded["cache_format_version"] = current["cache_format_version"] - 1
    findings = cache_key_findings(current, recorded, FINGERPRINT)
    assert [f.rule for f in findings] == ["C002"]
    assert "regenerate" in findings[0].message


def test_version_only_change_requires_regeneration():
    current = current_fingerprint()
    recorded = copy.deepcopy(current)
    recorded["cache_format_version"] = current["cache_format_version"] + 1
    assert [
        f.rule for f in cache_key_findings(current, recorded, FINGERPRINT)
    ] == ["C002"]


def test_cache_key_drift_end_to_end(tmp_path, monkeypatch):
    """The full workflow on disk: drift fails until the version is
    bumped, keeps failing until the fingerprint is regenerated, then
    passes -- all through ``run_lint`` with a doctored fingerprint."""
    import repro.exec.cache as cache_module

    fingerprint_path = tmp_path / "cache_key.fingerprint"
    target = tmp_path / "empty.py"
    target.write_text("", encoding="utf-8")

    def lint():
        return run_lint([target], fingerprint_path=fingerprint_path)

    # 1. A fingerprint recorded before a (simulated) surface change:
    #    same version, one field the current surface does not have.
    recorded = current_fingerprint()
    recorded["config_fields"]["retired_knob"] = "3"
    fingerprint_path.write_text(json.dumps(recorded), encoding="utf-8")
    report = lint()
    assert [f.rule for f in report.findings] == ["C001"]
    assert report.exit_code & 2

    # 2. Bumping CACHE_FORMAT_VERSION clears C001 but the stale
    #    fingerprint still fails the build until regenerated.
    monkeypatch.setattr(
        cache_module, "CACHE_FORMAT_VERSION", cache_module.CACHE_FORMAT_VERSION + 1
    )
    report = lint()
    assert [f.rule for f in report.findings] == ["C002"]
    assert report.exit_code & 2

    # 3. Regenerating the fingerprint makes the tree clean again.
    write_fingerprint(fingerprint_path)
    report = lint()
    assert report.findings == []
    assert report.exit_code == 0


def test_committed_fingerprint_matches_the_live_surface():
    """Tier-1 guard: editing SimulationConfig or the provenance surface
    without bumping CACHE_FORMAT_VERSION must fail here too."""
    path = default_fingerprint_path()
    assert path.exists(), "committed fingerprint is missing"
    assert cache_key_findings(
        current_fingerprint(), load_fingerprint(path), path
    ) == []


# -- R-checks ------------------------------------------------------------------------


def test_every_builtin_registry_entry_is_constructible():
    assert probe_registry_entries() == []


def test_r001_fires_on_a_broken_registry_entry():
    registry = REGISTRIES["selector"]

    def broken_selector(rng):
        raise RuntimeError("fixture: deliberately unconstructible")

    registry.register("lint-broken-fixture", obj=broken_selector)
    try:
        findings = probe_registry_entries(kinds=["selector"])
        assert [f.rule for f in findings] == ["R001"]
        message = findings[0].message
        assert "lint-broken-fixture" in message
        assert "deliberately unconstructible" in message
    finally:
        registry.unregister("lint-broken-fixture")
    assert probe_registry_entries(kinds=["selector"]) == []


def test_workload_probe_passes_for_builtin_generators():
    assert probe_registry_entries(kinds=["workload"]) == []


def test_r001_fires_on_a_broken_workload_factory():
    registry = REGISTRIES["workload"]

    def broken_workload(config, topology):
        raise RuntimeError("fixture: workload deliberately unconstructible")

    registry.register("lint-broken-workload", obj=broken_workload)
    try:
        findings = probe_registry_entries(kinds=["workload"])
        assert [f.rule for f in findings] == ["R001"]
        message = findings[0].message
        assert "lint-broken-workload" in message
        assert "deliberately unconstructible" in message
    finally:
        registry.unregister("lint-broken-workload")
    assert probe_registry_entries(kinds=["workload"]) == []


def test_r001_fires_on_a_workload_factory_returning_the_wrong_type():
    registry = REGISTRIES["workload"]

    def wrong_type_workload(config, topology):
        return {"not": "a dag"}

    registry.register("lint-wrong-type-workload", obj=wrong_type_workload)
    try:
        findings = probe_registry_entries(kinds=["workload"])
        assert [f.rule for f in findings] == ["R001"]
        assert "expected WorkloadDag" in findings[0].message
    finally:
        registry.unregister("lint-wrong-type-workload")


def test_r002_fires_on_unknown_study_spec_fields():
    study = Study.from_dict(
        {
            "study": "fixture",
            "base": {"normalized_load": 0.2, "bogus_knob": 1},
            "axes": [
                {"field": "mystery_field", "values": [1, 2]},
                {
                    "name": "shape",
                    "variants": [
                        {"name": "bad", "overrides": {"phantom": True}},
                    ],
                },
            ],
            "scenarios": [],
        }
    )
    findings = study_spec_findings(study, "<fixture>")
    named = {f.message.split("names ")[1].split(",")[0] for f in findings}
    assert {f.rule for f in findings} == {"R002"}
    assert named == {"'bogus_knob'", "'mystery_field'", "'phantom'"}


def test_r002_accepts_real_config_fields():
    study = Study.from_dict(
        {
            "study": "fixture",
            "base": {"normalized_load": 0.2, "mesh_dims": [4, 4]},
            "axes": [{"field": "vcs_per_port", "values": [2, 4]}],
            "scenarios": [{"name": "hot", "overrides": {"traffic": "hotspot"}}],
        }
    )
    assert study_spec_findings(study, "<fixture>") == []


def test_every_schedule_mode_ships_its_pair():
    assert schedule_pair_findings() == []
    for kind, required in REQUIRED_SCHEDULE_PAIRS.items():
        assert set(required) <= set(REGISTRIES[kind].names())


def test_r003_fires_when_half_a_pair_goes_missing():
    registry = REGISTRIES["link"]
    entry = registry.entry("batched")
    registry.unregister("batched")
    try:
        findings = schedule_pair_findings()
        assert [f.rule for f in findings] == ["R003"]
        assert "'link'" in findings[0].message
        assert "'batched'" in findings[0].message
    finally:
        registry.register(
            "batched", obj=entry.factory, provenance=entry.provenance
        )
    assert schedule_pair_findings() == []


# -- the repository itself is lint-clean ---------------------------------------------


def test_repository_lints_clean():
    report = run_lint([SRC_REPRO])
    assert report.findings == [], "\n" + report.format_text()
    assert report.exit_code == 0
    assert report.files_checked > 50


def test_only_documented_suppressions_exist():
    """Every ``# repro: allow=`` in the tree is an explicit, reviewed
    exception; add new ones here alongside their justification."""
    documented = {("repro.network.interface", frozenset({"W001"}))}
    found = {
        (source.module, frozenset(source.suppressed_rules()))
        for source in discover_sources([SRC_REPRO])
        if source.suppressed_rules()
    }
    assert found == documented


def test_module_entry_point_reports_clean(capsys):
    assert main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean: 0 findings")


def test_list_rules_covers_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D001", "D002", "D003", "D004", "C001", "C002",
                    "W001", "R001", "R002", "R003"):
        assert rule_id in out


def test_json_report_artifact(tmp_path, capsys):
    artifact = tmp_path / "lint-report.json"
    code = main(
        [str(SRC_REPRO), "--format", "json", "--output", str(artifact)]
    )
    assert code == 0
    data = json.loads(artifact.read_text(encoding="utf-8"))
    assert data["format"] == 1
    assert data["exit_code"] == 0
    assert data["findings"] == []
    assert data["counts"] == {"D": 0, "C": 0, "W": 0, "R": 0}
    assert json.loads(capsys.readouterr().out) == data


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == 64
    assert "does not exist" in capsys.readouterr().err


def test_cli_lint_subcommand_is_wired():
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--list-rules"]) == 0


# -- the property the D-checks protect -----------------------------------------------


def test_simulation_results_are_identical_across_hash_seeds():
    """Bit-identical result JSON under different PYTHONHASHSEED values:
    the regression a missed set-iteration (D001) would break."""
    script = (
        "import sys\n"
        "from repro.core.config import SimulationConfig\n"
        "from repro.exec.backend import simulate_config\n"
        "config = SimulationConfig.tiny(\n"
        "    measure_messages=120, warmup_messages=20, seed=11\n"
        ")\n"
        "sys.stdout.write(simulate_config(config).to_json())\n"
    )
    outputs = []
    for hash_seed in ("0", "31337"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_REPRO.parent)
        env["PYTHONHASHSEED"] = hash_seed
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        outputs.append(completed.stdout)
    assert outputs[0] == outputs[1]
    assert json.loads(outputs[0])  # non-empty, well-formed result
