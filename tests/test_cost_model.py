"""Tests for the Table 5 storage-cost model."""

import pytest

from repro.tables.cost_model import TableCostModel, table_cost_summary


def test_paper_network_sizes():
    model = TableCostModel(num_nodes=256, n_dims=2)
    assert model.full_table_entries() == 256
    assert model.meta_table_entries() == 2 * 16
    assert model.interval_entries() == 5
    assert model.economical_storage_entries() == 9


def test_cray_t3d_comparison():
    # Section 5.2.1: the 2048-node 3-D T3D interconnect needs a 2048-entry
    # full table but only a 27-entry economical-storage table.
    model = TableCostModel(num_nodes=2048, n_dims=3)
    assert model.full_table_entries() == 2048
    assert model.economical_storage_entries() == 27


def test_meta_levels_scaling():
    model = TableCostModel(num_nodes=4096, n_dims=2, meta_levels=2)
    assert model.meta_table_entries() == 2 * 64
    assert model.meta_table_entries(levels=3) == 3 * 16


def test_meta_table_rounds_up_for_non_square_counts():
    model = TableCostModel(num_nodes=100, n_dims=2)
    assert model.meta_table_entries() == 2 * 10
    model = TableCostModel(num_nodes=101, n_dims=2)
    assert model.meta_table_entries() == 2 * 11


def test_interval_entries_default_to_mesh_radix():
    assert TableCostModel(num_nodes=64, n_dims=3).interval_entries() == 7
    assert TableCostModel(num_nodes=64, n_dims=2, num_ports=12).interval_entries() == 12


def test_summaries_have_all_schemes_in_order():
    rows = table_cost_summary(num_nodes=256)
    schemes = [row.scheme for row in rows]
    assert schemes == ["full-table", "2-level meta-table", "interval", "economical-storage"]
    by_scheme = {row.scheme: row for row in rows}
    assert by_scheme["economical-storage"].entries_per_router == 9
    assert by_scheme["full-table"].entries_per_router == 256
    assert "SPIDER" in by_scheme["2-level meta-table"].commercial_examples


def test_economical_storage_is_smallest_adaptive_scheme():
    for num_nodes in (64, 256, 1024, 4096):
        rows = {row.scheme: row for row in table_cost_summary(num_nodes=num_nodes)}
        adaptive_rows = [
            row for row in rows.values() if row.adaptivity.startswith("yes")
        ]
        smallest = min(adaptive_rows, key=lambda row: row.entries_per_router)
        assert smallest.scheme == "economical-storage"


def test_validation():
    with pytest.raises(ValueError):
        TableCostModel(num_nodes=1)
    with pytest.raises(ValueError):
        TableCostModel(num_nodes=16, n_dims=0)
    with pytest.raises(ValueError):
        TableCostModel(num_nodes=16, meta_levels=1)


def test_as_row_round_trip():
    rows = table_cost_summary(num_nodes=64)
    as_dicts = [row.as_row() for row in rows]
    assert all(set(d) >= {"scheme", "entries_per_router", "adaptivity"} for d in as_dicts)
