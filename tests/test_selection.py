"""Tests for the path-selection heuristics."""

import random

import pytest

from repro.selection.base import OutputPortStatus
from repro.selection.heuristics import (
    SELECTOR_NAMES,
    FirstFreeSelector,
    LeastFrequentlyUsedSelector,
    LeastRecentlyUsedSelector,
    MaxCreditSelector,
    MinMuxSelector,
    RandomSelector,
    StaticDimensionOrderSelector,
    make_selector,
)


def status(port, dimension=None, usage=0, last_used=-1, credits=10, busy=0, free=1):
    if dimension is None:
        dimension = (port - 1) // 2
    return OutputPortStatus(
        port=port,
        dimension=dimension,
        usage_count=usage,
        last_used_cycle=last_used,
        total_credits=credits,
        busy_vcs=busy,
        free_vcs=free,
    )


EAST = status(1)
NORTH = status(3)


def test_static_xy_prefers_lower_dimension():
    selector = StaticDimensionOrderSelector()
    assert selector.select([NORTH, EAST]) == 1
    assert selector.select([NORTH]) == 3


def test_first_free_takes_the_first_candidate():
    selector = FirstFreeSelector()
    assert selector.select([NORTH, EAST]) == 3


def test_random_selector_is_reproducible_and_covers_candidates():
    selector = RandomSelector(random.Random(3))
    picks = {selector.select([EAST, NORTH]) for _ in range(100)}
    assert picks == {1, 3}


def test_min_mux_prefers_least_multiplexed_channel():
    selector = MinMuxSelector()
    busy_east = status(1, busy=3)
    quiet_north = status(3, busy=1)
    assert selector.select([busy_east, quiet_north]) == 3
    # Ties fall back to the static order (X first).
    assert selector.select([status(1, busy=2), status(3, busy=2)]) == 1


def test_lfu_uses_recorded_usage_counts():
    selector = LeastFrequentlyUsedSelector()
    for _ in range(5):
        selector.record_use(1, cycle=10)
    selector.record_use(3, cycle=12)
    assert selector.select([EAST, NORTH]) == 3
    # After the North port accumulates more use, East wins again.
    for _ in range(10):
        selector.record_use(3, cycle=20)
    assert selector.select([EAST, NORTH]) == 1


def test_lfu_breaks_ties_statically():
    selector = LeastFrequentlyUsedSelector()
    assert selector.select([NORTH, EAST]) == 1


def test_lru_prefers_the_port_used_farthest_in_the_past():
    selector = LeastRecentlyUsedSelector()
    selector.record_use(1, cycle=100)
    selector.record_use(3, cycle=50)
    assert selector.select([EAST, NORTH]) == 3
    selector.record_use(3, cycle=200)
    assert selector.select([EAST, NORTH]) == 1


def test_lru_never_used_ports_win():
    selector = LeastRecentlyUsedSelector()
    selector.record_use(1, cycle=5)
    assert selector.select([EAST, NORTH]) == 3


def test_max_credit_prefers_most_downstream_space():
    selector = MaxCreditSelector()
    starved_east = status(1, credits=2)
    roomy_north = status(3, credits=15)
    assert selector.select([starved_east, roomy_north]) == 3
    assert selector.select([status(1, credits=7), status(3, credits=7)]) == 1


def test_selectors_return_a_candidate_port():
    candidates = [status(1), status(3), status(4)]
    for name in SELECTOR_NAMES:
        selector = make_selector(name, random.Random(0))
        assert selector.select(candidates) in {1, 3, 4}


def test_make_selector_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_selector("best-effort")


def test_selector_names_cover_the_paper_heuristics():
    for name in ("static-xy", "min-mux", "lfu", "lru", "max-credit"):
        assert name in SELECTOR_NAMES


def test_record_use_default_is_a_no_op():
    selector = StaticDimensionOrderSelector()
    selector.record_use(1, cycle=3)  # must not raise
    assert selector.select([EAST]) == 1
