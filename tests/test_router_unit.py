"""Unit tests for a single router driven with stub neighbours.

These tests exercise the router microarchitecture in isolation: pipeline
timing, virtual-channel allocation (adaptive and escape classes), switch
allocation, credit-based flow control and look-ahead header generation.
"""

from __future__ import annotations


from repro.network.topology import LOCAL_PORT, MeshTopology, port_for
from repro.router.channels import VCState
from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD, PROUD
from repro.router.router import Router
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.selection.heuristics import StaticDimensionOrderSelector
from repro.tables.economical import EconomicalStorageTable
from repro.traffic.message import Message

EAST = port_for(0, True)
WEST = port_for(0, False)
NORTH = port_for(1, True)
SOUTH = port_for(1, False)


class StubNeighbor:
    """Records every flit and credit scheduled toward it."""

    def __init__(self):
        self.flits = []
        self.credits = []

    def receive_flit(self, port, vc, flit, arrival_cycle):
        self.flits.append((arrival_cycle, port, vc, flit))

    def receive_credit(self, port, vc, arrival_cycle):
        self.credits.append((arrival_cycle, port, vc))


def build_router(pipeline=PROUD, vcs=4, buffer_depth=5, selector=None):
    """A fully connected center router of a 3x3 mesh plus its stubs."""
    topology = MeshTopology((3, 3))
    node = topology.node_id((1, 1))
    table = EconomicalStorageTable(topology)
    routing = DuatoFullyAdaptiveRouting(topology, table)
    config = RouterConfig(vcs_per_port=vcs, buffer_depth=buffer_depth, pipeline=pipeline)
    router = Router(
        node_id=node,
        topology=topology,
        config=config,
        routing=routing,
        selector=selector or StaticDimensionOrderSelector(),
    )
    stubs = {}
    for port in range(topology.radix):
        stub = StubNeighbor()
        router.connect_output(port, stub, port)
        router.set_upstream(port, stub, port)
        stubs[port] = stub
    return router, topology, stubs


def drive(router, cycles, start=0):
    for cycle in range(start, start + cycles):
        router.deliver(cycle)
        router.evaluate(cycle)
    return start + cycles


def inject_message(router, topology, destination_coords, length=3, vc=1, cycle=0, spacing=1):
    """Place a whole message in the router's local input port at ``cycle``.

    ``spacing`` controls the arrival distance between consecutive flits; the
    default of one flit per cycle matches an uncongested injection channel.
    """
    destination = topology.node_id(destination_coords)
    message = Message(
        source=router.node_id, destination=destination, length=length, creation_cycle=cycle
    )
    for offset, flit in enumerate(message.make_flits()):
        router.receive_flit(LOCAL_PORT, vc, flit, cycle + offset * spacing)
    return message


def test_header_timing_matches_pipeline_depth():
    for pipeline, expected_hop in ((PROUD, 6), (LA_PROUD, 5)):
        router, topology, stubs = build_router(pipeline=pipeline)
        inject_message(router, topology, (2, 1), length=1, cycle=0)
        drive(router, 12)
        arrivals = stubs[EAST].flits
        assert len(arrivals) == 1
        arrival_cycle = arrivals[0][0]
        # The flit entered the input buffer at cycle 0, so its appearance at
        # the downstream input equals the per-hop latency.
        assert arrival_cycle == expected_hop


def test_body_flits_stream_one_per_cycle():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 1), length=4, cycle=0)
    drive(router, 20)
    arrivals = [cycle for cycle, _, _, _ in stubs[EAST].flits]
    assert len(arrivals) == 4
    assert arrivals == [arrivals[0] + offset for offset in range(4)]


def test_adaptive_port_selection_prefers_x_with_static_selector():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 2), length=1, cycle=0)
    drive(router, 12)
    assert len(stubs[EAST].flits) == 1
    assert len(stubs[NORTH].flits) == 0


def test_vc_allocation_uses_adaptive_class_first():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 1), length=2, cycle=0)
    drive(router, 4)
    channel = router.input_channel(LOCAL_PORT, 1)
    assert channel.state is VCState.ACTIVE
    # Escape VC is index 0; the adaptive class starts at 1.
    assert channel.out_vc >= 1


def test_escape_channel_used_when_adaptive_vcs_are_busy():
    router, topology, stubs = build_router()
    east_output = router.output_port(EAST)
    for vc in (1, 2, 3):
        east_output.vcs[vc].allocate(4, 0)  # adaptive VCs taken by others
    inject_message(router, topology, (2, 1), length=1, cycle=0)
    drive(router, 12)
    assert len(stubs[EAST].flits) == 1
    _, _, used_vc, _ = stubs[EAST].flits[0]
    assert used_vc == 0  # the escape virtual channel


def test_header_waits_when_no_suitable_vc_is_free():
    router, topology, stubs = build_router()
    east_output = router.output_port(EAST)
    for vc in range(4):
        east_output.vcs[vc].allocate(4, 0)
    inject_message(router, topology, (2, 1), length=1, cycle=0)
    drive(router, 15)
    assert stubs[EAST].flits == []
    channel = router.input_channel(LOCAL_PORT, 1)
    assert channel.state is VCState.ROUTING
    # Freeing one adaptive VC lets the message proceed.
    east_output.vcs[2].release()
    drive(router, 10, start=15)
    assert len(stubs[EAST].flits) == 1


def test_credit_exhaustion_stalls_forwarding():
    router, topology, stubs = build_router(buffer_depth=2)
    # Four flits injected slowly enough that the local input buffer (2 deep)
    # absorbs the back-pressure; the downstream credits (2) stall the rest.
    inject_message(router, topology, (2, 1), length=4, cycle=0, spacing=2)
    drive(router, 30)
    # Only buffer_depth flits can be in flight without credit returns.
    assert len(stubs[EAST].flits) == 2
    # Returning credits releases the remaining flits.
    router.receive_credit(EAST, stubs[EAST].flits[0][2], 31)
    router.receive_credit(EAST, stubs[EAST].flits[0][2], 32)
    drive(router, 10, start=31)
    assert len(stubs[EAST].flits) == 4


def test_upstream_credit_returned_for_every_forwarded_flit():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 1), length=3, vc=2, cycle=0)
    drive(router, 20)
    local_stub = stubs[LOCAL_PORT]
    assert len(local_stub.credits) == 3
    assert all(vc == 2 for _, _, vc in local_stub.credits)


def test_tail_releases_output_vc_and_input_channel():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 1), length=3, cycle=0)
    drive(router, 25)
    channel = router.input_channel(LOCAL_PORT, 1)
    assert channel.state is VCState.IDLE
    east_output = router.output_port(EAST)
    assert all(vc.is_free for vc in east_output.vcs)


def test_one_grant_per_output_port_per_cycle():
    router, topology, stubs = build_router()
    # Two messages from different input ports compete for the East port.
    message = Message(source=0, destination=topology.node_id((2, 1)), length=1,
                      creation_cycle=0)
    other = Message(source=0, destination=topology.node_id((2, 1)), length=1,
                    creation_cycle=0)
    for flit in message.make_flits():
        router.receive_flit(WEST, 1, flit, 0)
    for flit in other.make_flits():
        router.receive_flit(SOUTH, 1, flit, 0)
    drive(router, 15)
    arrivals = [cycle for cycle, _, _, _ in stubs[EAST].flits]
    assert len(arrivals) == 2
    assert arrivals[0] != arrivals[1]


def test_lookahead_router_attaches_next_hop_decision():
    router, topology, stubs = build_router(pipeline=LA_PROUD)
    message = inject_message(router, topology, (2, 2), length=1, cycle=0)
    drive(router, 12)
    (_, _, _, flit) = stubs[EAST].flits[0]
    next_node = topology.neighbor(router.node_id, EAST)
    assert flit.lookahead_node == next_node
    assert flit.lookahead_decision is not None
    assert NORTH in flit.lookahead_decision.adaptive_ports
    assert message.hops == 1


def test_non_lookahead_router_leaves_header_unannotated():
    router, topology, stubs = build_router(pipeline=PROUD)
    inject_message(router, topology, (2, 2), length=1, cycle=0)
    drive(router, 12)
    (_, _, _, flit) = stubs[EAST].flits[0]
    assert flit.lookahead_node is None
    assert flit.lookahead_decision is None


def test_ejection_goes_to_the_local_port():
    router, topology, stubs = build_router()
    message = Message(source=0, destination=router.node_id, length=2, creation_cycle=0)
    for offset, flit in enumerate(message.make_flits()):
        router.receive_flit(WEST, 1, flit, offset)
    drive(router, 15)
    assert len(stubs[LOCAL_PORT].flits) == 2


def test_flit_and_header_counters():
    router, topology, stubs = build_router()
    inject_message(router, topology, (2, 1), length=4, cycle=0)
    drive(router, 25)
    assert router.flits_forwarded == 4
    assert router.headers_routed == 1


def test_free_input_vcs_reporting():
    router, topology, stubs = build_router()
    assert router.free_input_vcs(LOCAL_PORT) == [0, 1, 2, 3]
    inject_message(router, topology, (2, 1), length=2, vc=3, cycle=0)
    router.deliver(0)
    assert 3 not in router.free_input_vcs(LOCAL_PORT)
