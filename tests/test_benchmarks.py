"""Smoke tests of the benchmark harnesses (marked ``bench``).

Tier-1 skips these (see ``pytest.ini``); the full-matrix CI job and
``pytest -m bench`` run them.  They execute the kernel, router, link,
core and workload benchmarks at smoke scale through their library entry points
and check the invariants the committed ``BENCH_*.json`` artifacts rely
on: the report schema, the bit-identical cross-checks, and (for the
committed artifacts) that the optimised schedule did not lose.
"""

from __future__ import annotations

from pathlib import Path

import pytest

BENCHMARKS_DIR = str(Path(__file__).resolve().parent.parent / "benchmarks")

pytestmark = pytest.mark.bench


@pytest.fixture(autouse=True)
def _benchmarks_on_path(monkeypatch):
    monkeypatch.syspath_prepend(BENCHMARKS_DIR)


def test_router_benchmark_smoke_report():
    import bench_router

    report = bench_router.run_benchmark(smoke=True, repeats=2)
    assert report["benchmark"] == "router"
    assert report["scale"] == "smoke"
    assert report["summary"]["all_bit_identical"] is True
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert set(point) >= {
            "mesh",
            "normalized_load",
            "saturation",
            "reference_seconds",
            "batched_seconds",
            "speedup",
            "bit_identical",
        }
    # No wall-clock assertion here: this test runs inside the full-matrix
    # job under coverage instrumentation, where timing ratios are
    # perturbed.  The speed gate lives in the dedicated un-instrumented
    # CI step (`bench_router.py --fail-below 0.9`); this test pins the
    # report schema and the bit-identical cross-check only.
    assert isinstance(report["summary"]["min_speedup"], float)


def test_router_benchmark_cli_writes_report_and_gates(tmp_path):
    import bench_router

    output = tmp_path / "router.json"
    code = bench_router.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    assert output.exists()
    # An absurd gate must trip the non-zero exit.
    code = bench_router.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output),
         "--fail-below", "1000.0"]
    )
    assert code == 1


def test_kernel_benchmark_smoke_report():
    import bench_kernel

    report = bench_kernel.run_benchmark(smoke=True, repeats=1, loads=[0.05])
    assert report["benchmark"] == "kernel"
    assert report["summary"]["all_bit_identical"] is True


def test_committed_router_bench_covers_the_grid_and_never_regresses():
    """The committed BENCH_router.json must be a full-scale report that
    samples the 16x16 saturation point, with both schedules bit-identical
    and batched never slower than the reference.

    (The artifact committed with the batched-allocator PR recorded 1.65x
    at that point; the assertion here is deliberately only "batched did
    not lose" so the suite stays independent of the speed of whatever
    machine last regenerated the machine-generated file.)"""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_router.json"
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["scale"] == "full"
    assert report["summary"]["all_bit_identical"] is True
    sat_16 = [
        p for p in report["points"] if p["mesh"] == "16x16" and p["saturation"]
    ]
    assert sat_16, "full report must sample the 16x16 saturation point"
    assert report["summary"]["min_speedup"] >= 1.0


def test_link_benchmark_smoke_report():
    import bench_link

    report = bench_link.run_benchmark(smoke=True, repeats=2)
    assert report["benchmark"] == "link"
    assert report["scale"] == "smoke"
    assert report["summary"]["all_bit_identical"] is True
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert set(point) >= {
            "mesh",
            "normalized_load",
            "saturation",
            "reference_seconds",
            "batched_seconds",
            "speedup",
            "bit_identical",
        }
    # No wall-clock assertion here (this test runs under coverage in the
    # full-matrix job); the speed gate lives in the dedicated CI step
    # (`bench_link.py --fail-below 0.9`).
    assert isinstance(report["summary"]["min_speedup"], float)


def test_link_benchmark_cli_writes_report_and_gates(tmp_path):
    import bench_link

    output = tmp_path / "link.json"
    code = bench_link.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    assert output.exists()
    code = bench_link.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output),
         "--fail-below", "1000.0"]
    )
    assert code == 1


def test_core_benchmark_smoke_report():
    import bench_core

    report = bench_core.run_benchmark(smoke=True, repeats=2)
    assert report["benchmark"] == "core"
    assert report["scale"] == "smoke"
    assert report["summary"]["all_bit_identical"] is True
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert set(point) >= {
            "mesh",
            "normalized_load",
            "saturation",
            "objects_seconds",
            "flat_seconds",
            "speedup",
            "bit_identical",
        }
    # No wall-clock assertion here (this test runs under coverage in the
    # full-matrix job); the speed gate lives in the dedicated CI step
    # (`bench_core.py --fail-below 0.9`).
    assert isinstance(report["summary"]["min_speedup"], float)


def test_core_benchmark_cli_writes_report_and_gates(tmp_path):
    import bench_core

    output = tmp_path / "core.json"
    code = bench_core.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    assert output.exists()
    code = bench_core.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output),
         "--fail-below", "1000.0"]
    )
    assert code == 1


def test_committed_core_bench_covers_the_grid():
    """The committed BENCH_core.json must be a full-scale report that
    samples the 16x16 saturation point (where the flat core's acceptance
    target was >= 1.5x) and the first 32x32 saturation datapoint, with
    both schedules bit-identical.

    (Only >= 1.0 at 16x16 saturation and >= 0.9 overall are asserted so
    the suite stays independent of the speed of whatever machine last
    regenerated the machine-generated file.)"""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["scale"] == "full"
    assert report["summary"]["all_bit_identical"] is True
    sat_16 = [
        p for p in report["points"] if p["mesh"] == "16x16" and p["saturation"]
    ]
    assert sat_16, "full report must sample the 16x16 saturation point"
    sat_32 = [
        p for p in report["points"] if p["mesh"] == "32x32" and p["saturation"]
    ]
    assert sat_32, "full report must include the 32x32 saturation datapoint"
    assert report["summary"]["speedup_16x16_saturation"] >= 1.0
    assert report["summary"]["speedup_32x32_saturation"] is not None
    assert report["summary"]["min_speedup"] >= 0.9


def test_workload_benchmark_smoke_report():
    import bench_workload

    report = bench_workload.run_benchmark(smoke=True, repeats=2)
    assert report["benchmark"] == "workload"
    assert report["scale"] == "smoke"
    assert report["summary"]["all_bit_identical"] is True
    assert report["summary"]["all_drained"] is True
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert set(point) >= {
            "workload",
            "mesh",
            "transfers",
            "cycles",
            "drained",
            "time_to_drain",
            "cp_utilization",
            "objects_seconds",
            "flat_seconds",
            "speedup",
            "bit_identical",
        }
        assert point["time_to_drain"] <= point["cycles"]
        assert 0.0 < point["cp_utilization"] <= 1.0
    # No wall-clock assertion here (this test runs under coverage in the
    # full-matrix job); the speed gate lives in the dedicated CI step
    # (`bench_workload.py --fail-below 0.9`).
    assert isinstance(report["summary"]["min_speedup"], float)


def test_workload_benchmark_cli_writes_report_and_gates(tmp_path):
    import bench_workload

    output = tmp_path / "workload.json"
    code = bench_workload.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    assert output.exists()
    code = bench_workload.main(
        ["--scale", "smoke", "--repeats", "1", "--output", str(output),
         "--fail-below", "1000.0"]
    )
    assert code == 1


def test_committed_link_bench_covers_the_grid():
    """The committed BENCH_link.json must be a full-scale report that
    samples the 16x16 saturation point with both schedules bit-identical
    and the batched transport not losing there.

    (The artifact committed with the batched-transport PR recorded
    ~1.07x at that point; the transport delta is a single-digit
    percentage, so only the acceptance-critical 16x16 saturation ratio
    is asserted, at >= 1.0.)"""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_link.json"
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["scale"] == "full"
    assert report["summary"]["all_bit_identical"] is True
    sat_16 = [
        p for p in report["points"] if p["mesh"] == "16x16" and p["saturation"]
    ]
    assert sat_16, "full report must sample the 16x16 saturation point"
    assert report["summary"]["speedup_16x16_saturation"] >= 1.0
    assert report["summary"]["min_speedup"] >= 0.9


def test_stats_benchmark_smoke_report():
    import bench_stats

    report = bench_stats.run_benchmark(smoke=True)
    assert report["benchmark"] == "stats"
    assert report["scale"] == "smoke"
    overhead = report["quantile_overhead"]
    assert set(overhead) >= {
        "samples",
        "plain_seconds",
        "streaming_seconds",
        "exact_seconds",
        "overhead_ratio",
        "p50_error_pct",
        "p99_error_pct",
    }
    # The P2 estimates must track the exact percentiles closely.
    assert overhead["p50_error_pct"] < 2.0
    assert overhead["p99_error_pct"] < 2.0
    refine = report["refine"]
    assert set(refine) >= {
        "mesh",
        "tolerance",
        "executed_loads",
        "bracket_low",
        "bracket_high",
        "knee_bracketed",
        "refine_points",
        "fixed_grid_points",
        "points_saved",
    }
    # The deterministic acceptance gates: the knee is bracketed within
    # tolerance using strictly fewer points than the equivalent fixed grid.
    assert report["summary"]["knee_bracketed"] is True
    assert report["summary"]["refine_beats_fixed_grid"] is True


def test_stats_benchmark_cli_writes_report_and_gates(tmp_path):
    import bench_stats

    output = tmp_path / "stats.json"
    code = bench_stats.main(["--scale", "smoke", "--output", str(output)])
    assert code == 0
    assert output.exists()
    # An absurd overhead gate must trip the non-zero exit.
    code = bench_stats.main(
        ["--scale", "smoke", "--output", str(output), "--max-overhead", "0.0001"]
    )
    assert code == 1


def test_committed_stats_bench_brackets_the_knee():
    """The committed BENCH_stats.json must be a full-scale report whose
    16x16 refinement bracketed the saturation knee within tolerance with
    measurably fewer simulated load points than the fixed grid at the
    same resolution, and whose streaming quantile estimates stayed
    within a percent of the exact percentiles."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_stats.json"
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["scale"] == "full"
    assert report["refine"]["mesh"] == "16x16"
    assert report["summary"]["knee_bracketed"] is True
    assert report["summary"]["refine_beats_fixed_grid"] is True
    assert report["refine"]["points_saved"] >= 1
    assert report["quantile_overhead"]["p99_error_pct"] < 2.0
