"""Tests for the synthetic traffic patterns."""

import random

import pytest

from repro.network.topology import MeshTopology, TorusTopology
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    HotspotPattern,
    NearestNeighborPattern,
    PerfectShufflePattern,
    TornadoPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


@pytest.fixture
def rng():
    return random.Random(1234)


def test_uniform_never_targets_self_and_covers_all_nodes(mesh, rng):
    pattern = UniformPattern(mesh)
    seen = set()
    for _ in range(2000):
        destination = pattern.destination(5, rng)
        assert destination != 5
        assert 0 <= destination < mesh.num_nodes
        seen.add(destination)
    assert seen == set(range(mesh.num_nodes)) - {5}


def test_uniform_is_roughly_balanced(mesh, rng):
    pattern = UniformPattern(mesh)
    counts = {node: 0 for node in range(mesh.num_nodes)}
    samples = 6000
    for _ in range(samples):
        counts[pattern.destination(0, rng)] += 1
    expected = samples / (mesh.num_nodes - 1)
    for node, count in counts.items():
        if node == 0:
            assert count == 0
        else:
            assert abs(count - expected) < 0.5 * expected


def test_transpose_swaps_coordinates(mesh, rng):
    pattern = TransposePattern(mesh)
    source = mesh.node_id((3, 1))
    assert pattern.destination(source, rng) == mesh.node_id((1, 3))


def test_transpose_diagonal_nodes_do_not_inject(mesh, rng):
    pattern = TransposePattern(mesh)
    diagonal = mesh.node_id((2, 2))
    assert pattern.destination(diagonal, rng) is None


def test_transpose_requires_square_mesh():
    with pytest.raises(ValueError):
        TransposePattern(MeshTopology((4, 2)))


def test_bit_reversal_is_an_involution(mesh, rng):
    pattern = BitReversalPattern(mesh)
    for source in range(mesh.num_nodes):
        destination = pattern.destination(source, rng)
        if destination is None:
            continue
        # Applying the reversal twice returns to the source.
        assert pattern.destination(destination, rng) == source


def test_bit_reversal_known_value(mesh, rng):
    pattern = BitReversalPattern(mesh)
    # 4 bits: 0b0001 -> 0b1000.
    assert pattern.destination(1, rng) == 8


def test_shuffle_rotates_address_left(mesh, rng):
    pattern = PerfectShufflePattern(mesh)
    # 4 bits: 0b0110 -> 0b1100, 0b1001 -> 0b0011.
    assert pattern.destination(6, rng) == 12
    assert pattern.destination(9, rng) == 3


def test_bit_complement_inverts_bits(mesh, rng):
    pattern = BitComplementPattern(mesh)
    assert pattern.destination(0, rng) == 15
    assert pattern.destination(5, rng) == 10


def test_bit_patterns_need_power_of_two_nodes(rng):
    mesh = MeshTopology((3, 3))
    with pytest.raises(ValueError):
        BitReversalPattern(mesh)
    with pytest.raises(ValueError):
        PerfectShufflePattern(mesh)


def test_tornado_moves_half_way(mesh, rng):
    pattern = TornadoPattern(mesh)
    destination = pattern.destination(mesh.node_id((0, 0)), rng)
    assert destination == mesh.node_id((1, 1))


def test_tornado_clamps_at_the_mesh_edge_instead_of_wrapping(mesh, rng):
    """A mesh has no wrap links, so edge sources clamp to the boundary:
    the offset must never turn into a short backward (wrapped) trip."""
    pattern = TornadoPattern(mesh)
    # Coordinate 3 + offset 1 would wrap to 0 under the old arithmetic.
    assert pattern.destination(mesh.node_id((3, 0)), rng) == mesh.node_id((3, 1))
    assert pattern.destination(mesh.node_id((0, 3)), rng) == mesh.node_id((1, 3))
    for source in range(mesh.num_nodes):
        destination = pattern.destination(source, rng)
        if destination is None:
            continue
        source_coords = mesh.coordinates(source)
        destination_coords = mesh.coordinates(destination)
        for src, dst in zip(source_coords, destination_coords):
            assert dst >= src, "mesh tornado must never move backwards"


def test_tornado_far_corner_is_a_fixed_point_on_a_mesh(mesh, rng):
    pattern = TornadoPattern(mesh)
    assert pattern.destination(mesh.node_id((3, 3)), rng) is None


def test_tornado_wraps_half_way_on_a_torus(rng):
    torus = TorusTopology((4, 4))
    pattern = TornadoPattern(torus)
    assert pattern.destination(torus.node_id((0, 0)), rng) == torus.node_id((2, 2))
    assert pattern.destination(torus.node_id((3, 1)), rng) == torus.node_id((1, 3))


def test_nearest_neighbor_wraps(mesh, rng):
    pattern = NearestNeighborPattern(mesh)
    assert pattern.destination(mesh.node_id((1, 2)), rng) == mesh.node_id((2, 2))
    assert pattern.destination(mesh.node_id((3, 2)), rng) == mesh.node_id((0, 2))


class _OneNodeTopology:
    """Minimal degenerate topology (the built-in classes require >= 2
    nodes per dimension, but patterns accept any Topology-like object)."""

    num_nodes = 1
    dims = (1,)

    def node_id(self, coords):
        return 0


def test_uniform_single_node_topology_never_injects(rng):
    """A 1-node network has no valid destination: the pattern must report
    a fixed point (None) instead of crashing in randrange(0)."""
    pattern = UniformPattern(_OneNodeTopology())
    assert pattern.destination(0, rng) is None


def test_hotspot_single_node_topology_never_injects(rng):
    """The hotspot pattern reaches the uniform fallback on one node."""
    pattern = HotspotPattern(_OneNodeTopology(), fraction=0.5)
    assert pattern.destination(0, rng) is None


def test_hotspot_sends_extra_traffic_to_hotspot(mesh, rng):
    pattern = HotspotPattern(mesh, hotspot=7, fraction=0.5)
    hits = sum(1 for _ in range(4000) if pattern.destination(0, rng) == 7)
    # 50% directed traffic plus the uniform share (~1/15 of the rest).
    assert 0.45 * 4000 < hits < 0.62 * 4000


def test_hotspot_rejects_invalid_fraction(mesh):
    with pytest.raises(ValueError):
        HotspotPattern(mesh, fraction=1.5)


def test_make_pattern_by_name(mesh):
    assert isinstance(make_pattern("uniform", mesh), UniformPattern)
    assert isinstance(make_pattern("transpose", mesh), TransposePattern)
    with pytest.raises(ValueError):
        make_pattern("not-a-pattern", mesh)


def test_paper_patterns_available_for_16x16():
    mesh = MeshTopology((16, 16))
    for name in ("uniform", "transpose", "bit-reversal", "shuffle"):
        pattern = make_pattern(name, mesh)
        destination = pattern.destination(1, random.Random(0))
        assert destination is None or 0 <= destination < 256
