"""Tests for the routing-relation providers (minimal adaptive, XY, turn models)."""

import pytest

from repro.network.topology import LOCAL_PORT, MeshTopology, port_for
from repro.routing.providers import (
    dimension_order_provider,
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)

EAST = port_for(0, True)
WEST = port_for(0, False)
NORTH = port_for(1, True)
SOUTH = port_for(1, False)


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


def test_minimal_adaptive_gives_all_productive_ports(mesh):
    provider = minimal_adaptive_provider(mesh)
    origin = mesh.node_id((1, 1))
    assert set(provider(origin, mesh.node_id((3, 3)))) == {EAST, NORTH}
    assert set(provider(origin, mesh.node_id((0, 0)))) == {WEST, SOUTH}
    assert provider(origin, origin) == (LOCAL_PORT,)


def test_dimension_order_gives_single_port(mesh):
    provider = dimension_order_provider(mesh)
    origin = mesh.node_id((1, 1))
    assert provider(origin, mesh.node_id((3, 3))) == (EAST,)
    assert provider(origin, mesh.node_id((1, 0))) == (SOUTH,)
    assert provider(origin, origin) == (LOCAL_PORT,)


def test_north_last_denies_north_while_x_remains(mesh):
    provider = north_last_provider(mesh)
    origin = mesh.node_id((1, 1))
    # Destination to the north-east: +Y must wait until X is corrected.
    assert provider(origin, mesh.node_id((3, 3))) == (EAST,)
    # Destination straight north: only +Y remains and it is allowed.
    assert provider(origin, mesh.node_id((1, 3))) == (NORTH,)
    # Destinations to the south keep full adaptivity.
    assert set(provider(origin, mesh.node_id((0, 0)))) == {WEST, SOUTH}


def test_north_last_matches_paper_figure7(mesh3x3=None):
    # The paper's Fig. 7(d): router (1,1) of a 3x3 mesh.  Entries for the
    # two northern quadrants lose the +Y option; all others keep the full
    # candidate set.
    mesh = MeshTopology((3, 3))
    provider = north_last_provider(mesh)
    node = mesh.node_id((1, 1))
    adaptive = minimal_adaptive_provider(mesh)
    for destination in range(mesh.num_nodes):
        signs = mesh.relative_signs(node, destination)
        permitted = set(provider(node, destination))
        candidates = set(adaptive(node, destination))
        if signs[0] != 0 and signs[1] > 0:
            assert permitted == candidates - {NORTH}
        else:
            assert permitted == candidates


def test_west_first_forces_west_first(mesh):
    provider = west_first_provider(mesh)
    origin = mesh.node_id((2, 2))
    # A westward correction pending: only -X allowed.
    assert provider(origin, mesh.node_id((0, 3))) == (WEST,)
    # No westward correction: fully adaptive.
    assert set(provider(origin, mesh.node_id((3, 3)))) == {EAST, NORTH}


def test_negative_first_orders_negative_hops_first(mesh):
    provider = negative_first_provider(mesh)
    origin = mesh.node_id((2, 1))
    # Needs -X and +Y: the positive direction must wait.
    assert provider(origin, mesh.node_id((0, 3))) == (WEST,)
    # Only positive directions needed: fully adaptive.
    assert set(provider(origin, mesh.node_id((3, 3)))) == {EAST, NORTH}
    # Only negative directions needed: fully adaptive among them.
    assert set(provider(origin, mesh.node_id((0, 0)))) == {WEST, SOUTH}


def test_turn_models_reject_non_2d_meshes():
    line_mesh = MeshTopology((4, 4, 2))
    with pytest.raises(ValueError):
        north_last_provider(line_mesh)
    with pytest.raises(ValueError):
        west_first_provider(line_mesh)


def test_providers_always_return_productive_ports(mesh):
    adaptive = minimal_adaptive_provider(mesh)
    for provider_factory in (north_last_provider, west_first_provider, negative_first_provider):
        provider = provider_factory(mesh)
        for source in range(mesh.num_nodes):
            for destination in range(mesh.num_nodes):
                permitted = provider(source, destination)
                assert permitted
                assert set(permitted) <= set(adaptive(source, destination))
