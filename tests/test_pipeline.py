"""Tests for the PROUD / LA-PROUD pipeline timing models."""

import pytest

from repro.router.pipeline import LA_PROUD, PROUD, PipelineTiming, pipeline_by_name


def test_paper_pipeline_depths():
    assert PROUD.depth == 5
    assert LA_PROUD.depth == 4
    assert not PROUD.lookahead
    assert LA_PROUD.lookahead


def test_contention_free_hop_latency_matches_table2():
    # Table 2: router latency 5 (PROUD) / 4 (LA-PROUD) plus 1 cycle of link.
    assert PROUD.hop_latency(link_delay=1) == 6
    assert LA_PROUD.hop_latency(link_delay=1) == 5


def test_selection_offset_saves_exactly_one_stage():
    assert PROUD.selection_offset - LA_PROUD.selection_offset == 1
    assert PROUD.switch_delay == LA_PROUD.switch_delay


def test_pipeline_by_name():
    assert pipeline_by_name("proud") is PROUD
    assert pipeline_by_name("la-proud") is LA_PROUD
    with pytest.raises(ValueError):
        pipeline_by_name("super-proud")


def test_custom_pipeline_validation():
    deep = PipelineTiming(name="deep", depth=7, lookahead=False)
    assert deep.selection_offset == 5
    with pytest.raises(ValueError):
        PipelineTiming(name="too-shallow", depth=2, lookahead=False)


def test_timings_are_frozen():
    with pytest.raises(Exception):
        PROUD.depth = 9  # type: ignore[misc]
