"""Tests for the statistical-rigor layer: merge, P² quantiles, CIs.

Covers the parallel-merge algebra of :class:`RunningStats`, the
streaming P² percentile estimator, the pure-stdlib Student-t critical
values and :func:`merge_replicates`, plus the percentile bugfixes
(validation order, explicit ceil indexing rule).
"""

import math
import random

import pytest

from repro.stats.confidence import (
    CONFIDENCE_LEVEL,
    ConfidenceInterval,
    mean_confidence_interval,
    student_t_cdf,
    t_critical,
)
from repro.stats.latency import P2Quantile, RunningStats


def exact_percentile(values, fraction):
    """The ceil-rule nearest-rank percentile RunningStats pins."""
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


# -- percentile bugfixes ------------------------------------------------------------


def test_percentile_validates_fraction_before_the_empty_check():
    # The historical bug: an empty collector returned 0.0 for any
    # fraction, hiding out-of-range callers until samples arrived.
    empty = RunningStats(keep_samples=True)
    with pytest.raises(ValueError, match=r"within \[0, 1\]"):
        empty.percentile(1.5)
    with pytest.raises(ValueError, match=r"within \[0, 1\]"):
        empty.percentile(-0.1)
    assert empty.percentile(0.5) == 0.0  # in-range on empty stays 0.0


def test_percentile_uses_the_ceil_rule_not_bankers_rounding():
    stats = RunningStats(keep_samples=True)
    for value in (10.0, 20.0, 30.0, 40.0):
        stats.add(value)
    # int(round(0.5 * 4)) == 2 under banker's rounding picked 30.0 here;
    # the nearest-rank ceil rule pins the lower median.
    assert stats.percentile(0.0) == 10.0
    assert stats.percentile(0.25) == 10.0
    assert stats.percentile(0.5) == 20.0
    assert stats.percentile(0.75) == 30.0
    assert stats.percentile(0.99) == 40.0
    assert stats.percentile(1.0) == 40.0


def test_percentile_matches_reference_rule_on_random_streams():
    rng = random.Random(7)
    for trial in range(20):
        values = [rng.uniform(0, 100) for _ in range(rng.randrange(1, 50))]
        stats = RunningStats(keep_samples=True)
        for value in values:
            stats.add(value)
        fraction = rng.random()
        assert stats.percentile(fraction) == exact_percentile(values, fraction)


# -- merge algebra ------------------------------------------------------------------


def test_merge_matches_single_pass_moments():
    rng = random.Random(11)
    values = [rng.gauss(50, 12) for _ in range(500)]
    whole = RunningStats()
    left, right = RunningStats(), RunningStats()
    for index, value in enumerate(values):
        whole.add(value)
        (left if index < 137 else right).add(value)
    merged = left.merge(right)
    assert merged is left
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
    assert merged.std == pytest.approx(whole.std, rel=1e-12)
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum


def test_merge_is_order_independent():
    rng = random.Random(23)
    for trial in range(10):
        chunks = []
        values = []
        for _ in range(rng.randrange(2, 6)):
            chunk = [rng.expovariate(0.02) for _ in range(rng.randrange(0, 80))]
            chunks.append(chunk)
            values.extend(chunk)
        def fold(order):
            total = RunningStats()
            for chunk_index in order:
                part = RunningStats()
                for value in chunks[chunk_index]:
                    part.add(value)
                total.merge(part)
            return total
        forward = fold(range(len(chunks)))
        backward = fold(reversed(range(len(chunks))))
        assert forward.count == backward.count == len(values)
        assert forward.mean == pytest.approx(backward.mean, rel=1e-9, abs=1e-9)
        assert forward.std == pytest.approx(backward.std, rel=1e-9, abs=1e-9)


def test_merge_with_empty_sides():
    empty = RunningStats()
    filled = RunningStats()
    for value in (1.0, 2.0, 3.0):
        filled.add(value)
    assert RunningStats().merge(filled).mean == pytest.approx(2.0)
    assert filled.merge(empty).count == 3
    assert RunningStats().merge(RunningStats()).count == 0


def test_merge_keeps_samples_only_when_both_sides_kept_them():
    left = RunningStats(keep_samples=True)
    right = RunningStats(keep_samples=True)
    left.add(1.0)
    right.add(2.0)
    assert left.merge(right).percentile(1.0) == 2.0
    with_samples = RunningStats(keep_samples=True)
    with_samples.add(1.0)
    without = RunningStats()
    without.add(2.0)
    merged = with_samples.merge(without)
    assert merged.count == 2
    with pytest.raises(ValueError, match="keep_samples"):
        merged.percentile(0.5)


def test_merge_refuses_quantile_trackers():
    # P² marker state depends on arrival order, so merging trackers
    # would silently de-determinize results.
    tracking = RunningStats(quantiles=(0.5,))
    plain = RunningStats()
    with pytest.raises(ValueError, match="not mergeable"):
        tracking.merge(plain)
    with pytest.raises(ValueError, match="not mergeable"):
        plain.merge(RunningStats(quantiles=(0.5,)))


def test_from_moments_round_trip():
    stats = RunningStats()
    for value in (3.0, 1.0, 4.0, 1.0, 5.0):
        stats.add(value)
    rebuilt = RunningStats.from_moments(
        stats.count,
        stats.mean,
        stats.std ** 2 * (stats.count - 1),
        minimum=stats.minimum,
        maximum=stats.maximum,
    )
    assert rebuilt.count == stats.count
    assert rebuilt.mean == pytest.approx(stats.mean)
    assert rebuilt.std == pytest.approx(stats.std)
    with pytest.raises(ValueError):
        RunningStats.from_moments(-1, 0.0, 0.0)
    with pytest.raises(ValueError):
        RunningStats.from_moments(2, 0.0, -1.0)


# -- P² streaming quantiles ---------------------------------------------------------


def test_p2_validates_fraction():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_is_exact_below_five_samples():
    tracker = P2Quantile(0.5)
    assert tracker.value == 0.0
    for value in (30.0, 10.0, 20.0):
        tracker.add(value)
    assert tracker.count == 3
    assert tracker.value == exact_percentile([30.0, 10.0, 20.0], 0.5)


@pytest.mark.parametrize("fraction", [0.5, 0.9, 0.99])
def test_p2_tracks_random_streams(fraction):
    rng = random.Random(int(fraction * 1000))
    tracker = P2Quantile(fraction)
    values = []
    for _ in range(20_000):
        value = rng.gauss(500.0, 100.0)
        values.append(value)
        tracker.add(value)
    exact = exact_percentile(values, fraction)
    spread = max(values) - min(values)
    assert abs(tracker.value - exact) < 0.02 * spread


def test_p2_on_adversarial_streams():
    # Sorted input is the classic P² stressor; constant input must be
    # exact; a well-separated bimodal stream must land in the right mode.
    n = 5_000
    sorted_tracker = P2Quantile(0.5)
    for value in range(n):
        sorted_tracker.add(float(value))
    assert abs(sorted_tracker.value - (n / 2)) < 0.05 * n

    constant = P2Quantile(0.99)
    for _ in range(1_000):
        constant.add(42.0)
    assert constant.value == 42.0

    rng = random.Random(3)
    bimodal = P2Quantile(0.5)
    for _ in range(10_000):
        center = 0.0 if rng.random() < 0.45 else 1000.0
        bimodal.add(rng.gauss(center, 1.0))
    assert bimodal.value > 900.0  # the median sits in the upper mode


def test_quantile_method_routes_exact_or_streaming():
    exact = RunningStats(keep_samples=True)
    streaming = RunningStats(quantiles=(0.5, 0.99))
    rng = random.Random(5)
    for _ in range(1_000):
        value = rng.uniform(0, 100)
        exact.add(value)
        streaming.add(value)
    assert exact.quantile(0.5) == exact.percentile(0.5)
    assert streaming.quantile(0.5) == pytest.approx(exact.percentile(0.5), abs=3.0)
    with pytest.raises(ValueError, match="tracked"):
        streaming.quantile(0.25)
    with pytest.raises(ValueError):
        streaming.quantile(2.0)


def test_streaming_quantiles_use_constant_memory():
    stats = RunningStats(quantiles=(0.5, 0.99))
    for value in range(100_000):
        stats.add(float(value))
    # No sample list: the only per-quantile state is the 5 P² markers.
    assert stats._samples is None
    assert stats.quantile(0.5) == pytest.approx(50_000, rel=0.05)


# -- Student-t critical values ------------------------------------------------------


def test_t_critical_matches_the_table():
    # Standard two-sided 95% critical values.
    for df, expected in [(1, 12.706), (2, 4.303), (4, 2.776), (9, 2.262),
                         (29, 2.045), (99, 1.984)]:
        assert t_critical(0.95, df) == pytest.approx(expected, abs=2e-3)
    # Converges on the normal quantile for large df.
    assert t_critical(0.95, 10_000) == pytest.approx(1.96, abs=2e-3)
    assert t_critical(0.99, 9) == pytest.approx(3.250, abs=2e-3)


def test_student_t_cdf_basics():
    assert student_t_cdf(0.0, 5) == pytest.approx(0.5)
    assert student_t_cdf(100.0, 5) == pytest.approx(1.0, abs=1e-6)
    assert student_t_cdf(-2.0, 7) == pytest.approx(1.0 - student_t_cdf(2.0, 7))


def test_t_critical_validates_arguments():
    with pytest.raises(ValueError):
        t_critical(1.0, 5)
    with pytest.raises(ValueError):
        t_critical(0.95, 0)


# -- confidence intervals -----------------------------------------------------------


def test_mean_confidence_interval_known_value():
    interval = mean_confidence_interval([10.0, 12.0, 11.0, 13.0, 9.0])
    assert interval.mean == pytest.approx(11.0)
    assert interval.count == 5
    assert interval.level == CONFIDENCE_LEVEL
    # t(0.95, 4) * std / sqrt(5) = 2.776 * 1.5811 / 2.2361
    assert interval.half_width == pytest.approx(1.963, abs=2e-3)
    assert interval.lower == pytest.approx(interval.mean - interval.half_width)
    assert interval.upper == pytest.approx(interval.mean + interval.half_width)
    data = interval.as_dict()
    assert data["lower"] < data["mean"] < data["upper"]


def test_mean_confidence_interval_needs_two_values():
    with pytest.raises(ValueError, match="replications"):
        mean_confidence_interval([1.0])


def test_half_widths_shrink_like_one_over_sqrt_n():
    rng = random.Random(17)
    population = [rng.gauss(100.0, 10.0) for _ in range(4096)]

    def half_width(n, trials=40):
        total = 0.0
        for trial in range(trials):
            start = (trial * n) % (len(population) - n)
            total += mean_confidence_interval(population[start : start + n]).half_width
        return total / trials

    small, large = half_width(8), half_width(128)
    ratio = small / large
    # 1/sqrt(n) scaling predicts 4x (plus a t-vs-normal factor ~1.2);
    # accept a broad band around it.
    assert 2.5 < ratio < 7.0


def test_confidence_interval_is_frozen():
    interval = ConfidenceInterval(mean=1.0, std=0.5, count=3, level=0.95, half_width=0.2)
    with pytest.raises(Exception):
        interval.mean = 2.0
