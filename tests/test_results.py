"""Tests for result records and report formatting."""

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult, format_rows, format_value
from repro.stats.latency import LatencySummary


def make_summary(latency=55.0, saturated=False):
    return LatencySummary(
        created=100,
        delivered=100,
        measured=90,
        avg_total_latency=latency,
        avg_network_latency=latency - 3,
        std_total_latency=4.0,
        max_total_latency=latency * 2,
        avg_hops=6.0,
        throughput=0.12,
        cycles=5000,
        completion_ratio=1.0,
        saturated=saturated,
    )


def make_result(latency=55.0, saturated=False):
    return SimulationResult(
        config=SimulationConfig.tiny(),
        summary=make_summary(latency, saturated),
        zero_load_latency=30.0,
        cycles=5000,
    )


def test_result_shorthands():
    result = make_result()
    assert result.latency == 55.0
    assert not result.saturated
    assert result.latency_label() == "55.0"


def test_saturated_result_prints_sat_label():
    result = make_result(saturated=True)
    assert result.saturated
    assert result.latency_label() == "Sat."


def test_result_as_dict_contains_config_highlights():
    data = make_result().as_dict()
    assert data["traffic"] == "uniform"
    assert data["latency"] == 55.0
    assert "pipeline" in data and "selector" in data


def test_format_value_handles_types():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(3.14159, precision=2) == "3.14"
    assert format_value("text") == "text"


def test_format_rows_alignment_and_content():
    rows = [
        {"traffic": "uniform", "load": 0.1, "latency": 69.2},
        {"traffic": "transpose", "load": 0.2, "latency": 87.6},
    ]
    text = format_rows(rows)
    lines = text.splitlines()
    assert lines[0].startswith("traffic")
    assert "uniform" in lines[2]
    assert "87.6" in lines[3]
    # Header, separator and one line per row.
    assert len(lines) == 4


def test_format_rows_respects_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = format_rows(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_rows_empty():
    assert format_rows([]) == "(no rows)"


def test_result_to_dict_round_trip():
    result = make_result()
    data = result.to_dict()
    assert set(data) == {
        "config",
        "summary",
        "zero_load_latency",
        "cycles",
        "effective_message_rate",
        "drain",
        "replicates",
    }
    assert SimulationResult.from_dict(data) == result


def test_result_json_round_trip_is_bit_identical():
    result = make_result(latency=61.25, saturated=True)
    loaded = SimulationResult.from_json(result.to_json())
    assert loaded == result
    assert loaded.config == result.config
    assert loaded.summary == result.summary
    assert loaded.to_json() == result.to_json()


def test_result_to_dict_is_json_compatible():
    import json

    text = json.dumps(make_result().to_dict(), sort_keys=True)
    assert '"mesh_dims": [4, 4]' in text


def test_summary_from_dict_ignores_unknown_keys():
    from repro.stats.latency import LatencySummary

    data = make_summary().as_dict()
    data["future_field"] = 123
    assert LatencySummary.from_dict(data) == make_summary()
