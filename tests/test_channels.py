"""Tests for input/output virtual-channel state."""

import pytest

from repro.router.channels import (
    InputVirtualChannel,
    OutputPort,
    OutputVirtualChannel,
    VCState,
)
from repro.traffic.message import Message


def make_flits(length=3):
    return Message(source=0, destination=1, length=length, creation_cycle=0).make_flits()


def test_input_vc_starts_idle_and_empty():
    channel = InputVirtualChannel(port=1, vc=0, capacity=4)
    assert channel.state is VCState.IDLE
    assert channel.occupancy == 0
    assert channel.head_flit() is None
    assert channel.has_space


def test_input_vc_fifo_order():
    channel = InputVirtualChannel(port=1, vc=0, capacity=4)
    flits = make_flits()
    for flit in flits:
        channel.push(flit)
    assert channel.head_flit() is flits[0]
    assert [channel.pop() for _ in range(3)] == flits


def test_input_vc_overflow_raises():
    channel = InputVirtualChannel(port=1, vc=0, capacity=2)
    flits = make_flits(3)
    channel.push(flits[0])
    channel.push(flits[1])
    assert not channel.has_space
    with pytest.raises(OverflowError):
        channel.push(flits[2])


def test_input_vc_release_resets_allocation():
    channel = InputVirtualChannel(port=1, vc=0, capacity=2)
    channel.state = VCState.ACTIVE
    channel.out_port = 3
    channel.out_vc = 1
    channel.release()
    assert channel.state is VCState.IDLE
    assert channel.out_port is None
    assert channel.out_vc is None


def test_output_vc_allocation_lifecycle():
    channel = OutputVirtualChannel(port=2, vc=1, credits=5)
    assert channel.is_free
    channel.allocate(in_port=0, in_vc=3)
    assert not channel.is_free
    assert channel.owner == (0, 3)
    with pytest.raises(ValueError):
        channel.allocate(in_port=1, in_vc=0)
    channel.release()
    assert channel.is_free


def test_output_port_free_vcs_restricted_to_class():
    port = OutputPort(port=1, num_vcs=4, credits_per_vc=5)
    port.vcs[1].allocate(0, 0)
    assert port.free_vcs((1, 2, 3)) == [2, 3]
    assert port.free_vcs((0,)) == [0]
    assert port.busy_vc_count() == 1


def test_output_port_credit_and_usage_tracking():
    port = OutputPort(port=1, num_vcs=2, credits_per_vc=5)
    assert port.total_credits() == 10
    port.vcs[0].credits -= 3
    assert port.total_credits() == 7
    assert port.last_used_cycle == -1
    port.record_use(cycle=42)
    port.record_use(cycle=50)
    assert port.usage_count == 2
    assert port.last_used_cycle == 50


def test_output_port_starts_disconnected():
    port = OutputPort(port=4, num_vcs=2, credits_per_vc=3)
    assert not port.connected
