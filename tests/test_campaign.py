"""Tests for the full reproduction campaign runner."""

import pytest

from repro.core.campaign import CampaignReport, ExperimentReport, run_campaign
from repro.core.config import SimulationConfig


@pytest.fixture(scope="module")
def campaign():
    base = SimulationConfig.tiny(measure_messages=200, warmup_messages=20)
    return run_campaign(
        base, loads_low_high=(0.2,), traffic_patterns=("uniform",)
    )


def test_campaign_covers_every_paper_experiment(campaign):
    names = [experiment.name for experiment in campaign.experiments]
    assert names == ["figure5", "table3", "figure6", "table4", "table5", "figure7"]


def test_campaign_experiment_lookup(campaign):
    assert campaign.experiment("table5").rows
    with pytest.raises(KeyError):
        campaign.experiment("figure99")


def test_campaign_rows_are_populated(campaign):
    for experiment in campaign.experiments:
        assert experiment.rows, experiment.name
        assert experiment.paper_claim


def test_campaign_reproduces_headline_claims(campaign):
    figure5 = campaign.experiment("figure5").rows[0]
    assert figure5["no-la-adapt_pct_increase"] > 0
    table4 = campaign.experiment("table4").rows[0]
    assert table4["economical_latency"] == pytest.approx(table4["full_table_latency"])
    table5 = {row["scheme"]: row for row in campaign.experiment("table5").rows}
    assert table5["economical-storage"]["entries_per_router"] == 9


def test_campaign_markdown_rendering(campaign):
    text = campaign.to_markdown()
    assert text.startswith("## Reproduction campaign")
    for title_fragment in ("Figure 5", "Table 3", "Figure 6", "Table 4", "Table 5", "Figure 7"):
        assert title_fragment in text
    assert "```" in text


def test_experiment_report_markdown_contains_table():
    report = ExperimentReport(
        name="demo",
        title="Demo experiment",
        paper_claim="something holds",
        rows=[{"a": 1.0, "b": 2.0}],
    )
    text = report.to_markdown()
    assert "### Demo experiment" in text
    assert "something holds" in text
    assert "1.0" in text


def test_campaign_report_is_a_dataclass_with_config(campaign):
    assert isinstance(campaign, CampaignReport)
    assert campaign.config.mesh_dims == (4, 4)
