"""Tests for the reproducible random-number streams."""

from repro.engine.rng import SimulationRNG


def test_same_seed_same_stream():
    a = SimulationRNG(seed=7).stream("traffic")
    b = SimulationRNG(seed=7).stream("traffic")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_streams():
    rng = SimulationRNG(seed=7)
    a = rng.stream("traffic")
    b = rng.stream("arbitration")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_different_seeds_give_different_streams():
    a = SimulationRNG(seed=1).stream("traffic")
    b = SimulationRNG(seed=2).stream("traffic")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_stream_is_cached_per_name():
    rng = SimulationRNG(seed=3)
    assert rng.stream("x") is rng.stream("x")


def test_request_order_does_not_change_stream_contents():
    first = SimulationRNG(seed=5)
    second = SimulationRNG(seed=5)
    # Request in different orders; the named streams must still match.
    first_a = first.stream("a")
    first.stream("b")
    second.stream("b")
    second_a = second.stream("a")
    assert [first_a.random() for _ in range(5)] == [second_a.random() for _ in range(5)]


def test_spawn_derives_independent_children():
    parent = SimulationRNG(seed=11)
    child_one = parent.spawn(1).stream("traffic")
    child_two = parent.spawn(2).stream("traffic")
    assert [child_one.random() for _ in range(5)] != [
        child_two.random() for _ in range(5)
    ]


def test_spawn_is_deterministic():
    a = SimulationRNG(seed=11).spawn(3).stream("x")
    b = SimulationRNG(seed=11).spawn(3).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_seed_property_round_trips():
    assert SimulationRNG(seed=123).seed == 123
