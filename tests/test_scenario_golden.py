"""Golden equality: every built-in study reproduces its legacy function.

Each test runs the legacy ``run_*`` entry point (now a deprecation shim)
and the corresponding built-in study through ``run_study`` against one
shared result cache, and asserts the outputs are equal object for object.
The shared cache both keeps the file fast (every configuration simulates
once) and proves the two paths hash their configurations identically.
"""

import warnings

import pytest

from repro.core.campaign import run_campaign
from repro.core.config import SimulationConfig
from repro.core.experiments import (
    run_cost_table,
    run_es_programming_example,
    run_lookahead_comparison,
    run_message_length_study,
    run_path_selection_study,
    run_table_storage_study,
)
from repro.core.sweep import run_load_sweep
from repro.exec.backend import SerialBackend
from repro.exec.cache import ResultCache
from repro.scenario import run_study
from repro.scenario.builtin import (
    campaign_study,
    cost_table_study,
    es_programming_study,
    lookahead_study,
    message_length_study,
    path_selection_study,
    sweep_study,
    table_storage_study,
)

TINY = SimulationConfig.tiny(measure_messages=200, warmup_messages=20)
PATTERNS = ("uniform",)
LOADS = (0.1, 0.25)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("golden-cache")


def cached_backend(cache_dir) -> SerialBackend:
    return SerialBackend(cache=ResultCache(cache_dir))


def legacy(function, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return function(*args, **kwargs)


def test_sweep_study_matches_run_load_sweep(cache_dir):
    points = legacy(
        run_load_sweep, TINY, LOADS, backend=cached_backend(cache_dir)
    )
    outcome = run_study(
        sweep_study(TINY, LOADS), backend=cached_backend(cache_dir)
    )
    assert [p.normalized_load for p in points] == [
        p.config.normalized_load for p in outcome.points
    ]
    assert [p.result for p in points] == list(outcome.results)


def test_figure5_study_matches_legacy_rows(cache_dir):
    legacy_rows = legacy(
        run_lookahead_comparison,
        TINY,
        traffic_patterns=PATTERNS,
        loads=LOADS,
        backend=cached_backend(cache_dir),
    )
    outcome = run_study(
        lookahead_study(TINY, traffic_patterns=PATTERNS, loads=LOADS),
        backend=cached_backend(cache_dir),
    )
    assert outcome.rows == legacy_rows
    # Column order matters too: the Markdown tables print first-row order.
    assert [list(row) for row in outcome.rows] == [list(row) for row in legacy_rows]


def test_table3_study_matches_legacy_rows(cache_dir):
    kwargs = {"message_lengths": (2, 8), "traffic": "uniform", "load": LOADS[0]}
    legacy_rows = legacy(
        run_message_length_study, TINY, backend=cached_backend(cache_dir), **kwargs
    )
    outcome = run_study(
        message_length_study(TINY, **kwargs), backend=cached_backend(cache_dir)
    )
    assert outcome.rows == legacy_rows
    assert [list(row) for row in outcome.rows] == [list(row) for row in legacy_rows]


def test_figure6_study_matches_legacy_rows(cache_dir):
    kwargs = {"traffic_patterns": PATTERNS, "loads": LOADS[-1:]}
    legacy_rows = legacy(
        run_path_selection_study, TINY, backend=cached_backend(cache_dir), **kwargs
    )
    outcome = run_study(
        path_selection_study(TINY, **kwargs), backend=cached_backend(cache_dir)
    )
    assert outcome.rows == legacy_rows
    assert [list(row) for row in outcome.rows] == [list(row) for row in legacy_rows]


def test_table4_study_matches_legacy_rows(cache_dir):
    kwargs = {"traffic_patterns": PATTERNS, "loads": LOADS, "include_full_table": True}
    legacy_rows = legacy(
        run_table_storage_study, TINY, backend=cached_backend(cache_dir), **kwargs
    )
    outcome = run_study(
        table_storage_study(TINY, **kwargs), backend=cached_backend(cache_dir)
    )
    assert outcome.rows == legacy_rows
    assert [list(row) for row in outcome.rows] == [list(row) for row in legacy_rows]


def test_table5_study_matches_legacy_rows():
    legacy_rows = legacy(run_cost_table, num_nodes=16, n_dims=2)
    outcome = run_study(cost_table_study(num_nodes=16, n_dims=2))
    assert outcome.rows == legacy_rows


def test_figure7_study_matches_legacy_rows():
    legacy_rows = legacy(run_es_programming_example)
    outcome = run_study(es_programming_study())
    assert outcome.rows == legacy_rows


@pytest.mark.slow
def test_campaign_suite_markdown_matches_legacy_report(cache_dir):
    report = legacy(
        run_campaign,
        TINY,
        loads_low_high=LOADS,
        traffic_patterns=PATTERNS,
        backend=cached_backend(cache_dir),
    )
    outcome = run_study(
        campaign_study(TINY, loads_low_high=LOADS, traffic_patterns=PATTERNS),
        backend=cached_backend(cache_dir),
    )
    assert outcome.to_markdown() == report.to_markdown()
    for experiment in report.experiments:
        assert outcome.member(experiment.name).rows == experiment.rows


def test_shared_cache_served_both_paths(cache_dir):
    # Every simulation-backed test above ran its legacy and study variants
    # against the same cache; identical configurations means the second
    # pass was served from disk, which only works when both paths hash
    # their configurations identically.
    backend = cached_backend(cache_dir)
    run_study(sweep_study(TINY, LOADS), backend=backend)
    assert backend.simulations_run == 0
    assert backend.cache.hits == len(LOADS)
