"""Tests for interval (universal) routing tables."""

import pytest

from repro.network.topology import LOCAL_PORT, MeshTopology, TorusTopology
from repro.tables.interval import IntervalRoutingTable


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


def follow_route(table, topology, source, destination, limit=200):
    """Follow the table's lookups hop by hop until the destination."""
    current = source
    hops = 0
    while current != destination:
        (port,) = table.lookup(current, destination)
        assert port != LOCAL_PORT, "local port before reaching the destination"
        current = topology.neighbor(current, port)
        assert current is not None, "routed off the edge of the mesh"
        hops += 1
        assert hops <= limit, "routing loop detected"
    (port,) = table.lookup(current, destination)
    assert port == LOCAL_PORT
    return hops


def test_entries_per_router_equals_radix(mesh):
    table = IntervalRoutingTable(mesh)
    assert table.entries_per_router() == mesh.radix
    assert table.num_routers() == mesh.num_nodes


def test_labels_are_a_permutation(mesh):
    table = IntervalRoutingTable(mesh)
    labels = {table.label_of(node) for node in range(mesh.num_nodes)}
    assert labels == set(range(mesh.num_nodes))


def test_every_pair_is_routable(mesh):
    table = IntervalRoutingTable(mesh)
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            if source == destination:
                assert table.lookup(source, destination) == (LOCAL_PORT,)
            else:
                follow_route(table, mesh, source, destination)


def test_routes_may_be_non_minimal_but_bounded(mesh):
    # Tree routing is generally non-minimal; every route must still be
    # bounded by twice the number of nodes (tree diameter bound).
    table = IntervalRoutingTable(mesh)
    worst = 0
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            if source != destination:
                worst = max(worst, follow_route(table, mesh, source, destination))
    assert worst <= 2 * mesh.num_nodes
    assert worst >= mesh.distance(0, mesh.num_nodes - 1)


def test_intervals_cover_the_label_space_exactly_once(mesh):
    table = IntervalRoutingTable(mesh)
    for node in range(mesh.num_nodes):
        covered = []
        for low, high, _ in table.intervals(node):
            covered.extend(range(low, high))
        assert sorted(covered) == list(range(mesh.num_nodes))


def test_interval_routing_works_on_torus():
    torus = TorusTopology((3, 3))
    table = IntervalRoutingTable(torus)
    for source in range(torus.num_nodes):
        for destination in range(torus.num_nodes):
            if source != destination:
                follow_route(table, torus, source, destination)


def test_custom_root(mesh):
    table = IntervalRoutingTable(mesh, root=5)
    assert table.label_of(5) == 0
    with pytest.raises(ValueError):
        IntervalRoutingTable(mesh, root=99)
