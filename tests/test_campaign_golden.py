"""Golden regression tests for :func:`run_campaign` at ``SimulationConfig.small()``.

These pin the campaign's *shape* -- experiment names, row columns and the
Markdown report structure -- so future refactors cannot silently change
the reproduced tables, and they check the headline execution-layer
guarantee: the campaign run through ``ProcessPoolBackend(workers=4)``
equals the serial run row for row, and a repeated run against a warm
``ResultCache`` performs zero new simulations.

The three campaign runs here dominate the suite's runtime (~21 small-scale
simulations each for the two cold runs); everything else reuses the
module-scoped reports.
"""

import pytest

from repro.core.campaign import run_campaign

#: The three module-scoped campaign runs dominate the suite's wall clock,
#: so the whole module lives behind the ``slow`` marker (the full-matrix
#: CI job runs it; tier-1 does not).
pytestmark = pytest.mark.slow
from repro.core.config import SimulationConfig
from repro.exec.backend import ProcessPoolBackend, SerialBackend
from repro.exec.cache import ResultCache

#: Reduced scope (one pattern, one load) keeps the small-scale runs tractable.
CAMPAIGN_KWARGS = {"loads_low_high": (0.15,), "traffic_patterns": ("uniform",)}

#: Golden experiment identifiers, in paper order.
GOLDEN_NAMES = ["figure5", "table3", "figure6", "table4", "table5", "figure7"]

#: Golden section headings of the Markdown report.
GOLDEN_HEADINGS = [
    "### Figure 5 - look-ahead and adaptivity comparison",
    "### Table 3 - look-ahead benefit versus message length",
    "### Figure 6 - path-selection heuristics",
    "### Table 4 - table-storage schemes",
    "### Table 5 - storage cost summary",
    "### Figure 7 - economical-storage table programming (North-Last)",
]

#: Golden row columns per experiment (at the reduced scope above).
GOLDEN_COLUMNS = {
    "figure5": [
        "traffic", "load", "la_adapt_latency", "la_adapt_saturated",
        "no-la-det_latency", "no-la-det_saturated", "no-la-det_pct_increase",
        "no-la-adapt_latency", "no-la-adapt_saturated", "no-la-adapt_pct_increase",
        "la-det_latency", "la-det_saturated", "la-det_pct_increase",
    ],
    "table3": [
        "message_length", "lookahead_latency", "no_lookahead_latency",
        "pct_improvement", "saturated",
    ],
    "figure6": [
        "traffic", "load",
        "static-xy_latency", "static-xy_saturated",
        "min-mux_latency", "min-mux_saturated",
        "lfu_latency", "lfu_saturated",
        "lru_latency", "lru_saturated",
        "max-credit_latency", "max-credit_saturated",
    ],
    "table4": [
        "traffic", "load",
        "meta_adaptive_latency", "meta_adaptive_saturated", "meta_adaptive_label",
        "meta_deterministic_latency", "meta_deterministic_saturated",
        "meta_deterministic_label",
        "economical_latency", "economical_saturated", "economical_label",
        "full_table_latency", "full_table_saturated", "full_table_label",
    ],
    "table5": [
        "scheme", "entries_per_router", "scalability", "adaptivity",
        "topologies", "lookup_time", "commercial_examples",
    ],
    "figure7": [
        "destination", "sign_x", "sign_y", "candidate_ports", "north_last_ports",
    ],
}


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig.small()


@pytest.fixture(scope="module")
def serial_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("campaign-cache-serial")


@pytest.fixture(scope="module")
def serial_report(small_config, serial_cache_dir):
    backend = SerialBackend(cache=ResultCache(serial_cache_dir))
    return run_campaign(small_config, backend=backend, **CAMPAIGN_KWARGS)


@pytest.fixture(scope="module")
def parallel_report(small_config, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("campaign-cache-parallel"))
    with ProcessPoolBackend(workers=4, cache=cache) as backend:
        return run_campaign(small_config, backend=backend, **CAMPAIGN_KWARGS)


def test_campaign_experiment_names_are_pinned(serial_report):
    assert [experiment.name for experiment in serial_report.experiments] == GOLDEN_NAMES


def test_campaign_row_columns_are_pinned(serial_report):
    for name, columns in GOLDEN_COLUMNS.items():
        rows = serial_report.experiment(name).rows
        assert rows, name
        assert list(rows[0].keys()) == columns, name


def test_campaign_row_counts_are_pinned(serial_report):
    counts = {
        name: len(serial_report.experiment(name).rows) for name in GOLDEN_NAMES
    }
    assert counts == {
        "figure5": 1,   # one (pattern, load) cell
        "table3": 4,    # message lengths 5, 10, 20, 50
        "figure6": 1,   # one (pattern, load) cell
        "table4": 1,    # one (pattern, load) cell
        "table5": 4,    # full, meta, interval, economical
        "figure7": 9,   # 3x3 mesh destinations
    }


def test_campaign_markdown_structure_is_pinned(serial_report):
    text = serial_report.to_markdown()
    assert text.startswith("## Reproduction campaign")
    assert "Base configuration: 8x8 mesh, 20-flit messages" in text
    cursor = 0
    for heading in GOLDEN_HEADINGS:
        position = text.find(heading)
        assert position >= cursor, f"missing or out of order: {heading}"
        cursor = position
    # Every experiment section carries a paper claim and a fenced table.
    assert text.count("*Paper claim:*") == len(GOLDEN_NAMES)
    assert text.count("```") == 2 * len(GOLDEN_NAMES)


def test_process_pool_campaign_equals_serial_campaign(serial_report, parallel_report):
    assert [e.name for e in parallel_report.experiments] == GOLDEN_NAMES
    for name in GOLDEN_NAMES:
        assert (
            parallel_report.experiment(name).rows
            == serial_report.experiment(name).rows
        ), name
    assert parallel_report == serial_report
    assert parallel_report.to_markdown() == serial_report.to_markdown()


def test_warm_cache_repeats_the_campaign_with_zero_simulations(
    small_config, serial_report, serial_cache_dir
):
    cache = ResultCache(serial_cache_dir)
    with ProcessPoolBackend(workers=4, cache=cache) as backend:
        warm_report = run_campaign(small_config, backend=backend, **CAMPAIGN_KWARGS)
        assert backend.simulations_run == 0
    assert cache.misses == 0
    assert cache.hits > 0
    assert warm_report == serial_report
