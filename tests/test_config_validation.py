"""Eager registry validation of SimulationConfig string fields."""

import pytest

from repro.core.config import SimulationConfig


@pytest.mark.parametrize(
    "field, expected_alternative",
    [
        ("traffic", "uniform"),
        ("routing", "duato"),
        ("table", "economical"),
        ("selector", "static-xy"),
        ("pipeline", "la-proud"),
        ("injection", "exponential"),
    ],
)
def test_unknown_component_names_fail_at_construction(field, expected_alternative):
    with pytest.raises(ValueError) as excinfo:
        SimulationConfig(**{field: "definitely-not-registered"})
    message = str(excinfo.value)
    # The error names the offending field, the bad value and the sorted
    # registered alternatives.
    assert f"SimulationConfig.{field}" in message
    assert "definitely-not-registered" in message
    assert expected_alternative in message


def test_variant_with_unknown_name_fails_eagerly():
    config = SimulationConfig.tiny()
    with pytest.raises(ValueError):
        config.variant(table="gigantic")


def test_from_dict_with_unknown_name_fails_eagerly():
    data = SimulationConfig.tiny().to_dict()
    data["routing"] = "chaotic"
    with pytest.raises(ValueError):
        SimulationConfig.from_dict(data)


def test_validate_is_idempotent_on_a_good_config():
    config = SimulationConfig.tiny()
    config.validate()
    config.validate()


def test_alternatives_are_sorted():
    with pytest.raises(ValueError) as excinfo:
        SimulationConfig(selector="nope")
    message = str(excinfo.value)
    listed = message.split("registered alternatives: ")[1].split(", ")
    assert listed == sorted(listed)
