"""Self-tests of the house-style linter (:mod:`repro.analysis`).

Every checker family is exercised against the fixture snippets under
``tests/fixtures/analysis``: the *bad* variant must fire and the *good*
(fixed) variant must stay silent, so the linter itself cannot silently
rot.  The suppression syntax, report formats and exit-code mapping are
pinned here too; the repo-wide clean run and the C/R contract tests live
in ``test_analysis_contracts.py``.
"""

from pathlib import Path

import pytest

from repro.analysis.base import Checker
from repro.analysis.determinism import DeterminismChecker, SIM_MODULE_PREFIXES
from repro.analysis.findings import FAMILIES, FAMILY_EXIT_BITS, RULES, Finding
from repro.analysis.runner import REPORT_FORMAT, LintReport, run_lint
from repro.analysis.source import PythonSource, discover_sources, parse_suppressions
from repro.analysis.wake import WAKE_CONTRACTS, WakeChecker

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"

#: Module override landing a fixture inside the simulation scope.
SIM_FIXTURE_MODULE = "repro.router._analysis_fixture"


def load(name: str, module: str = SIM_FIXTURE_MODULE) -> PythonSource:
    return PythonSource.from_path(FIXTURES / name, module=module)


def lint_source(checker: Checker, source: PythonSource):
    """check_source plus the runner's suppression filter."""
    return [
        finding
        for finding in checker.check_source(source)
        if not source.is_suppressed(finding.rule, finding.line)
    ]


# -- rule table ----------------------------------------------------------------------


def test_rule_table_is_complete_and_stable():
    assert set(RULES) == {
        "D001", "D002", "D003", "D004",
        "C001", "C002",
        "W001",
        "R001", "R002", "R003",
    }
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.family == rule_id[0]
        assert rule.family in FAMILIES
        assert rule.name and rule.rationale


def test_every_family_has_a_distinct_exit_bit():
    assert FAMILY_EXIT_BITS == {"D": 1, "C": 2, "W": 4, "R": 8}


# -- D-checks ------------------------------------------------------------------------


def test_d001_fires_on_every_unordered_set_iteration():
    findings = lint_source(DeterminismChecker(), load("d_unordered_bad.py"))
    assert {f.rule for f in findings} == {"D001"}
    # The for loop, the list() call and the comprehension over the union.
    assert len(findings) == 3
    for finding in findings:
        assert "sorted" in finding.message


def test_d001_is_silent_once_sorted_imposes_the_order():
    assert lint_source(DeterminismChecker(), load("d_unordered_good.py")) == []


def test_d001_scope_is_the_simulation_packages_only():
    outside = load("d_unordered_bad.py", module="repro.cli")
    assert lint_source(DeterminismChecker(), outside) == []


def test_d002_d003_fire_on_ambient_and_unseedable_random():
    findings = lint_source(DeterminismChecker(), load("d_random_bad.py"))
    rules = sorted(f.rule for f in findings)
    # shuffle + randrange ambient, Random() + SystemRandom() unseedable.
    assert rules == ["D002", "D002", "D003", "D003"]


def test_d002_applies_even_outside_the_simulation_scope():
    outside = load("d_random_bad.py", module="repro.cli")
    assert {f.rule for f in lint_source(DeterminismChecker(), outside)} == {
        "D002",
        "D003",
    }


def test_the_rng_module_itself_is_exempt():
    inside = load("d_random_bad.py", module="repro.engine.rng")
    assert lint_source(DeterminismChecker(), inside) == []


def test_d_random_good_fixture_is_clean():
    assert lint_source(DeterminismChecker(), load("d_random_good.py")) == []


def test_d004_fires_on_wallclock_and_id():
    findings = lint_source(DeterminismChecker(), load("d_wallclock_bad.py"))
    assert [f.rule for f in findings] == ["D004", "D004"]
    messages = " ".join(f.message for f in findings)
    assert "time.time()" in messages and "id()" in messages


def test_d004_good_fixture_is_clean():
    assert lint_source(DeterminismChecker(), load("d_wallclock_good.py")) == []


def test_sim_scope_covers_the_order_sensitive_packages():
    for prefix in ("repro.router", "repro.network", "repro.engine",
                   "repro.tables", "repro.stats"):
        assert prefix in SIM_MODULE_PREFIXES


# -- W-checks ------------------------------------------------------------------------

FIXTURE_CONTRACTS = {
    "repro.network._wake_fixture": {"_flit_lanes": (("_flit_pending",),)},
}


def test_w001_fires_on_unguarded_growth_through_an_alias():
    source = load("w_wake_bad.py", module="repro.network._wake_fixture")
    findings = lint_source(WakeChecker(contracts=FIXTURE_CONTRACTS), source)
    assert [f.rule for f in findings] == ["W001"]
    message = findings[0].message
    assert "_flit_lanes" in message and "push" in message
    assert "_flit_pending" in message  # the expected guard group is named


def test_w001_is_silent_once_the_pending_counter_is_paired():
    source = load("w_wake_good.py", module="repro.network._wake_fixture")
    assert lint_source(WakeChecker(contracts=FIXTURE_CONTRACTS), source) == []


def test_w001_ignores_modules_without_a_contract():
    source = load("w_wake_bad.py", module="repro.network._other")
    assert lint_source(WakeChecker(contracts=FIXTURE_CONTRACTS), source) == []


def test_live_wake_contract_modules_exist():
    import importlib.util

    for module in WAKE_CONTRACTS:
        assert importlib.util.find_spec(module) is not None, module


# -- suppressions --------------------------------------------------------------------


def test_parse_suppressions_maps_lines_to_rule_sets():
    text = (
        "x = 1\n"
        "# repro: allow=D001 -- reason\n"
        "y = 2  # repro: allow=D002,W001\n"
    )
    allowed = parse_suppressions(text)
    assert allowed == {2: frozenset({"D001"}), 3: frozenset({"D002", "W001"})}


def test_suppressions_silence_only_the_named_rules():
    source = load("suppressed.py")
    raw = DeterminismChecker().check_source(source)
    assert [f.rule for f in raw] == ["D001", "D001", "D001"]
    filtered = lint_source(DeterminismChecker(), source)
    # Preceding-line and trailing allow=D001 comments silence the first
    # two loops; the allow=D004 comment names the wrong rule and the
    # third loop still fires.
    assert len(filtered) == 1
    assert source.is_suppressed("D001", raw[0].line)
    assert not source.is_suppressed("D001", filtered[0].line)
    assert source.suppressed_rules() == {"D001", "D004"}


def test_run_lint_applies_suppressions_per_file(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "a = 1\nb = 2  # repro: allow=D001\n", encoding="utf-8"
    )

    class EveryLine(Checker):
        rules = ("D001",)

        def check_source(self, source):
            return [
                Finding(rule="D001", path=str(source.path), line=line, message="stub")
                for line in (1, 2)
            ]

    report = run_lint([target], checkers=(EveryLine(),))
    assert [f.line for f in report.findings] == [1]
    assert report.files_checked == 1
    assert report.exit_code == FAMILY_EXIT_BITS["D"]


# -- report shape and exit codes -----------------------------------------------------


def test_exit_code_is_the_or_of_the_failing_family_bits():
    def finding(rule):
        return Finding(rule=rule, path="x.py", line=1, message="m")

    assert LintReport(findings=[]).exit_code == 0
    assert LintReport(findings=[finding("D001")]).exit_code == 1
    assert LintReport(findings=[finding("C002")]).exit_code == 2
    assert LintReport(findings=[finding("W001")]).exit_code == 4
    assert LintReport(findings=[finding("R003")]).exit_code == 8
    mixed = LintReport(
        findings=[finding("D001"), finding("W001"), finding("R001")]
    )
    assert mixed.exit_code == 1 | 4 | 8


def test_report_dict_schema_and_text_rendering():
    finding = Finding(rule="D001", path="src/x.py", line=12, col=4, message="boom")
    report = LintReport(findings=[finding], files_checked=3)
    data = report.to_dict()
    assert data["format"] == REPORT_FORMAT
    assert data["files_checked"] == 3
    assert data["counts"] == {"D": 1, "C": 0, "W": 0, "R": 0}
    assert data["exit_code"] == 1
    assert data["findings"] == [finding.to_dict()]
    assert finding.format() == "src/x.py:12:4: D001 boom"
    text = report.format_text()
    assert "src/x.py:12:4: D001 boom" in text
    assert "1 finding(s) (D:1 C:0 W:0 R:0) across 3 file(s)" in text
    assert "clean" in LintReport(files_checked=2).format_text()


def test_findings_sort_by_location_then_rule():
    findings = [
        Finding(rule="W001", path="b.py", line=1, message="m"),
        Finding(rule="D001", path="a.py", line=9, message="m"),
        Finding(rule="D001", path="a.py", line=2, message="m"),
    ]
    findings.sort(key=Finding.sort_key)
    assert [(f.path, f.line) for f in findings] == [
        ("a.py", 2),
        ("a.py", 9),
        ("b.py", 1),
    ]


# -- source discovery ----------------------------------------------------------------


def test_discover_sources_skips_pycache_and_dedups(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("", encoding="utf-8")
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text("this is not python (", encoding="utf-8")
    sources = discover_sources([tmp_path, tmp_path / "pkg" / "mod.py"])
    names = [source.path.name for source in sources]
    assert names == ["__init__.py", "mod.py"]  # junk skipped, mod deduped


def test_discover_sources_raises_on_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_sources([tmp_path / "nope"])


def test_discover_sources_raises_on_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    with pytest.raises(SyntaxError):
        discover_sources([bad])


def test_module_names_are_inferred_from_the_package_layout():
    import repro.network.link as link

    source = PythonSource.from_path(Path(link.__file__))
    assert source.module == "repro.network.link"
