"""Tests for the execution backends and their sweep-wave semantics."""

from typing import List, Sequence

import pytest

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.sweep import run_load_sweep
from repro.exec.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.exec.cache import ResultCache
from repro.stats.latency import LatencySummary


def fake_result(config: SimulationConfig, saturated: bool = False) -> SimulationResult:
    summary = LatencySummary(
        created=10,
        delivered=10,
        measured=10,
        avg_total_latency=100.0 * config.normalized_load,
        avg_network_latency=90.0 * config.normalized_load,
        std_total_latency=1.0,
        max_total_latency=200.0,
        avg_hops=4.0,
        throughput=config.normalized_load,
        cycles=1000,
        completion_ratio=1.0,
        saturated=saturated,
    )
    return SimulationResult(
        config=config, summary=summary, zero_load_latency=20.0, cycles=1000
    )


class FakeBackend(ExecutionBackend):
    """Scripted backend: saturates at/above a load threshold, counts sims."""

    def __init__(self, wave_size: int = 1, saturation_load: float = 0.5, cache=None):
        super().__init__(cache=cache)
        self._wave_size = wave_size
        self.saturation_load = saturation_load
        self.executed: List[SimulationConfig] = []

    @property
    def wave_size(self) -> int:
        return self._wave_size

    def _execute(self, configs: Sequence[SimulationConfig], on_result) -> List[SimulationResult]:
        results: List[SimulationResult] = []
        for index, config in enumerate(configs):
            self.executed.append(config)
            result = fake_result(
                config, saturated=config.normalized_load >= self.saturation_load
            )
            on_result(index, result)
            results.append(result)
        return results


def test_serial_backend_runs_and_counts():
    backend = SerialBackend()
    config = SimulationConfig.tiny()
    results = backend.run_configs([config, config.variant(normalized_load=0.3)])
    assert len(results) == 2
    assert backend.simulations_run == 2
    assert results[0].config.normalized_load == config.normalized_load
    assert results[1].config.normalized_load == 0.3


def test_backend_preserves_submission_order():
    backend = FakeBackend()
    base = SimulationConfig.tiny()
    loads = [0.4, 0.1, 0.3, 0.2]
    results = backend.run_configs(
        [base.variant(normalized_load=load) for load in loads]
    )
    assert [result.config.normalized_load for result in results] == loads


def test_backend_deduplicates_identical_configs_within_a_batch():
    backend = FakeBackend()
    config = SimulationConfig.tiny()
    results = backend.run_configs([config, config, config.variant(seed=2), config])
    assert backend.simulations_run == 2
    assert results[0] == results[1] == results[3]
    assert results[2].config.seed == 2


def test_backend_serves_cache_hits_without_simulating(tmp_path):
    cache = ResultCache(tmp_path)
    config = SimulationConfig.tiny()
    first = FakeBackend(cache=cache)
    first.run_configs([config])
    assert first.simulations_run == 1
    second = FakeBackend(cache=cache)
    results = second.run_configs([config])
    assert second.simulations_run == 0
    assert cache.hits == 1
    assert results[0].config == config


def test_mixed_batch_simulates_only_the_misses(tmp_path):
    cache = ResultCache(tmp_path)
    config = SimulationConfig.tiny()
    other = config.variant(normalized_load=0.3)
    FakeBackend(cache=cache).run_configs([config])
    backend = FakeBackend(cache=cache)
    results = backend.run_configs([config, other])
    assert backend.simulations_run == 1
    assert [r.config for r in results] == [config, other]


def test_process_pool_backend_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(workers=0)


def test_wave_sizes():
    assert SerialBackend().wave_size == 1
    assert ProcessPoolBackend(workers=3).wave_size == 3


def test_make_backend_selects_by_worker_count(tmp_path):
    assert isinstance(make_backend(), SerialBackend)
    assert isinstance(make_backend(workers=1), SerialBackend)
    pool = make_backend(workers=2, cache_dir=tmp_path)
    assert isinstance(pool, ProcessPoolBackend)
    assert pool.workers == 2
    assert isinstance(pool.cache, ResultCache)


def test_sweep_stops_at_saturation_regardless_of_wave_size():
    base = SimulationConfig.tiny()
    loads = [0.1, 0.2, 0.3, 0.5, 0.6, 0.7]
    serial_like = FakeBackend(wave_size=1, saturation_load=0.3)
    wide = FakeBackend(wave_size=4, saturation_load=0.3)
    points_serial = run_load_sweep(base, loads, backend=serial_like)
    points_wide = run_load_sweep(base, loads, backend=wide)
    # Both curves end at the first saturated load (0.3), inclusive.
    assert [p.normalized_load for p in points_serial] == [0.1, 0.2, 0.3]
    assert [p.normalized_load for p in points_wide] == [0.1, 0.2, 0.3]
    assert points_serial[-1].saturated and points_wide[-1].saturated
    # Serial waves never simulate past the saturated point; a wide wave may
    # (those extra points are wasted work at most, never extra output rows).
    assert [c.normalized_load for c in serial_like.executed] == [0.1, 0.2, 0.3]
    assert [c.normalized_load for c in wide.executed] == [0.1, 0.2, 0.3, 0.5]


def test_sweep_without_saturation_stop_submits_one_batch():
    base = SimulationConfig.tiny()
    backend = FakeBackend(wave_size=2)
    points = run_load_sweep(base, [0.1, 0.6, 0.7], stop_at_saturation=False, backend=backend)
    assert [p.normalized_load for p in points] == [0.1, 0.6, 0.7]
    assert backend.simulations_run == 3


class ExplodingBackend(FakeBackend):
    """Fails while simulating the config whose seed is ``boom_seed``."""

    def __init__(self, boom_seed: int, cache=None):
        super().__init__(cache=cache)
        self.boom_seed = boom_seed

    def _execute(self, configs: Sequence[SimulationConfig], on_result):
        results: List[SimulationResult] = []
        for index, config in enumerate(configs):
            if config.seed == self.boom_seed:
                raise RuntimeError("worker died")
            result = fake_result(config)
            on_result(index, result)
            results.append(result)
        return results


def test_completed_points_are_cached_even_if_the_batch_dies(tmp_path):
    cache = ResultCache(tmp_path)
    base = SimulationConfig.tiny()
    batch = [base.variant(seed=1), base.variant(seed=2), base.variant(seed=3)]
    backend = ExplodingBackend(boom_seed=3, cache=cache)
    with pytest.raises(RuntimeError):
        backend.run_configs(batch)
    # The two points finished before the failure survived to disk...
    assert backend.simulations_run == 2
    assert len(cache) == 2
    # ...so a resumed run only simulates the point that died.
    resumed = FakeBackend(cache=cache)
    results = resumed.run_configs(batch)
    assert resumed.simulations_run == 1
    assert [r.config.seed for r in results] == [1, 2, 3]


def test_pool_caches_completed_points_when_a_worker_fails(tmp_path):
    cache = ResultCache(tmp_path)
    good = SimulationConfig.tiny(measure_messages=50, warmup_messages=5)
    # Unknown component names now fail eagerly at construction, so a
    # worker-side failure needs a config that passes name validation but
    # dies during network assembly: bit-reversal needs 2^k nodes.
    bad = good.variant(mesh_dims=(3, 3), traffic="bit-reversal")
    with ProcessPoolBackend(workers=2, cache=cache) as backend:
        with pytest.raises(Exception):
            backend.run_configs([good, bad])
    # The point that finished was persisted despite the other one failing.
    assert cache.stores == 1
    assert SerialBackend(cache=cache).run_configs([good]) and cache.hits == 1


def test_backend_context_manager_closes_the_pool():
    with ProcessPoolBackend(workers=2) as backend:
        config = SimulationConfig.tiny(measure_messages=50, warmup_messages=5)
        results = backend.run_configs(
            [config, config.variant(normalized_load=0.25)]
        )
        assert len(results) == 2
        assert backend._pool is not None
    assert backend._pool is None


# -- replicated points --------------------------------------------------------------


def test_replicated_config_fans_out_into_seed_offset_runs():
    backend = FakeBackend()
    config = SimulationConfig.tiny(replications=3, seed_stride=10, seed=5)
    results = backend.run_configs([config])
    assert [c.seed for c in backend.executed] == [5, 15, 25]
    assert all(c.replications == 1 and c.seed_stride == 1 for c in backend.executed)
    assert len(results) == 1
    block = results[0].replicates
    assert block["count"] == 3
    assert block["seeds"] == [5, 15, 25]


def test_merged_result_carries_confidence_intervals():
    backend = FakeBackend()
    config = SimulationConfig.tiny(replications=4)
    result = backend.run_configs([config])[0]
    assert result.config == config
    block = result.replicates
    assert set(block) >= {"count", "seeds", "level", "latency", "throughput"}
    assert block["latency"]["count"] == 4
    assert block["latency"]["half_width"] >= 0.0
    # The merged headline latency is the pooled per-message mean.
    assert result.latency == pytest.approx(block["latency"]["mean"])


def test_replicates_share_cache_slots_with_plain_runs(tmp_path):
    cache = ResultCache(tmp_path)
    base = SimulationConfig.tiny(seed=1)
    # Prime the slot for seed 2 with a plain single-seed run.
    FakeBackend(cache=cache).run_configs([base.variant(seed=2)])
    backend = FakeBackend(cache=cache)
    backend.run_configs([base.variant(replications=3)])
    # Seeds 1, 2, 3: seed 2 was already cached, only 1 and 3 simulate.
    assert backend.simulations_run == 2
    assert cache.hits == 1


def test_mixed_replicated_and_plain_batch_keeps_submission_order():
    backend = FakeBackend()
    plain = SimulationConfig.tiny(normalized_load=0.1)
    replicated = SimulationConfig.tiny(normalized_load=0.2, replications=2)
    results = backend.run_configs([plain, replicated, plain.variant(seed=9)])
    assert [r.config.normalized_load for r in results] == [0.1, 0.2, 0.1]
    assert results[0].replicates is None
    assert results[1].replicates["count"] == 2
    assert results[2].replicates is None


def test_replicated_serial_and_pool_results_are_bit_identical():
    config = SimulationConfig.tiny(
        measure_messages=50, warmup_messages=5, replications=3
    )
    serial = SerialBackend().run_configs([config])[0]
    with ProcessPoolBackend(workers=2) as pool:
        pooled = pool.run_configs([config])[0]
    assert serial.to_json() == pooled.to_json()


def test_simulator_refuses_replicated_configs():
    from repro.core.simulator import NetworkSimulator

    with pytest.raises(ValueError, match="execution backend"):
        NetworkSimulator(SimulationConfig.tiny(replications=2))


def test_replicate_configs_expansion():
    config = SimulationConfig.tiny(seed=3, replications=2, seed_stride=7)
    replicates = config.replicate_configs()
    assert [c.seed for c in replicates] == [3, 10]
    single = SimulationConfig.tiny()
    assert single.replicate_configs() == (single,)
    with pytest.raises(ValueError):
        SimulationConfig.tiny(replications=0)
    with pytest.raises(ValueError):
        SimulationConfig.tiny(seed_stride=0)
