"""End-to-end plugin flow: user-registered components through ``study``.

Covers the acceptance criterion: a traffic pattern registered from user
code (no edits under ``src/repro/``) runs end-to-end through the
``study`` CLI subcommand, caches correctly, and appears in registry
introspection.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import registry
from repro.cli import main
from repro.exec.cache import config_cache_key

REPO_ROOT = Path(__file__).resolve().parent.parent
PLUGIN_PATH = REPO_ROOT / "examples" / "custom_pattern_plugin.py"
SPEC_PATH = REPO_ROOT / "examples" / "specs" / "diagonal_sweep.json"


def _forget_plugin():
    registry.TRAFFIC_PATTERNS.unregister("diagonal")
    for name in [n for n in sys.modules if n.startswith("repro_plugin_")]:
        sys.modules.pop(name, None)


@pytest.fixture
def diagonal_plugin():
    """Import the example plugin; unregister on teardown for isolation."""
    module = registry.load_plugin(str(PLUGIN_PATH))
    yield module
    _forget_plugin()


def test_plugin_pattern_appears_in_registry_introspection(diagonal_plugin):
    assert "diagonal" in registry.TRAFFIC_PATTERNS.names()
    entry = registry.TRAFFIC_PATTERNS.entry("diagonal")
    assert entry.provenance.endswith(":DiagonalPattern")
    assert "Mirror traffic" in entry.summary
    described = registry.describe_registries()["traffic"]
    assert any(row["name"] == "diagonal" for row in described)


def test_plugin_study_runs_through_the_cli_and_caches(diagonal_plugin, tmp_path, capsys):
    cache_dir = tmp_path / "plugin-cache"
    args = ["study", str(SPEC_PATH), "--cache-dir", str(cache_dir)]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "load" in first.out and "latency" in first.out
    assert "2 simulations run" in first.err
    # A second run is served entirely from the cache.
    assert main(args) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "0 simulations run" in second.err
    assert "2 served from cache" in second.err


def test_plugin_study_runs_on_the_process_pool(diagonal_plugin, tmp_path, capsys):
    # Worker processes import repro fresh; the spec's plugins list makes
    # them re-register the pattern before simulating.
    cache_dir = tmp_path / "pool-cache"
    args = ["study", str(SPEC_PATH), "--workers", "2",
            "--cache-dir", str(cache_dir)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "latency" in out
    assert len(list(cache_dir.glob("*.json"))) == 2


def test_plugin_cache_key_differs_from_builtin_patterns(diagonal_plugin):
    from repro.core.config import SimulationConfig

    diagonal = SimulationConfig.tiny(traffic="diagonal")
    uniform = SimulationConfig.tiny(traffic="uniform")
    assert config_cache_key(diagonal) != config_cache_key(uniform)
    provenance = registry.config_component_provenance(diagonal)
    assert provenance["traffic"].startswith("repro_plugin_custom_pattern_plugin")
    assert provenance["traffic"].endswith(":DiagonalPattern")


def test_cli_plugin_flag_loads_user_code(tmp_path, capsys, monkeypatch):
    # Same flow without the fixture: --plugin imports the module, and the
    # spec can then name the pattern even without its own plugins field.
    monkeypatch.chdir(REPO_ROOT)
    spec = json.loads(SPEC_PATH.read_text(encoding="utf-8"))
    spec.pop("plugins")
    spec_file = tmp_path / "no_plugins_field.json"
    spec_file.write_text(json.dumps(spec), encoding="utf-8")
    try:
        assert main(["study", str(spec_file), "--plugin", str(PLUGIN_PATH)]) == 0
        assert "latency" in capsys.readouterr().out
    finally:
        _forget_plugin()


def test_cli_reports_missing_plugin_cleanly():
    with pytest.raises(SystemExit) as excinfo:
        main(["study", str(SPEC_PATH), "--plugin", "/no/such/plugin.py"])
    assert "cannot load plugin" in str(excinfo.value)


def test_example_plugin_runs_standalone():
    import subprocess

    completed = subprocess.run(
        [sys.executable, str(PLUGIN_PATH)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert "latency" in completed.stdout


def test_cli_list_shows_plugin_components(capsys):
    try:
        assert main(["study", "--list", "--plugin", str(PLUGIN_PATH)]) == 0
        assert "diagonal" in capsys.readouterr().out
    finally:
        _forget_plugin()


def test_spec_plugin_paths_resolve_against_the_spec_directory(tmp_path, capsys, monkeypatch):
    # A spec's relative plugin path must work from any working directory.
    monkeypatch.chdir(tmp_path)
    try:
        assert main(["study", str(SPEC_PATH)]) == 0
        assert "latency" in capsys.readouterr().out
    finally:
        _forget_plugin()


def test_plugin_files_sharing_a_basename_stay_distinct(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    (tmp_path / "a" / "plug.py").write_text("VALUE = 'A'\n", encoding="utf-8")
    (tmp_path / "b" / "plug.py").write_text("VALUE = 'B'\n", encoding="utf-8")
    try:
        first = registry.load_plugin(str(tmp_path / "a" / "plug.py"))
        second = registry.load_plugin(str(tmp_path / "b" / "plug.py"))
        assert (first.VALUE, second.VALUE) == ("A", "B")
        # Re-loading the same file reuses the cached module.
        assert registry.load_plugin(str(tmp_path / "a" / "plug.py")) is first
    finally:
        _forget_plugin()
