"""Fixture: D004 fires on wall-clock reads and id() in simulation code."""

import time


def stamp(event):
    event.created = time.time()
    return id(event)
