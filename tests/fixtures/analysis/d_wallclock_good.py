"""Fixture: simulated-clock timestamps and stable sequence ids pass."""


def stamp(event, cycle, sequence):
    event.created = cycle
    return sequence
