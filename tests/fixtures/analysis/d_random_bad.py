"""Fixture: D002/D003 fire on ambient and unseedable random machinery."""

import random
from random import randrange


def pick(items):
    random.shuffle(items)
    generator = random.Random()
    system = random.SystemRandom()
    return randrange(3), generator, system
