"""Fixture: W001 fires when quiescence-relevant state grows unguarded.

Linted with an injected contract table declaring ``_flit_lanes`` paired
with ``_flit_pending``; ``push`` below mutates through an alias chain
without ever touching the pending counter.
"""


class Lanes:
    def __init__(self, size):
        self._flit_lanes = [[] for _ in range(size)]
        self._flit_pending = 0
        self._size = size

    def push(self, cycle, flit):
        lane = self._flit_lanes[cycle % self._size]
        lane.append(flit)
