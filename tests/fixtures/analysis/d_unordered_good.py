"""Fixture: the sorted() wrap is the blessed fix for D001."""


def drain(ports):
    pending = {port for port in ports if port % 2}
    total = 0
    for port in sorted(pending):
        total += port
    ordered = sorted(pending)
    extras = pending | {0}
    if 3 in pending:  # membership tests never draw on iteration order
        total += 3
    return total, ordered, [p for p in sorted(extras)]
