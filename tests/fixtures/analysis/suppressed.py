"""Fixture: inline suppressions silence exactly the named rules."""


def drain(ports):
    pending = {port for port in ports}
    total = 0
    # repro: allow=D001 -- commutative sum, order cannot matter
    for port in pending:
        total += port
    for port in pending:  # repro: allow=D001,D004
        total += port
    for port in pending:  # repro: allow=D004
        total += port
    return total
