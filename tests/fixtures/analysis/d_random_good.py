"""Fixture: seeded generators derived from the configuration pass."""

import random


def pick(items, seed):
    generator = random.Random(seed)
    ordered = sorted(items)
    generator.shuffle(ordered)
    return ordered
