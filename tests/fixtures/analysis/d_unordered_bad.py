"""Fixture: D001 fires on order-sensitive iteration of sets.

Linted with a module override that lands it inside the simulation scope;
never imported.
"""


def drain(ports):
    pending = {port for port in ports if port % 2}
    total = 0
    for port in pending:
        total += port
    ordered = list(pending)
    extras = pending | {0}
    return total, ordered, [p for p in extras]
