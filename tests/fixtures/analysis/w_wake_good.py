"""Fixture: the pending-counter pairing satisfies the wake contract,
and copies of watched state are not the watched state."""


class Lanes:
    def __init__(self, size):
        self._flit_lanes = [[] for _ in range(size)]
        self._flit_pending = 0
        self._size = size

    def push(self, cycle, flit):
        lane = self._flit_lanes[cycle % self._size]
        lane.append(flit)
        self._flit_pending += 1

    def snapshot(self, cycle):
        copy = list(self._flit_lanes[cycle % self._size])
        copy.append(None)  # a copy of a lane is not the lane
        return copy
