"""Tests for the global simulation clock."""

import pytest

from repro.engine.clock import Clock


def test_clock_starts_at_zero():
    assert Clock().now == 0


def test_clock_starts_at_custom_cycle():
    assert Clock(start=42).now == 42


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(start=-1)


def test_tick_advances_by_one_by_default():
    clock = Clock()
    assert clock.tick() == 1
    assert clock.now == 1


def test_tick_advances_by_many():
    clock = Clock()
    clock.tick(10)
    assert clock.now == 10


def test_tick_rejects_zero_and_negative():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.tick(0)
    with pytest.raises(ValueError):
        clock.tick(-5)


def test_reset_returns_to_zero():
    clock = Clock()
    clock.tick(7)
    clock.reset()
    assert clock.now == 0


def test_repr_mentions_current_cycle():
    clock = Clock()
    clock.tick(3)
    assert "3" in repr(clock)
