"""Closed-loop workload subsystem: DAG semantics, generators, drain runs.

Covers the program model (:mod:`repro.workload.dag`), the dependency
engine (:mod:`repro.workload.engine`), the built-in generator factories,
trace replay, the simulator integration (drain metrics, stop condition,
streaming-memory discipline) and the spec-validation error surface
(unknown workload names and malformed trace JSON must raise clear
``ValueError``\\ s, not deep tracebacks).
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator
from repro.registry import WORKLOADS, validate_config_names
from repro.workload import (
    COMPUTE,
    TRANSFER,
    WorkloadDag,
    WorkloadEngine,
    WorkloadNode,
    example_trace_path,
)


def _transfer(src, dst, flits=1, phase=0):
    return WorkloadNode(kind=TRANSFER, src=src, dst=dst, flits=flits, phase=phase)


def _compute(node, delay, phase=0):
    return WorkloadNode(kind=COMPUTE, src=node, dst=node, delay=delay, phase=phase)


# -- program model ----------------------------------------------------------------


def test_transfer_node_validation():
    with pytest.raises(ValueError, match="at least one flit"):
        _transfer(0, 1, flits=0)
    with pytest.raises(ValueError, match="itself"):
        _transfer(2, 2)
    with pytest.raises(ValueError, match="delay"):
        WorkloadNode(kind=TRANSFER, src=0, dst=1, flits=1, delay=3)
    with pytest.raises(ValueError, match="kind"):
        WorkloadNode(kind="teleport", src=0, dst=1)


def test_compute_node_validation():
    with pytest.raises(ValueError, match="delay"):
        _compute(0, delay=-1)
    with pytest.raises(ValueError, match="flits"):
        WorkloadNode(kind=COMPUTE, src=0, dst=0, flits=2)


def test_dag_rejects_cycles():
    nodes = (_transfer(0, 1), _transfer(1, 0))
    with pytest.raises(ValueError, match="cycle"):
        WorkloadDag(nodes, edges=((0, 1), (1, 0)))


def test_dag_rejects_bad_edges():
    nodes = (_transfer(0, 1), _transfer(1, 2))
    with pytest.raises(ValueError, match="points outside"):
        WorkloadDag(nodes, edges=((0, 5),))
    with pytest.raises(ValueError, match="self-loop"):
        WorkloadDag(nodes, edges=((1, 1),))


def test_dag_properties_and_range_check():
    dag = WorkloadDag(
        (_transfer(0, 1, flits=3), _compute(1, delay=2, phase=1),
         _transfer(1, 2, flits=2, phase=1)),
        edges=((0, 1), (1, 2)),
    )
    assert len(dag) == 3
    assert dag.num_transfers == 2
    assert dag.total_flits == 5
    assert dag.phase_count == 2
    assert dag.phase_node_counts() == [1, 2]
    dag.check_nodes_in_range(3)
    with pytest.raises(ValueError, match="node #2"):
        dag.check_nodes_in_range(2)


def test_critical_path_is_longest_chain():
    # transfer(cost 10) -> compute(5) -> transfer(cost 7), plus a
    # parallel transfer(cost 4): the chain dominates, with +1 release
    # latency per edge.
    dag = WorkloadDag(
        (_transfer(0, 1), _compute(1, delay=5), _transfer(1, 2), _transfer(2, 3)),
        edges=((0, 1), (1, 2)),
    )
    costs = {0: 10, 2: 7, 3: 4}

    def cost(step):
        for idx, node in enumerate(dag.nodes):
            if node is step:
                return costs.get(idx, 0)
        raise AssertionError

    assert dag.critical_path_cycles(cost) == 10 + 1 + 5 + 1 + 7


# -- trace parsing ----------------------------------------------------------------


def test_trace_round_trip():
    dag = WorkloadDag.from_trace_json(
        example_trace_path().read_text(encoding="utf-8")
    )
    assert dag.num_transfers == 4
    assert dag.phase_count == 2


def test_trace_rejects_invalid_json():
    with pytest.raises(ValueError, match="not valid JSON"):
        WorkloadDag.from_trace_json("{broken")


def test_trace_rejects_malformed_nodes():
    with pytest.raises(ValueError, match="node #0"):
        WorkloadDag.from_trace_dict(
            {"nodes": [{"kind": "transfer", "src": 0}], "edges": []}
        )
    with pytest.raises(ValueError, match="node #1"):
        WorkloadDag.from_trace_dict(
            {
                "nodes": [
                    {"kind": "transfer", "src": 0, "dst": 1, "flits": 1},
                    {"kind": "compute", "node": 1, "delay": "soon"},
                ],
                "edges": [],
            }
        )
    with pytest.raises(ValueError, match="nodes"):
        WorkloadDag.from_trace_dict({"edges": []})


# -- engine semantics --------------------------------------------------------------


def test_engine_releases_roots_and_successors():
    dag = WorkloadDag(
        (_transfer(0, 1), _transfer(1, 2, phase=1)), edges=((0, 1),)
    )
    engine = WorkloadEngine(dag, num_nodes=4)
    assert engine.next_due_cycle(0) == 0
    assert engine.next_due_cycle(1) is None
    [message] = engine.messages_due(0, 0)
    assert (message.source, message.destination) == (0, 1)
    assert engine.messages_due(0, 0) == []
    # Delivery at cycle 9 releases the successor strictly in the future.
    engine.on_delivered(message, 9)
    assert engine.next_due_cycle(1) == 10
    assert not engine.drained
    [reply] = engine.messages_due(1, 10)
    engine.on_delivered(reply, 20)
    assert engine.drained
    metrics = engine.drain_metrics(25, critical_path_cycles=15)
    assert metrics["drained"] is True
    assert metrics["time_to_drain"] == 20
    assert metrics["phase_cycles"] == [9, 20]
    assert metrics["critical_path_utilization"] == 15 / 20


def test_engine_compute_steps_complete_without_messages():
    dag = WorkloadDag(
        (_compute(2, delay=5), _transfer(2, 0, phase=1)), edges=((0, 1),)
    )
    engine = WorkloadEngine(dag, num_nodes=4)
    assert engine.next_due_cycle(2) == 5
    assert engine.messages_due(2, 4) == []
    # The compute step finishes when polled at its due cycle; its
    # successor transfer becomes due the next cycle.
    assert engine.messages_due(2, 5) == []
    assert engine.next_due_cycle(2) == 6
    [message] = engine.messages_due(2, 6)
    assert message.destination == 0


def test_engine_rejects_out_of_range_homes():
    dag = WorkloadDag((_transfer(0, 7),), edges=())
    with pytest.raises(ValueError, match="node #0"):
        WorkloadEngine(dag, num_nodes=4)


# -- generator factories -----------------------------------------------------------


def _topology(mesh=(4, 4), **overrides):
    from repro.core.simulator import build_topology

    return build_topology(SimulationConfig(mesh_dims=mesh, **overrides))


def test_request_reply_windowing():
    config = SimulationConfig(
        mesh_dims=(4, 4), workload="request-reply",
        workload_iters=5, workload_window=2,
    )
    dag = WORKLOADS.get("request-reply")(config, _topology())
    # 8 client/server pairs, 5 iterations, request + reply each.
    assert len(dag) == 8 * 5 * 2
    # Iteration 2's request depends on iteration 0's reply (window 2):
    # every non-root request has exactly one blocking window edge plus
    # none for the first `window` iterations.
    roots = sum(1 for idx in range(len(dag)) if dag.indegree[idx] == 0)
    assert roots == 8 * 2  # first `window` requests per pair


def test_allreduce_transfer_count():
    config = SimulationConfig(
        mesh_dims=(4, 4), workload="allreduce",
        workload_iters=3, workload_hidden=64,
    )
    dag = WORKLOADS.get("allreduce")(config, _topology())
    # Ring all-reduce over g nodes: 2*(g-1) rounds of g sends each, per
    # iteration (reduce-scatter then all-gather).
    assert dag.num_transfers == 3 * 2 * (16 - 1) * 16
    assert dag.num_transfers == len(dag)  # transfers only, no barriers


def test_alltoall_barriers_order_phases():
    config = SimulationConfig(
        mesh_dims=(2, 2), workload="alltoall", workload_iters=1
    )
    dag = WORKLOADS.get("alltoall")(config, _topology(mesh=(2, 2)))
    # 4 nodes, 3 offsets: 4 sends per offset plus a barrier per offset.
    assert dag.num_transfers == 4 * 3
    assert dag.phase_count == 3
    result = NetworkSimulator(
        SimulationConfig(mesh_dims=(2, 2), workload="alltoall", workload_iters=1)
    ).run()
    phases = result.drain["phase_cycles"]
    assert phases == sorted(phases)


def test_llm_decode_group_validation():
    config = SimulationConfig(
        mesh_dims=(2, 2), workload="llm-decode", workload_group=9
    )
    with pytest.raises(ValueError, match="group"):
        WORKLOADS.get("llm-decode")(config, _topology(mesh=(2, 2)))


def test_trace_workload_requires_path():
    config = SimulationConfig(mesh_dims=(4, 4), workload="trace")
    with pytest.raises(ValueError, match="workload_trace"):
        WORKLOADS.get("trace")(config, _topology())


def test_trace_workload_rejects_unreadable_path():
    config = SimulationConfig(
        mesh_dims=(4, 4), workload="trace",
        workload_trace="/nonexistent/trace.json",
    )
    with pytest.raises(ValueError, match="cannot read workload trace"):
        WORKLOADS.get("trace")(config, _topology())


def test_trace_workload_rejects_nodes_beyond_mesh(tmp_path):
    trace = tmp_path / "big.json"
    trace.write_text(json.dumps({
        "nodes": [{"kind": "transfer", "src": 0, "dst": 11, "flits": 1}],
        "edges": [],
    }), encoding="utf-8")
    config = SimulationConfig(
        mesh_dims=(2, 2), workload="trace", workload_trace=str(trace)
    )
    with pytest.raises(ValueError, match="beyond the 4-node topology"):
        WORKLOADS.get("trace")(config, _topology(mesh=(2, 2)))


# -- spec validation error surface -------------------------------------------------


def test_unknown_workload_name_is_a_clear_value_error():
    with pytest.raises(ValueError, match="unknown closed-loop workload"):
        SimulationConfig(mesh_dims=(4, 4), workload="does-not-exist")


def test_validate_config_names_covers_workloads():
    config = SimulationConfig(mesh_dims=(4, 4), workload="allreduce")
    validate_config_names(config)  # does not raise
    # Open-loop configs leave the workload field None; the walk skips it.
    validate_config_names(SimulationConfig(mesh_dims=(4, 4)))


def test_workload_parameter_validation():
    with pytest.raises(ValueError, match="workload_iters"):
        SimulationConfig(mesh_dims=(4, 4), workload_iters=0)
    with pytest.raises(ValueError, match="workload_window"):
        SimulationConfig(mesh_dims=(4, 4), workload_window=0)
    with pytest.raises(ValueError, match="workload_layers"):
        SimulationConfig(mesh_dims=(4, 4), workload_layers=0)
    with pytest.raises(ValueError, match="workload_hidden"):
        SimulationConfig(mesh_dims=(4, 4), workload_hidden=0)
    with pytest.raises(ValueError, match="workload_group"):
        SimulationConfig(mesh_dims=(4, 4), workload_group=-1)
    with pytest.raises(ValueError, match="workload_compute"):
        SimulationConfig(mesh_dims=(4, 4), workload_compute=-1)


def test_study_with_unknown_workload_fails_cleanly():
    from repro.scenario.runner import run_study
    from repro.scenario.spec import Report, Study

    study = Study(
        name="bad-workload",
        title="bad",
        base=SimulationConfig(mesh_dims=(2, 2)).to_dict(),
        report=Report(reporter="drain"),
    )
    base = dict(study.base)
    base["workload"] = "does-not-exist"
    bad = Study(name="bad-workload", title="bad", base=base,
                report=Report(reporter="drain"))
    with pytest.raises(ValueError, match="unknown closed-loop workload"):
        run_study(bad)


# -- simulator integration ---------------------------------------------------------


def _run_workload(core_mode="flat", **overrides):
    overrides.setdefault("mesh_dims", (4, 4))
    config = SimulationConfig(core_mode=core_mode, seed=2, **overrides)
    simulator = NetworkSimulator(config)
    return simulator, simulator.run()


@pytest.mark.parametrize("core_mode", ["objects", "flat"])
def test_drain_metrics_end_to_end(core_mode):
    simulator, result = _run_workload(
        core_mode=core_mode, workload="allreduce",
        workload_iters=2, workload_hidden=32,
    )
    drain = result.drain
    assert drain is not None
    assert drain["drained"] is True
    assert drain["time_to_drain"] <= result.cycles
    assert drain["critical_path_cycles"] > 0
    assert 0.0 < drain["critical_path_utilization"] <= 1.0
    assert drain["transfers"] == result.summary.measured
    assert all(cycle is not None for cycle in drain["phase_cycles"])
    assert result.effective_message_rate == 0.0
    assert not result.saturated


def test_workload_runs_are_deterministic():
    _, first = _run_workload(workload="llm-decode", workload_layers=2,
                             workload_hidden=32)
    _, second = _run_workload(workload="llm-decode", workload_layers=2,
                              workload_hidden=32)
    assert first.to_json() == second.to_json()


@pytest.mark.parametrize("core_mode", ["objects", "flat"])
def test_streaming_memory_discipline(core_mode):
    """After a drained run neither the engine nor the collector retains
    per-message state: in-flight map empty, creation-order map empty."""
    simulator, result = _run_workload(
        core_mode=core_mode, workload="request-reply", workload_iters=3
    )
    assert result.drain["drained"]
    engine = simulator.workload
    assert engine is not None
    assert engine.inflight_count == 0
    assert simulator.stats._order == {}


def test_drain_block_survives_result_round_trip():
    _, result = _run_workload(workload="alltoall", workload_iters=1)
    from repro.core.results import SimulationResult

    rebuilt = SimulationResult.from_json(result.to_json())
    assert rebuilt.drain == result.drain
    assert rebuilt.to_json() == result.to_json()


def test_open_loop_results_have_no_drain_block():
    result = NetworkSimulator(SimulationConfig.tiny(seed=1)).run()
    assert result.drain is None


def test_trace_workload_end_to_end():
    _, result = _run_workload(
        workload="trace", workload_trace=str(example_trace_path()),
        mesh_dims=(2, 2),
    )
    assert result.drain["drained"]
    assert result.drain["transfers"] == 4
