"""Determinism guarantees of the execution layer.

Every simulation is seeded solely by its configuration, so the same
``SimulationConfig`` must produce bit-identical results (a) across two
consecutive runs, (b) through the serial and the process-pool backends,
and (c) after a JSON round trip through the result cache.
"""

import pytest

from repro.core.campaign import run_campaign
from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.sweep import run_load_sweep
from repro.exec.backend import ProcessPoolBackend, SerialBackend, simulate_config


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig.tiny(measure_messages=200, warmup_messages=20)


@pytest.fixture(scope="module")
def serial_result(tiny_config):
    return simulate_config(tiny_config)


def test_two_consecutive_runs_are_bit_identical(tiny_config, serial_result):
    again = simulate_config(tiny_config)
    assert again == serial_result
    assert again.summary.as_dict() == serial_result.summary.as_dict()
    assert again.to_json() == serial_result.to_json()


def test_serial_and_process_pool_backends_agree(tiny_config, serial_result):
    configs = [tiny_config, tiny_config.variant(normalized_load=0.35, seed=3)]
    serial = SerialBackend().run_configs(configs)
    with ProcessPoolBackend(workers=2) as pool:
        parallel = pool.run_configs(configs)
    assert serial[0] == serial_result
    for serial_point, parallel_point in zip(serial, parallel):
        assert serial_point == parallel_point
        assert serial_point.to_json() == parallel_point.to_json()


def test_load_sweep_is_identical_through_both_backends(tiny_config):
    loads = (0.1, 0.25, 0.4)
    serial_points = run_load_sweep(tiny_config, loads, backend=SerialBackend())
    with ProcessPoolBackend(workers=2) as pool:
        parallel_points = run_load_sweep(tiny_config, loads, backend=pool)
    assert [p.normalized_load for p in serial_points] == [
        p.normalized_load for p in parallel_points
    ]
    for serial_point, parallel_point in zip(serial_points, parallel_points):
        assert serial_point.result == parallel_point.result


@pytest.mark.slow
def test_campaign_is_identical_through_both_backends(tiny_config):
    serial_report = run_campaign(
        tiny_config, loads_low_high=(0.2,), traffic_patterns=("uniform",)
    )
    with ProcessPoolBackend(workers=2) as pool:
        parallel_report = run_campaign(
            tiny_config,
            loads_low_high=(0.2,),
            traffic_patterns=("uniform",),
            backend=pool,
        )
    assert serial_report == parallel_report
    assert serial_report.to_markdown() == parallel_report.to_markdown()


def test_cache_round_trip_preserves_every_field(tmp_path, tiny_config, serial_result):
    from repro.exec.cache import ResultCache

    cache = ResultCache(tmp_path)
    cache.put(tiny_config, serial_result)
    loaded = cache.get(tiny_config)
    assert isinstance(loaded, SimulationResult)
    assert loaded == serial_result
    assert loaded.to_json() == serial_result.to_json()
