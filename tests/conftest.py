"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.topology import MeshTopology, TorusTopology
from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD, PROUD


@pytest.fixture
def mesh4x4() -> MeshTopology:
    """A 4x4 mesh, the workhorse topology of the unit tests."""
    return MeshTopology((4, 4))


@pytest.fixture
def mesh3x3() -> MeshTopology:
    """The 3x3 mesh used by the paper's Figure 7 example."""
    return MeshTopology((3, 3))


@pytest.fixture
def mesh8x8() -> MeshTopology:
    """An 8x8 mesh for the scaled-down experiment shapes."""
    return MeshTopology((8, 8))


@pytest.fixture
def torus4x4() -> TorusTopology:
    """A 4x4 torus for wraparound-specific tests."""
    return TorusTopology((4, 4))


@pytest.fixture
def proud_config() -> RouterConfig:
    """Router configuration with the 5-stage PROUD pipeline."""
    return RouterConfig(vcs_per_port=4, buffer_depth=5, pipeline=PROUD)


@pytest.fixture
def la_proud_config() -> RouterConfig:
    """Router configuration with the 4-stage LA-PROUD pipeline."""
    return RouterConfig(vcs_per_port=4, buffer_depth=5, pipeline=LA_PROUD)
