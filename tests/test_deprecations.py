"""Every legacy entry point warns once and points at its Study equivalent."""


import pytest

from repro.core.campaign import run_campaign
from repro.core.config import SimulationConfig
from repro.core.experiments import (
    run_cost_table,
    run_es_programming_example,
    run_lookahead_comparison,
    run_message_length_study,
    run_path_selection_study,
    run_table_storage_study,
)
from repro.core.sweep import run_load_sweep
from repro.exec.backend import SerialBackend
from repro.exec.cache import ResultCache

#: Small enough that the whole file stays fast; shared cache across cases.
TINY = SimulationConfig.tiny(measure_messages=60, warmup_messages=10)


@pytest.fixture(scope="module")
def backend(tmp_path_factory):
    return SerialBackend(cache=ResultCache(tmp_path_factory.mktemp("dep-cache")))


def assert_single_study_warning(record, study_name):
    messages = [str(w.message) for w in record if w.category is DeprecationWarning]
    assert len(messages) == 1, messages
    assert f"'{study_name}' Study" in messages[0]
    assert "run_study" in messages[0]


def test_run_load_sweep_warns(backend):
    with pytest.warns(DeprecationWarning) as record:
        run_load_sweep(TINY, [0.1], backend=backend)
    assert_single_study_warning(record, "sweep")


def test_run_lookahead_comparison_warns(backend):
    with pytest.warns(DeprecationWarning) as record:
        run_lookahead_comparison(
            TINY, traffic_patterns=("uniform",), loads=(0.1,), backend=backend
        )
    assert_single_study_warning(record, "figure5")


def test_run_message_length_study_warns(backend):
    with pytest.warns(DeprecationWarning) as record:
        run_message_length_study(
            TINY, message_lengths=(4,), load=0.1, backend=backend
        )
    assert_single_study_warning(record, "table3")


def test_run_path_selection_study_warns(backend):
    with pytest.warns(DeprecationWarning) as record:
        run_path_selection_study(
            TINY, selectors=("static-xy",), traffic_patterns=("uniform",),
            loads=(0.1,), backend=backend,
        )
    assert_single_study_warning(record, "figure6")


def test_run_table_storage_study_warns(backend):
    with pytest.warns(DeprecationWarning) as record:
        run_table_storage_study(
            TINY, traffic_patterns=("uniform",), loads=(0.1,),
            schemes={"economical": "economical"}, backend=backend,
        )
    assert_single_study_warning(record, "table4")


def test_run_cost_table_warns():
    with pytest.warns(DeprecationWarning) as record:
        run_cost_table(num_nodes=16, n_dims=2)
    assert_single_study_warning(record, "table5")


def test_run_es_programming_example_warns():
    with pytest.warns(DeprecationWarning) as record:
        run_es_programming_example()
    assert_single_study_warning(record, "figure7")


def test_run_campaign_warns_once(backend):
    # The campaign shim routes through the study path directly, so the
    # member experiments must NOT add their own nested warnings.
    with pytest.warns(DeprecationWarning) as record:
        run_campaign(
            TINY, loads_low_high=(0.1,), traffic_patterns=("uniform",),
            backend=backend,
        )
    assert_single_study_warning(record, "campaign")


def test_cli_experiment_and_campaign_wrappers_warn(capsys):
    # FutureWarning, not DeprecationWarning: the default warning filter
    # shows DeprecationWarning only in __main__, and the installed
    # console script calls main() from a wrapper module.
    from repro.cli import main

    with pytest.warns(FutureWarning, match="study table5"):
        main(["experiment", "table5"])
    capsys.readouterr()
    with pytest.warns(FutureWarning, match="study campaign"):
        main(["campaign", "--scale", "tiny", "--loads", "0.1",
              "--patterns", "uniform"])
    capsys.readouterr()
