"""Tests for the router configuration record."""

import pytest

from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD, PROUD


def test_defaults_match_the_paper_router():
    config = RouterConfig()
    assert config.vcs_per_port == 4
    assert config.buffer_depth == 5
    assert config.pipeline.name == "proud"
    assert config.link_delay == 1
    assert config.credit_delay == 1


def test_with_pipeline_creates_a_modified_copy():
    base = RouterConfig(pipeline=PROUD)
    lookahead = base.with_pipeline(LA_PROUD)
    assert lookahead.pipeline is LA_PROUD
    assert base.pipeline is PROUD
    assert lookahead.vcs_per_port == base.vcs_per_port


def test_validation():
    with pytest.raises(ValueError):
        RouterConfig(vcs_per_port=0)
    with pytest.raises(ValueError):
        RouterConfig(buffer_depth=0)
    with pytest.raises(ValueError):
        RouterConfig(link_delay=0)
    with pytest.raises(ValueError):
        RouterConfig(credit_delay=0)


def test_config_is_immutable():
    config = RouterConfig()
    with pytest.raises(Exception):
        config.vcs_per_port = 8  # type: ignore[misc]
