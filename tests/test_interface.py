"""Tests for the network interface (injection and ejection endpoint)."""

import pytest

from repro.network.interface import NetworkInterface
from repro.network.topology import LOCAL_PORT, MeshTopology
from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.stats.collector import StatsCollector
from repro.tables.economical import EconomicalStorageTable
from repro.traffic.message import Message


class RecordingRouter:
    """Stands in for the router: records injected flits and credits."""

    def __init__(self, config):
        self.config = config
        self.flits = []
        self.credits = []

    def receive_flit(self, port, vc, flit, arrival_cycle):
        self.flits.append((arrival_cycle, port, vc, flit))

    def receive_credit(self, port, vc, arrival_cycle):
        self.credits.append((arrival_cycle, port, vc))


def build_interface(pipeline=LA_PROUD, vcs=2, buffer_depth=5, link_mode="batched"):
    topology = MeshTopology((3, 3))
    table = EconomicalStorageTable(topology)
    routing = DuatoFullyAdaptiveRouting(topology, table)
    config = RouterConfig(
        vcs_per_port=vcs,
        buffer_depth=buffer_depth,
        pipeline=pipeline,
        link_mode=link_mode,
    )
    router = RecordingRouter(config)
    stats = StatsCollector()
    interface = NetworkInterface(
        node_id=4, router=router, routing=routing, stats=stats, source=None
    )
    return interface, router, stats, topology


def drive(interface, cycles, start=0):
    for cycle in range(start, start + cycles):
        interface.deliver(cycle)
        interface.evaluate(cycle)
    return start + cycles


def test_injects_one_flit_per_cycle():
    interface, router, stats, topology = build_interface()
    message = Message(source=4, destination=0, length=4, creation_cycle=0)
    interface.offer(message)
    drive(interface, 10)
    assert len(router.flits) == 4
    arrival_cycles = [cycle for cycle, _, _, _ in router.flits]
    assert arrival_cycles == sorted(arrival_cycles)
    # One flit per cycle over the injection channel.
    assert len(set(arrival_cycles)) == 4
    assert stats.created == 1


def test_injection_sets_injection_cycle_and_stats():
    interface, router, stats, topology = build_interface()
    message = Message(source=4, destination=0, length=2, creation_cycle=0)
    interface.offer(message)
    drive(interface, 5)
    assert message.injection_cycle is not None
    assert stats.created == 1


def test_lookahead_interface_precomputes_first_hop_decision():
    interface, router, stats, topology = build_interface(pipeline=LA_PROUD)
    interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    drive(interface, 5)
    header = router.flits[0][3]
    assert header.lookahead_node == 4
    assert header.lookahead_decision is not None


def test_non_lookahead_interface_leaves_header_plain():
    from repro.router.pipeline import PROUD

    interface, router, stats, topology = build_interface(pipeline=PROUD)
    interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    drive(interface, 5)
    header = router.flits[0][3]
    assert header.lookahead_node is None


def test_injection_respects_credits():
    interface, router, stats, topology = build_interface(vcs=2, buffer_depth=3)
    interface.offer(Message(source=4, destination=0, length=10, creation_cycle=0))
    drive(interface, 20)
    # Only buffer_depth flits can be outstanding on the chosen VC without
    # credit returns from the router.
    assert len(router.flits) == 3
    used_vc = router.flits[0][2]
    for cycle in (21, 22):
        interface.receive_credit(LOCAL_PORT, used_vc, cycle)
    drive(interface, 10, start=21)
    assert len(router.flits) == 5


def test_concurrent_messages_use_distinct_vcs():
    interface, router, stats, topology = build_interface(vcs=2)
    interface.offer(Message(source=4, destination=0, length=3, creation_cycle=0))
    interface.offer(Message(source=4, destination=8, length=3, creation_cycle=0))
    drive(interface, 3)
    vcs_used = {vc for _, _, vc, _ in router.flits}
    assert vcs_used == {0, 1}


def test_queue_length_reflects_backlog():
    interface, router, stats, topology = build_interface(vcs=1)
    for _ in range(3):
        interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    assert interface.queue_length == 3
    drive(interface, 1)
    assert interface.queue_length == 2


def test_ejection_records_delivery_and_returns_credit():
    interface, router, stats, topology = build_interface()
    message = Message(source=0, destination=4, length=2, creation_cycle=0)
    message.injection_cycle = 1
    flits = message.make_flits()
    interface.receive_flit(LOCAL_PORT, 1, flits[0], 10)
    interface.receive_flit(LOCAL_PORT, 1, flits[1], 11)
    drive(interface, 15)
    assert message.is_delivered
    assert message.ejection_cycle == 11
    assert stats.delivered == 1
    # One credit per consumed flit goes back to the router's local port.
    assert len(router.credits) == 2
    assert all(port == LOCAL_PORT for _, port, _ in router.credits)


def test_is_idle_accounts_for_queued_work():
    interface, router, stats, topology = build_interface()
    assert interface.is_idle()
    interface.offer(Message(source=4, destination=0, length=1, creation_cycle=0))
    assert not interface.is_idle()


# -- mailbox semantics pinned across both link-transport schedules ------------------
#
# These tests pin the reference mailbox behaviour the batched arrival
# lanes must preserve; every one runs under both ``link_mode`` settings
# so a lane shortcut can never satisfy it by construction.

LINK_MODES = ("reference", "batched")


def _single_flit(source, destination):
    """The one flit (head == tail) of a fresh single-flit message."""
    message = Message(source=source, destination=destination, length=1, creation_cycle=0)
    message.injection_cycle = 0
    return message.make_flits()[0]


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_fifo_drain_order_when_flits_share_an_arrival_cycle(link_mode):
    """Several flits due the same cycle drain in arrival (FIFO) order:
    the credits returned to the router's local port replay the exact
    receive order, even across interleaved virtual channels."""
    interface, router, stats, topology = build_interface(link_mode=link_mode)
    delivered = []
    original = stats.record_delivered
    stats.record_delivered = lambda message, cycle: (
        delivered.append(message), original(message, cycle)
    )
    flits = [_single_flit(0, 4), _single_flit(8, 4), _single_flit(2, 4)]
    for flit, vc in zip(flits, (0, 1, 0)):
        interface.receive_flit(LOCAL_PORT, vc, flit, 5)
    interface.deliver(5)
    assert stats.delivered == 3
    assert [message.source for message in delivered] == [0, 8, 2]
    # Credit per consumed flit, in FIFO order, stamped cycle + credit_delay.
    assert router.credits == [(6, LOCAL_PORT, 0), (6, LOCAL_PORT, 1), (6, LOCAL_PORT, 0)]


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_same_cycle_credit_unblocks_injection_that_cycle(link_mode):
    """A credit arriving at cycle c is applied by deliver(c) -- before
    evaluate(c) -- so a credit-blocked slot injects the same cycle, and
    an ejected flit consumed at c is recorded at c alongside it."""
    interface, router, stats, topology = build_interface(
        vcs=1, buffer_depth=2, link_mode=link_mode
    )
    interface.offer(Message(source=4, destination=0, length=3, creation_cycle=0))
    drive(interface, 3)  # cycles 0-2: two flits exhaust the credits, then block
    assert len(router.flits) == 2
    # Both a returning credit and an ejected flit land at cycle 4.
    interface.receive_credit(LOCAL_PORT, 0, 4)
    ejected = _single_flit(0, 4)
    interface.receive_flit(LOCAL_PORT, 0, ejected, 4)
    drive(interface, 3, start=3)  # cycles 3-5
    # The blocked third flit went out at cycle 4 (arrival 4 + link_delay).
    assert len(router.flits) == 3
    assert router.flits[2][0] == 4 + router.config.link_delay
    # The ejected message was delivered at cycle 4, credit stamped 4 + 1.
    assert ejected.message.ejection_cycle == 4
    assert stats.delivered == 1
    assert (5, LOCAL_PORT, 0) in router.credits


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_single_flit_messages_inject_and_eject(link_mode):
    """length-1 messages (head == tail) free their slot immediately on
    injection and complete delivery from one mailbox entry."""
    interface, router, stats, topology = build_interface(vcs=1, link_mode=link_mode)
    interface.offer(Message(source=4, destination=0, length=1, creation_cycle=0))
    interface.offer(Message(source=4, destination=8, length=1, creation_cycle=0))
    drive(interface, 3)
    # One flit per cycle on the single VC: the slot freed by the first
    # tail is reused by the second message the following cycle.
    assert len(router.flits) == 2
    assert [flit.is_head and flit.is_tail for _, _, _, flit in router.flits] == [True, True]
    assert router.flits[1][0] == router.flits[0][0] + 1
    # Ejection side: one entry delivers the whole message.
    ejected = _single_flit(0, 4)
    interface.receive_flit(LOCAL_PORT, 0, ejected, 10)
    interface.deliver(10)
    assert ejected.message.is_delivered
    assert ejected.message.ejection_cycle == 10
    assert len(router.credits) == 1


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_next_event_cycle_reports_true_earliest_lane_arrival(link_mode):
    """With no injectable work, next_event_cycle is the earliest pending
    mailbox arrival across both lanes -- and None when both are empty."""
    interface, router, stats, topology = build_interface(link_mode=link_mode)
    assert interface.next_event_cycle(0) is None
    interface.receive_flit(LOCAL_PORT, 0, _single_flit(0, 4), 9)
    assert interface.next_event_cycle(5) == 9
    interface.receive_credit(LOCAL_PORT, 0, 7)
    assert interface.next_event_cycle(5) == 7
    interface.deliver(7)  # consumes the credit; the flit is still pending
    assert interface.next_event_cycle(8) == 9
    interface.deliver(9)
    assert interface.next_event_cycle(10) is None


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_injectable_work_reports_the_current_cycle(link_mode):
    interface, router, stats, topology = build_interface(link_mode=link_mode)
    interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    assert interface.next_event_cycle(3) == 3


@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_out_of_order_external_pushes_are_head_blocked(link_mode):
    """Both schedules replay the mailbox-deque contract for external
    pushes with non-monotonic arrival cycles: a flit queued behind a
    later-due flit waits for it (head blocking), then both drain in FIFO
    order the cycle the head comes due."""
    interface, router, stats, topology = build_interface(link_mode=link_mode)
    late = _single_flit(0, 4)
    early = _single_flit(8, 4)
    interface.receive_flit(LOCAL_PORT, 0, late, 9)
    interface.receive_flit(LOCAL_PORT, 0, early, 7)
    interface.deliver(7)
    assert stats.delivered == 0  # blocked behind the cycle-9 head
    interface.deliver(8)
    assert stats.delivered == 0
    interface.deliver(9)
    assert stats.delivered == 2
    assert late.message.ejection_cycle == 9
    assert early.message.ejection_cycle == 9
    # One credit per consumed flit, both stamped cycle + credit_delay.
    assert [cycle for cycle, _, _ in router.credits] == [10, 10]
