"""Tests for the network interface (injection and ejection endpoint)."""

import pytest

from repro.network.interface import NetworkInterface
from repro.network.topology import LOCAL_PORT, MeshTopology
from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD
from repro.router.router import Router
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.selection.heuristics import StaticDimensionOrderSelector
from repro.stats.collector import StatsCollector
from repro.tables.economical import EconomicalStorageTable
from repro.traffic.message import Message


class RecordingRouter:
    """Stands in for the router: records injected flits and credits."""

    def __init__(self, config):
        self.config = config
        self.flits = []
        self.credits = []

    def receive_flit(self, port, vc, flit, arrival_cycle):
        self.flits.append((arrival_cycle, port, vc, flit))

    def receive_credit(self, port, vc, arrival_cycle):
        self.credits.append((arrival_cycle, port, vc))


def build_interface(pipeline=LA_PROUD, vcs=2, buffer_depth=5):
    topology = MeshTopology((3, 3))
    table = EconomicalStorageTable(topology)
    routing = DuatoFullyAdaptiveRouting(topology, table)
    config = RouterConfig(vcs_per_port=vcs, buffer_depth=buffer_depth, pipeline=pipeline)
    router = RecordingRouter(config)
    stats = StatsCollector()
    interface = NetworkInterface(
        node_id=4, router=router, routing=routing, stats=stats, source=None
    )
    return interface, router, stats, topology


def drive(interface, cycles, start=0):
    for cycle in range(start, start + cycles):
        interface.deliver(cycle)
        interface.evaluate(cycle)
    return start + cycles


def test_injects_one_flit_per_cycle():
    interface, router, stats, topology = build_interface()
    message = Message(source=4, destination=0, length=4, creation_cycle=0)
    interface.offer(message)
    drive(interface, 10)
    assert len(router.flits) == 4
    arrival_cycles = [cycle for cycle, _, _, _ in router.flits]
    assert arrival_cycles == sorted(arrival_cycles)
    # One flit per cycle over the injection channel.
    assert len(set(arrival_cycles)) == 4
    assert stats.created == 1


def test_injection_sets_injection_cycle_and_stats():
    interface, router, stats, topology = build_interface()
    message = Message(source=4, destination=0, length=2, creation_cycle=0)
    interface.offer(message)
    drive(interface, 5)
    assert message.injection_cycle is not None
    assert stats.created == 1


def test_lookahead_interface_precomputes_first_hop_decision():
    interface, router, stats, topology = build_interface(pipeline=LA_PROUD)
    interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    drive(interface, 5)
    header = router.flits[0][3]
    assert header.lookahead_node == 4
    assert header.lookahead_decision is not None


def test_non_lookahead_interface_leaves_header_plain():
    from repro.router.pipeline import PROUD

    interface, router, stats, topology = build_interface(pipeline=PROUD)
    interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    drive(interface, 5)
    header = router.flits[0][3]
    assert header.lookahead_node is None


def test_injection_respects_credits():
    interface, router, stats, topology = build_interface(vcs=2, buffer_depth=3)
    interface.offer(Message(source=4, destination=0, length=10, creation_cycle=0))
    drive(interface, 20)
    # Only buffer_depth flits can be outstanding on the chosen VC without
    # credit returns from the router.
    assert len(router.flits) == 3
    used_vc = router.flits[0][2]
    for cycle in (21, 22):
        interface.receive_credit(LOCAL_PORT, used_vc, cycle)
    drive(interface, 10, start=21)
    assert len(router.flits) == 5


def test_concurrent_messages_use_distinct_vcs():
    interface, router, stats, topology = build_interface(vcs=2)
    interface.offer(Message(source=4, destination=0, length=3, creation_cycle=0))
    interface.offer(Message(source=4, destination=8, length=3, creation_cycle=0))
    drive(interface, 3)
    vcs_used = {vc for _, _, vc, _ in router.flits}
    assert vcs_used == {0, 1}


def test_queue_length_reflects_backlog():
    interface, router, stats, topology = build_interface(vcs=1)
    for _ in range(3):
        interface.offer(Message(source=4, destination=0, length=2, creation_cycle=0))
    assert interface.queue_length == 3
    drive(interface, 1)
    assert interface.queue_length == 2


def test_ejection_records_delivery_and_returns_credit():
    interface, router, stats, topology = build_interface()
    message = Message(source=0, destination=4, length=2, creation_cycle=0)
    message.injection_cycle = 1
    flits = message.make_flits()
    interface.receive_flit(LOCAL_PORT, 1, flits[0], 10)
    interface.receive_flit(LOCAL_PORT, 1, flits[1], 11)
    drive(interface, 15)
    assert message.is_delivered
    assert message.ejection_cycle == 11
    assert stats.delivered == 1
    # One credit per consumed flit goes back to the router's local port.
    assert len(router.credits) == 2
    assert all(port == LOCAL_PORT for _, port, _ in router.credits)


def test_is_idle_accounts_for_queued_work():
    interface, router, stats, topology = build_interface()
    assert interface.is_idle()
    interface.offer(Message(source=4, destination=0, length=1, creation_cycle=0))
    assert not interface.is_idle()
