"""Tests for two-level meta-table (hierarchical) routing."""

import pytest

from repro.network.topology import MeshTopology, port_for
from repro.tables.full_table import FullRoutingTable
from repro.tables.mappings import BlockClusterMapping, RowClusterMapping
from repro.tables.meta_table import MetaRoutingTable

EAST = port_for(0, True)
WEST = port_for(0, False)
NORTH = port_for(1, True)
SOUTH = port_for(1, False)


@pytest.fixture
def mesh():
    return MeshTopology((8, 8))


@pytest.fixture
def block_table(mesh):
    return MetaRoutingTable(mesh, BlockClusterMapping(mesh, block_dims=(4, 4)))


@pytest.fixture
def row_table(mesh):
    return MetaRoutingTable(mesh, RowClusterMapping(mesh))


def test_entry_count(mesh, block_table, row_table):
    # Block mapping: 16 sub-cluster entries + 3 remote-cluster entries.
    assert block_table.entries_per_router() == 16 + 3
    # Row mapping: 8 sub-cluster entries + 7 remote-cluster entries.
    assert row_table.entries_per_router() == 8 + 7
    assert block_table.num_routers() == mesh.num_nodes


def test_meta_table_is_smaller_than_full_table(mesh, block_table, row_table):
    full = FullRoutingTable(mesh)
    assert block_table.entries_per_router() < full.entries_per_router()
    assert row_table.entries_per_router() < full.entries_per_router()


def test_intra_cluster_routing_keeps_full_adaptivity(mesh, block_table):
    # Both nodes in the south-west 4x4 block.
    source = mesh.node_id((0, 0))
    destination = mesh.node_id((3, 3))
    assert set(block_table.lookup(source, destination)) == {EAST, NORTH}


def test_remote_diagonal_cluster_keeps_both_directions(mesh, block_table):
    # From the south-west block toward the north-east block both +X and +Y
    # are productive for every member of the destination cluster.
    source = mesh.node_id((1, 1))
    destination = mesh.node_id((6, 6))
    assert set(block_table.lookup(source, destination)) == {EAST, NORTH}


def test_aligned_cluster_loses_adaptivity(mesh, block_table):
    # From the south-east block toward the north-east block (directly
    # north): the single cluster entry can only name +Y, which is the
    # adaptivity loss responsible for the paper's Table 4 congestion.
    source = mesh.node_id((5, 1))
    destination = mesh.node_id((6, 6))
    assert set(block_table.lookup(source, destination)) == {NORTH}
    assert set(mesh.minimal_ports(source, destination)) == {EAST, NORTH}


def test_row_mapping_degenerates_to_dimension_order(mesh, row_table):
    # Remote cluster (different row): only the Y direction is available.
    source = mesh.node_id((2, 1))
    destination = mesh.node_id((6, 5))
    assert set(row_table.lookup(source, destination)) == {NORTH}
    # Same row: only the X direction remains.
    same_row = mesh.node_id((6, 1))
    assert set(row_table.lookup(source, same_row)) == {EAST}


def test_lookup_ports_are_always_productive(mesh, block_table, row_table):
    for table in (block_table, row_table):
        for source in range(0, mesh.num_nodes, 3):
            for destination in range(0, mesh.num_nodes, 5):
                ports = table.lookup(source, destination)
                assert ports
                assert set(ports) <= set(mesh.minimal_ports(source, destination))


def test_direct_entry_accessors(mesh, block_table):
    node = mesh.node_id((1, 1))
    mapping = block_table.mapping
    own_cluster = mapping.cluster_of(node)
    for cluster in range(mapping.num_clusters):
        if cluster == own_cluster:
            continue
        assert block_table.cluster_entry(node, cluster)
    assert block_table.intra_entry(node, mapping.subcluster_of(node))
