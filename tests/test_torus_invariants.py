"""Runtime invariants of the dateline discipline and flow control on tori.

These step live torus simulations cycle by cycle and sweep the flat
core's state arrays between cycles:

* dateline classes -- an escape virtual channel of dimension ``d`` only
  ever buffers a header whose pre-traversal dateline mask selects that
  channel's class (class 0 before the dimension's dateline, class 1
  after it);
* credit conservation -- for every router-to-router channel, downstream
  occupancy, in-flight flits, in-flight credits and the upstream credit
  counter always sum to exactly the buffer depth;
* drain -- when the run completes, every created message was delivered,
  every buffer is empty and every credit is home.
"""

from collections import Counter

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator
from repro.network.topology import port_direction

TORI = {
    "torus2d-tornado": dict(
        mesh_dims=(4, 4), torus=True, routing="duato", num_escape_vcs=2,
        traffic="tornado", normalized_load=0.9,
    ),
    "torus3d-uniform": dict(
        mesh_dims=(3, 3, 3), topology="torus3d", routing="duato",
        num_escape_vcs=2, traffic="uniform", normalized_load=0.8,
    ),
}


def _build(point):
    # warmup_messages=0 makes every message measured, so the kernel's
    # stop condition doubles as a full-delivery check.
    config = SimulationConfig(
        message_length=4, warmup_messages=0, measure_messages=60, seed=11,
        **TORI[point],
    )
    return NetworkSimulator(config)


def _sweep_dateline_classes(sim):
    """No header sits on the wrong dateline class of an escape channel."""
    core = sim.core
    topology = sim.topology
    radix = topology.radix
    vcs = core._vcs
    for node in range(topology.num_nodes):
        for port in range(1, radix):
            dimension = port_direction(port)[0]
            class0, class1 = core._escape_pools[port]
            # The link just traversed to reach this input port: its
            # dateline bit (if any) was set in flight, so subtract it to
            # recover the mask the header carried at allocation time.
            upstream = topology.neighbor(node, port)
            crossed = topology.dateline_bits(
                upstream, topology.reverse_port(port)
            )
            for vc in sorted(set(class0) | set(class1)):
                g = (node * radix + port) * vcs + vc
                for flit in core._in_buf[g]:
                    if not flit.is_head:
                        continue
                    before = flit.dateline_mask & ~crossed
                    if (before >> dimension) & 1:
                        assert vc in class1, (node, port, vc, flit)
                    else:
                        assert vc in class0, (node, port, vc, flit)


def _sweep_credit_conservation(sim):
    """Every buffer slot is accounted for: held, in flight, or credited."""
    core = sim.core
    depth = sim.config.buffer_depth
    flits_to = Counter()
    for lane in core._flit_lanes:
        for dest, _flit in lane:
            flits_to[dest] += 1
    credits_to = Counter(entry for lane in core._credit_lanes for entry in lane)
    for go, g_down in enumerate(core._go_flit_dest):
        if g_down < 0:
            # Ejection channels settle through the interface lanes.
            continue
        total = (
            core._out_credits[go]
            + len(core._in_buf[g_down])
            + flits_to[g_down]
            + credits_to[go]
        )
        assert total == depth, (go, g_down, total)


@pytest.mark.parametrize("point", sorted(TORI))
def test_dateline_class_and_credit_invariants_hold_every_cycle(point):
    sim = _build(point)
    kernel = sim._kernel
    core = sim.core
    for _ in range(sim.default_max_cycles()):
        kernel.step()
        _sweep_dateline_classes(sim)
        _sweep_credit_conservation(sim)
        if sim.stats.all_measured_delivered():
            break
    assert sim.stats.all_measured_delivered(), "torus run did not drain"
    # Let trailing credits and ejections land, then every resource must
    # be back home: conservation end to end.
    for _ in range(4 * core._wheel_size):
        kernel.step()
        _sweep_credit_conservation(sim)
    summary = sim.stats.summary(kernel.clock.now)
    assert summary.created == summary.delivered == sim.config.total_messages
    assert core.is_idle()
    assert all(owner == -1 for owner in core._out_owner)
    assert all(credits == sim.config.buffer_depth for credits in core._out_credits)
    assert all(not buffer for buffer in core._in_buf)
