"""run_study(): execution semantics, stop policies, backends and caching."""

from typing import List, Sequence

import pytest

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.backend import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.exec.cache import ResultCache
from repro.scenario import Axis, Report, Scenario, StopPolicy, Study, Variant, run_study
from repro.scenario.builtin import (
    cost_table_study,
    es_programming_study,
    single_run_study,
    sweep_study,
)
from repro.stats.latency import LatencySummary

TINY = SimulationConfig.tiny(measure_messages=150, warmup_messages=20)


def scripted_result(config: SimulationConfig, saturated: bool) -> SimulationResult:
    summary = LatencySummary(
        created=10,
        delivered=10,
        measured=10,
        avg_total_latency=100.0 * config.normalized_load,
        avg_network_latency=90.0 * config.normalized_load,
        std_total_latency=1.0,
        max_total_latency=200.0,
        avg_hops=4.0,
        throughput=config.normalized_load,
        cycles=1000,
        completion_ratio=1.0,
        saturated=saturated,
    )
    return SimulationResult(
        config=config, summary=summary, zero_load_latency=20.0, cycles=1000
    )


class ScriptedBackend(ExecutionBackend):
    """Fabricates results instantly; saturates at/above a load threshold."""

    def __init__(self, wave_size: int = 1, saturation_load: float = 0.5, cache=None):
        super().__init__(cache=cache)
        self._wave_size = wave_size
        self.saturation_load = saturation_load
        self.executed: List[SimulationConfig] = []

    @property
    def wave_size(self) -> int:
        return self._wave_size

    def _execute(self, configs: Sequence[SimulationConfig], on_result):
        results = []
        for index, config in enumerate(configs):
            self.executed.append(config)
            result = scripted_result(
                config, saturated=config.normalized_load >= self.saturation_load
            )
            on_result(index, result)
            results.append(result)
        return results


# -- real simulations through the study path ---------------------------------------


def test_single_run_study_produces_one_summary_row():
    outcome = run_study(single_run_study(TINY))
    assert len(outcome.points) == 1
    assert len(outcome.rows) == 1
    assert outcome.rows[0]["traffic"] == "uniform"
    assert outcome.rows[0]["latency"] > 0


def test_analytic_studies_need_no_backend():
    outcome = run_study(cost_table_study(num_nodes=16, n_dims=2))
    assert outcome.points == ()
    assert any("economical" in str(row.values()) for row in outcome.rows)
    figure7 = run_study(es_programming_study())
    assert len(figure7.rows) == 9


def test_results_are_backend_independent_and_cached(tmp_path):
    study = sweep_study(TINY, loads=(0.05, 0.15), stop_at_saturation=False)
    serial = run_study(study, backend=SerialBackend())
    cache = ResultCache(tmp_path)
    with ProcessPoolBackend(workers=2, cache=cache) as backend:
        pooled = run_study(study, backend=backend)
        assert backend.simulations_run == 2
    assert pooled.results == serial.results
    # Second run is served entirely from the cache.
    cached_backend = SerialBackend(cache=ResultCache(tmp_path))
    rerun = run_study(study, backend=cached_backend)
    assert cached_backend.simulations_run == 0
    assert rerun.results == serial.results


def test_explicit_scenarios_run_through_the_batch_path():
    study = Study(
        name="listed",
        base=TINY.to_dict(),
        scenarios=(
            Scenario(name="slow", overrides={"normalized_load": 0.05}),
            Scenario(name="fast", overrides={"normalized_load": 0.2}),
        ),
        report=Report(reporter="summary"),
    )
    outcome = run_study(study)
    assert [row["load"] for row in outcome.rows] == [0.05, 0.2]


def test_suite_members_share_one_backend(tmp_path):
    member = sweep_study(TINY, loads=(0.05,), stop_at_saturation=False)
    suite = Study(
        name="mini-suite",
        kind="suite",
        base=TINY.to_dict(),
        members=(
            member,
            cost_table_study(num_nodes=16, n_dims=2),
        ),
    )
    backend = SerialBackend(cache=ResultCache(tmp_path))
    outcome = run_study(suite, backend=backend)
    assert backend.simulations_run == 1
    assert outcome.member("sweep").rows
    assert outcome.member("table5").rows
    with pytest.raises(KeyError):
        outcome.member("nope")
    markdown = outcome.to_markdown()
    assert markdown.startswith("## Reproduction campaign")


# -- stop-policy semantics (scripted backend, no real simulations) -----------------


def test_sweep_stops_at_first_saturated_load():
    study = sweep_study(TINY, loads=(0.1, 0.6, 0.2, 0.3))
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(study, backend=backend)
    # The saturated point is kept, later loads are never simulated.
    assert [p.config.normalized_load for p in outcome.points] == [0.1, 0.6]
    assert [c.normalized_load for c in backend.executed] == [0.1, 0.6]
    assert outcome.results[-1].saturated
    assert outcome.rows[-1]["latency"] == "Sat."


def test_sweep_wave_may_simulate_past_saturation_but_rows_truncate():
    study = sweep_study(TINY, loads=(0.1, 0.6, 0.2, 0.3))
    backend = ScriptedBackend(wave_size=4, saturation_load=0.5)
    outcome = run_study(study, backend=backend)
    # The whole wave was simulated (and would be cached)...
    assert len(backend.executed) == 4
    # ...but the reported curve still truncates at the saturated load.
    assert [p.config.normalized_load for p in outcome.points] == [0.1, 0.6]


def _reference_stop_study(loads) -> Study:
    return Study(
        name="ref-stop",
        base=TINY.to_dict(),
        axes=(
            Axis(field="traffic", values=("uniform", "transpose")),
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="router",
                variants=(
                    Variant(name="det", overrides={"routing": "dimension-order"}),
                    Variant(name="ref", overrides={"routing": "duato"}),
                ),
            ),
        ),
        stop=StopPolicy(mode="reference", reference="ref"),
        report=Report(reporter="reference-relative", options={"reference": "ref"}),
    )


def test_reference_stop_breaks_per_outer_group():
    study = _reference_stop_study(loads=(0.1, 0.6, 0.2))
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(study, backend=backend)
    per_traffic = {}
    for point in outcome.points:
        per_traffic.setdefault(point.coord("traffic"), []).append(
            (point.coord("load"), point.variant)
        )
    # Each traffic pattern walks its own loads, records the saturating
    # batch, and never simulates the load after it.
    expected = [(0.1, "det"), (0.1, "ref"), (0.6, "det"), (0.6, "ref")]
    assert per_traffic == {"uniform": expected, "transpose": expected}
    # Rows exist for both loads of both patterns.
    assert [(row["traffic"], row["load"]) for row in outcome.rows] == [
        ("uniform", 0.1), ("uniform", 0.6),
        ("transpose", 0.1), ("transpose", 0.6),
    ]


def test_reference_stop_requires_the_reference_variant():
    # Caught at spec construction, before any simulation is burned.
    with pytest.raises(ValueError) as excinfo:
        Study(
            name="missing-ref",
            base=TINY.to_dict(),
            axes=(
                Axis(field="normalized_load", values=(0.1,), label="load"),
                Axis(name="router", variants=(Variant(name="only", overrides={}),)),
            ),
            stop=StopPolicy(mode="reference", reference="ghost"),
            report=Report(reporter="summary"),
        )
    assert "ghost" in str(excinfo.value)


def test_reference_stop_rejects_misordered_axes():
    # The variant axis must come after the stop (last value) axis.
    with pytest.raises(ValueError) as excinfo:
        Study(
            name="misordered",
            base=TINY.to_dict(),
            axes=(
                Axis(
                    name="router",
                    variants=(Variant(name="ref", overrides={}),),
                ),
                Axis(field="normalized_load", values=(0.1,), label="load"),
            ),
            stop=StopPolicy(mode="reference", reference="ref"),
            report=Report(reporter="summary"),
        )
    assert "reorder the axes" in str(excinfo.value)


def test_any_stop_with_variant_axis_keeps_whole_batches():
    study = Study(
        name="batched",
        base=TINY.to_dict(),
        axes=(
            Axis(field="normalized_load", values=(0.1, 0.6, 0.2), label="load"),
            Axis(
                name="seed",
                variants=(
                    Variant(name="s1", overrides={"seed": 1}),
                    Variant(name="s2", overrides={"seed": 2}),
                ),
            ),
        ),
        stop=StopPolicy(mode="any"),
        report=Report(reporter="variant-grid"),
    )
    outcome = run_study(study, backend=ScriptedBackend(saturation_load=0.5))
    # Both variants of the saturated load are recorded; load 0.2 is not.
    assert [(p.coord("load"), p.variant) for p in outcome.points] == [
        (0.1, "s1"), (0.1, "s2"), (0.6, "s1"), (0.6, "s2"),
    ]


# -- refine mode: knee-seeking bisection -------------------------------------------


def _refine_study(loads, tolerance=0.1, max_points=0, reporter="confidence"):
    return Study(
        name="refine",
        base=TINY.to_dict(),
        axes=(Axis(field="normalized_load", values=tuple(loads), label="load"),),
        stop=StopPolicy(mode="refine", tolerance=tolerance, max_points=max_points),
        report=Report(reporter=reporter),
    )


def test_refine_bisects_toward_the_saturation_knee():
    # Saturation at 0.5: the bracket walks (0.1, 0.9) -> (0.1, 0.5)
    # -> (0.3, 0.5) -> (0.4, 0.5), which is within tolerance 0.1.
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(_refine_study(loads=(0.1, 0.9)), backend=backend)
    assert [c.normalized_load for c in backend.executed] == [0.1, 0.9, 0.5, 0.3, 0.4]
    assert [p.config.normalized_load for p in outcome.points] == [
        0.1, 0.9, 0.5, 0.3, 0.4,
    ]
    # The knee is bracketed: the largest unsaturated and smallest
    # saturated executed loads are within tolerance.
    unsat = max(p for p, r in zip([0.1, 0.9, 0.5, 0.3, 0.4], outcome.results)
                if not r.saturated)
    sat = min(p for p, r in zip([0.1, 0.9, 0.5, 0.3, 0.4], outcome.results)
              if r.saturated)
    assert sat - unsat <= 0.1


def test_refine_respects_the_point_budget():
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(
        _refine_study(loads=(0.1, 0.9), tolerance=0.001, max_points=3),
        backend=backend,
    )
    # 2 seed-grid points + 1 bisection = the budget of 3.
    assert len(outcome.points) == 3
    assert [c.normalized_load for c in backend.executed] == [0.1, 0.9, 0.5]


def test_refine_without_a_saturated_point_returns_the_grid():
    backend = ScriptedBackend(saturation_load=5.0)
    outcome = run_study(_refine_study(loads=(0.1, 0.3)), backend=backend)
    assert [p.config.normalized_load for p in outcome.points] == [0.1, 0.3]


def test_refine_with_everything_saturated_returns_the_grid():
    backend = ScriptedBackend(saturation_load=0.0)
    outcome = run_study(_refine_study(loads=(0.1, 0.3)), backend=backend)
    assert [p.config.normalized_load for p in outcome.points] == [0.1, 0.3]


def test_refine_rows_are_identical_across_wave_sizes():
    serial_like = ScriptedBackend(wave_size=1, saturation_load=0.5)
    wide = ScriptedBackend(wave_size=8, saturation_load=0.5)
    serial_rows = run_study(_refine_study(loads=(0.1, 0.9)), backend=serial_like).rows
    wide_rows = run_study(_refine_study(loads=(0.1, 0.9)), backend=wide).rows
    assert serial_rows == wide_rows


def test_refine_with_variant_axis_and_reference():
    # The reference variant alone decides saturation for each bisected load.
    study = Study(
        name="refine-ref",
        base=TINY.to_dict(),
        axes=(
            Axis(field="normalized_load", values=(0.1, 0.9), label="load"),
            Axis(
                name="router",
                variants=(
                    Variant(name="det", overrides={"routing": "dimension-order"}),
                    Variant(name="ref", overrides={"routing": "duato"}),
                ),
            ),
        ),
        stop=StopPolicy(mode="refine", reference="ref", tolerance=0.25),
        report=Report(reporter="variant-grid"),
    )
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(study, backend=backend)
    # Each bisected load carries the whole variant batch.
    assert [(p.coord("load"), p.variant) for p in outcome.points] == [
        (0.1, "det"), (0.1, "ref"), (0.9, "det"), (0.9, "ref"),
        (0.5, "det"), (0.5, "ref"), (0.3, "det"), (0.3, "ref"),
    ]


def test_refined_points_look_like_expanded_ones():
    backend = ScriptedBackend(saturation_load=0.5)
    outcome = run_study(_refine_study(loads=(0.1, 0.9)), backend=backend)
    midpoint = outcome.points[2]
    assert midpoint.coord("load") == 0.5
    assert midpoint.scenario.name == "load=0.5"
    assert midpoint.config.normalized_load == 0.5


def test_reference_stop_uses_speculative_waves():
    study = _reference_stop_study(loads=(0.1, 0.6, 0.2))
    serial_like = ScriptedBackend(wave_size=1, saturation_load=0.5)
    wide = ScriptedBackend(wave_size=4, saturation_load=0.5)
    serial_outcome = run_study(study, backend=serial_like)
    wide_outcome = run_study(study, backend=wide)
    # The wide backend simulates whole waves (possibly past saturation)...
    assert len(wide.executed) > 0
    # ...in fewer run_configs round-trips than the serial walk, while the
    # reported rows stay byte-identical.
    assert serial_outcome.rows == wide_outcome.rows
    assert [p.scenario.name for p in serial_outcome.points] == [
        p.scenario.name for p in wide_outcome.points
    ]


def test_stop_policy_with_only_variant_axes_names_the_study():
    with pytest.raises(ValueError) as excinfo:
        Study(
            name="variants-only",
            base=TINY.to_dict(),
            axes=(
                Axis(name="router", variants=(Variant(name="a", overrides={}),)),
            ),
            stop=StopPolicy(mode="any"),
            report=Report(reporter="summary"),
        )
    message = str(excinfo.value)
    assert "variants-only" in message
    assert "value axis" in message
