"""End-to-end integration tests of the full simulator.

These tests run complete (tiny) simulations and check system-level
properties: message conservation, latency calibration against the analytic
contention-free value, the look-ahead benefit, the equivalence of
full-table and economical-storage routing, reproducibility and forward
progress under load (deadlock freedom).
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator, build_routing, build_table, build_topology


def run(config):
    return NetworkSimulator(config).run()


@pytest.fixture(scope="module")
def low_load_result():
    return run(SimulationConfig.tiny(normalized_load=0.1, seed=5))


def test_all_messages_generated_and_delivered(low_load_result):
    summary = low_load_result.summary
    assert summary.created == SimulationConfig.tiny().total_messages
    assert summary.delivered == summary.created
    assert summary.measured == SimulationConfig.tiny().measure_messages
    assert summary.completion_ratio == pytest.approx(1.0)
    assert not low_load_result.saturated


def test_low_load_latency_is_close_to_zero_load_estimate(low_load_result):
    latency = low_load_result.latency
    zero_load = low_load_result.zero_load_latency
    assert zero_load < latency < 1.5 * zero_load


def test_average_hops_matches_average_distance(low_load_result):
    topology = build_topology(low_load_result.config)
    # The header is forwarded once per router it traverses, including the
    # ejection through the destination router's local port.
    expected = topology.average_distance() + 1.0
    assert low_load_result.summary.avg_hops == pytest.approx(expected, rel=0.1)


def test_lookahead_reduces_latency_at_low_load():
    base = SimulationConfig.tiny(normalized_load=0.15, seed=7, routing="duato")
    with_la = run(base.variant(pipeline="la-proud"))
    without_la = run(base.variant(pipeline="proud"))
    assert with_la.latency < without_la.latency
    # One pipeline stage per hop: the gap should be substantial for the
    # 4-flit messages of the tiny configuration (paper: 12-15% for 20 flits).
    improvement = (without_la.latency - with_la.latency) / without_la.latency
    assert improvement > 0.05


def test_full_table_and_economical_storage_are_equivalent():
    base = SimulationConfig.tiny(normalized_load=0.3, seed=11, routing="duato")
    full = run(base.variant(table="full"))
    economical = run(base.variant(table="economical"))
    # The paper's claim: ES loses no routing flexibility, so the two runs
    # make identical decisions and produce identical statistics.
    assert economical.latency == pytest.approx(full.latency)
    assert economical.summary.avg_hops == pytest.approx(full.summary.avg_hops)


def test_adaptive_routing_beats_deterministic_on_transpose_at_load():
    base = SimulationConfig(
        mesh_dims=(4, 4),
        message_length=4,
        warmup_messages=50,
        measure_messages=400,
        traffic="transpose",
        normalized_load=0.55,
        seed=3,
    )
    adaptive = run(base.variant(routing="duato"))
    deterministic = run(base.variant(routing="dimension-order"))
    assert adaptive.latency < deterministic.latency


def test_same_seed_is_reproducible_and_different_seed_differs():
    base = SimulationConfig.tiny(normalized_load=0.2)
    first = run(base.variant(seed=21))
    second = run(base.variant(seed=21))
    other = run(base.variant(seed=22))
    assert first.latency == pytest.approx(second.latency)
    assert first.summary.avg_hops == pytest.approx(second.summary.avg_hops)
    assert first.latency != pytest.approx(other.latency)


def test_forward_progress_under_heavy_load():
    # Well beyond saturation, and with a cycle budget too small to drain the
    # backlog, the network must still keep delivering messages (deadlock
    # freedom) while the run is flagged as saturated.
    config = SimulationConfig.tiny(
        normalized_load=2.0, measure_messages=1500, seed=9, max_cycles=450
    )
    result = run(config)
    assert result.summary.delivered > 200
    assert result.saturated


def test_every_selector_runs_and_delivers():
    for selector in ("static-xy", "min-mux", "lfu", "lru", "max-credit", "random", "first-free"):
        config = SimulationConfig.tiny(normalized_load=0.25, selector=selector, seed=13)
        result = run(config)
        assert result.summary.completion_ratio == pytest.approx(1.0), selector


def test_turn_model_routing_end_to_end():
    config = SimulationConfig.tiny(normalized_load=0.2, routing="north-last", seed=17)
    result = run(config)
    assert result.summary.completion_ratio == pytest.approx(1.0)


def test_interval_table_routing_end_to_end():
    config = SimulationConfig.tiny(
        normalized_load=0.15, routing="duato", table="interval", seed=19
    )
    result = run(config)
    assert result.summary.completion_ratio == pytest.approx(1.0)


def test_meta_table_configurations_run(mesh_dims=(4, 4)):
    for table in ("meta-row", "meta-block"):
        config = SimulationConfig.tiny(normalized_load=0.2, table=table, seed=23)
        result = run(config)
        assert result.summary.completion_ratio == pytest.approx(1.0), table


def test_bernoulli_injection_supported():
    config = SimulationConfig.tiny(normalized_load=0.2, injection="bernoulli", seed=29)
    result = run(config)
    assert result.summary.completion_ratio == pytest.approx(1.0)


def test_bernoulli_rate_beyond_one_warns_and_records_effective_rate():
    # One-flit messages at normalized load 8.0 ask for more than one
    # message per node per cycle -- impossible for a slotted Bernoulli
    # process.  The clamp must be loud and visible in the result, not a
    # silent distortion of the load axis.
    config = SimulationConfig.tiny(
        normalized_load=8.0,
        injection="bernoulli",
        message_length=1,
        measure_messages=100,
        warmup_messages=10,
        max_cycles=300,
        seed=31,
    )
    with pytest.warns(RuntimeWarning, match="Bernoulli limit"):
        simulator = NetworkSimulator(config)
    assert simulator.effective_message_rate == 1.0
    result = simulator.run()
    assert result.effective_message_rate == 1.0


def test_effective_rate_is_recorded_without_clamping():
    import warnings

    config = SimulationConfig.tiny(normalized_load=0.2, injection="bernoulli", seed=29)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no clamp warning expected
        simulator = NetworkSimulator(config)
    result = simulator.run()
    assert 0.0 < result.effective_message_rate < 1.0
    assert result.effective_message_rate == simulator.effective_message_rate

    exponential = NetworkSimulator(SimulationConfig.tiny(seed=29)).run()
    assert exponential.effective_message_rate > 0.0


def test_builders_reject_unknown_names():
    config = SimulationConfig.tiny()
    topology = build_topology(config)
    with pytest.raises(ValueError):
        build_table(config.variant(table="gigantic"), topology)
    with pytest.raises(ValueError):
        build_routing(config.variant(routing="chaotic"), topology, build_table(config, topology))
    with pytest.raises(ValueError):
        NetworkSimulator(config.variant(injection="bursty"))


def test_torus_with_wrap_refusing_routing_fails_at_config_construction():
    # Regression for the old late-failure path: torus=True with a routing
    # that cannot be made deadlock free on wraparound links used to pass
    # config validation and only blow up at NetworkSimulator wiring time.
    # The cross-field check must now raise at construction, with a
    # pointed routing x topology x escape-VC message.
    with pytest.raises(ValueError, match="2 escape VCs"):
        SimulationConfig.tiny(torus=True, routing="duato", num_escape_vcs=1)
    with pytest.raises(ValueError, match="turn-model"):
        SimulationConfig.tiny(torus=True, routing="north-last")
    with pytest.raises(ValueError, match="dateline"):
        SimulationConfig.tiny(torus=True, routing="dimension-order", vcs_per_port=1)
    # The safe combinations construct (and wire) cleanly.
    config = SimulationConfig.tiny(torus=True, routing="duato", num_escape_vcs=2)
    NetworkSimulator(config)
    config3d = SimulationConfig.tiny(
        mesh_dims=(3, 3, 3), topology="torus3d", num_escape_vcs=2
    )
    NetworkSimulator(config3d)
