"""Tests for messages and flits."""

import pytest

from repro.traffic.message import FlitType, Message


def make_message(length=4):
    return Message(source=0, destination=5, length=length, creation_cycle=10)


def test_message_validation():
    with pytest.raises(ValueError):
        Message(source=0, destination=1, length=0, creation_cycle=0)
    with pytest.raises(ValueError):
        Message(source=-1, destination=1, length=1, creation_cycle=0)


def test_message_ids_are_unique():
    a = make_message()
    b = make_message()
    assert a.message_id != b.message_id


def test_make_flits_structure():
    message = make_message(length=5)
    flits = message.make_flits()
    assert len(flits) == 5
    assert flits[0].flit_type is FlitType.HEAD
    assert all(flit.flit_type is FlitType.BODY for flit in flits[1:-1])
    assert flits[-1].flit_type is FlitType.TAIL
    assert [flit.sequence for flit in flits] == list(range(5))


def test_single_flit_message_is_head_and_tail():
    message = make_message(length=1)
    (flit,) = message.make_flits()
    assert flit.flit_type is FlitType.HEAD_TAIL
    assert flit.is_head and flit.is_tail


def test_two_flit_message_has_no_body():
    flits = make_message(length=2).make_flits()
    assert [flit.flit_type for flit in flits] == [FlitType.HEAD, FlitType.TAIL]


def test_flit_properties_delegate_to_message():
    message = make_message()
    flit = message.make_flits()[0]
    assert flit.source == message.source
    assert flit.destination == message.destination


def test_latency_accounting():
    message = make_message()
    message.injection_cycle = 15
    message.ejection_cycle = 40
    assert message.total_latency == 30
    assert message.network_latency == 25
    assert message.is_delivered


def test_latency_before_delivery_raises():
    message = make_message()
    with pytest.raises(ValueError):
        _ = message.total_latency
    with pytest.raises(ValueError):
        _ = message.network_latency


def test_flit_type_classification():
    assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
    assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
    assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail
    assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail


def test_flit_repr_mentions_message_and_sequence():
    message = make_message()
    flit = message.make_flits()[1]
    assert str(message.message_id) in repr(flit)
    assert "seq=1" in repr(flit)
