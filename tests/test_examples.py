"""Tests that the example scripts are importable and runnable.

The three study scripts are executed in their ``--quick`` smoke-test mode
as subprocesses (they exercise the public API end to end); the remaining
examples are compile-checked so a syntax or import regression cannot slip
through unnoticed.
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
QUICK_EXAMPLES = [
    "lookahead_study.py",
    "path_selection_study.py",
    "table_storage_study.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


def test_examples_directory_has_at_least_three_scenarios():
    assert len(ALL_EXAMPLES) >= 4
    assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES])
def test_every_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.slow
@pytest.mark.parametrize("name", QUICK_EXAMPLES)
def test_study_examples_run_in_quick_mode(name):
    completed = run_example(name, "--quick")
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


@pytest.mark.slow
def test_lookahead_study_output_mentions_the_router_variants():
    completed = run_example("lookahead_study.py", "--quick")
    assert completed.returncode == 0, completed.stderr
    assert "la_adapt_latency" in completed.stdout
    assert "pct_improvement" in completed.stdout


@pytest.mark.slow
def test_table_storage_study_prints_cost_and_programming_tables():
    completed = run_example("table_storage_study.py", "--quick")
    assert completed.returncode == 0, completed.stderr
    assert "economical-storage" in completed.stdout
    assert "north_last_ports" in completed.stdout
