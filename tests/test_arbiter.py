"""Tests for the round-robin arbiter."""

import pytest

from repro.router.arbiter import RoundRobinArbiter


def test_single_requester_is_granted():
    arbiter = RoundRobinArbiter(4)
    assert arbiter.grant([2]) == 2


def test_no_request_returns_none():
    arbiter = RoundRobinArbiter(4)
    assert arbiter.grant([]) is None


def test_priority_rotates_after_each_grant():
    arbiter = RoundRobinArbiter(3)
    grants = [arbiter.grant([0, 1, 2]) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_priority_skips_non_requesting_slots():
    arbiter = RoundRobinArbiter(4)
    assert arbiter.grant([1, 3]) == 1
    assert arbiter.grant([1, 3]) == 3
    assert arbiter.grant([1, 3]) == 1


def test_fairness_over_many_rounds():
    arbiter = RoundRobinArbiter(4)
    counts = {slot: 0 for slot in range(4)}
    for _ in range(400):
        counts[arbiter.grant([0, 1, 2, 3])] += 1
    assert all(count == 100 for count in counts.values())


def test_no_starvation_with_persistent_competitor():
    arbiter = RoundRobinArbiter(2)
    grants = [arbiter.grant([0, 1]) for _ in range(10)]
    assert grants.count(0) == grants.count(1) == 5


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        RoundRobinArbiter(0)


def test_repr_shows_state():
    arbiter = RoundRobinArbiter(3)
    arbiter.grant([2])
    assert "next=0" in repr(arbiter)
