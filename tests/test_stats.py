"""Tests for statistics collection, latency summaries and saturation."""

import math

import pytest

from repro.stats.collector import StatsCollector
from repro.stats.latency import LatencySummary, RunningStats
from repro.stats.saturation import SaturationPolicy, is_saturated
from repro.traffic.message import Message


def delivered_message(creation, injection, ejection, length=4, hops=3):
    message = Message(source=0, destination=1, length=length, creation_cycle=creation)
    message.injection_cycle = injection
    message.ejection_cycle = ejection
    message.hops = hops
    return message


# -- RunningStats -----------------------------------------------------------------


def test_running_stats_moments():
    stats = RunningStats()
    for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        stats.add(value)
    assert stats.count == 8
    assert stats.mean == pytest.approx(5.0)
    assert stats.std == pytest.approx(math.sqrt(32 / 7))
    assert stats.minimum == 2.0
    assert stats.maximum == 9.0


def test_running_stats_empty_defaults():
    stats = RunningStats()
    assert stats.mean == 0.0
    assert stats.std == 0.0
    assert stats.minimum == 0.0
    assert stats.maximum == 0.0


def test_running_stats_percentiles_require_samples():
    without = RunningStats()
    without.add(1.0)
    with pytest.raises(ValueError):
        without.percentile(0.5)
    with_samples = RunningStats(keep_samples=True)
    for value in range(1, 101):
        with_samples.add(float(value))
    assert with_samples.percentile(0.0) == 1.0
    assert with_samples.percentile(1.0) == 100.0
    assert with_samples.percentile(0.5) == pytest.approx(50.0, abs=1.0)
    with pytest.raises(ValueError):
        with_samples.percentile(1.5)


# -- StatsCollector ----------------------------------------------------------------


def test_warmup_messages_are_excluded():
    collector = StatsCollector(warmup_messages=2, measure_messages=2, num_nodes=4)
    messages = [delivered_message(0, 1, 10 + index) for index in range(4)]
    for message in messages:
        collector.record_created(message)
    for message in messages:
        collector.record_delivered(message, message.ejection_cycle)
    assert collector.created == 4
    assert collector.delivered == 4
    assert collector.measured_delivered == 2
    summary = collector.summary(cycles=100)
    # Only the last two messages (latencies 12 and 13) are measured.
    assert summary.avg_total_latency == pytest.approx(12.5)


def test_messages_beyond_measure_target_are_ignored():
    collector = StatsCollector(warmup_messages=0, measure_messages=2)
    messages = [delivered_message(0, 1, 5 + index) for index in range(4)]
    for message in messages:
        collector.record_created(message)
    for message in messages:
        collector.record_delivered(message, message.ejection_cycle)
    assert collector.measured_delivered == 2
    assert collector.all_measured_delivered()


def test_delivered_messages_are_pruned_from_the_order_map():
    """The creation-order map must not grow without bound: delivery pops
    the entry, so memory stays proportional to in-flight messages."""
    collector = StatsCollector(warmup_messages=1, measure_messages=10)
    messages = [delivered_message(0, 1, 10 + index) for index in range(5)]
    for message in messages:
        collector.record_created(message)
    assert len(collector._order) == 5
    for message in messages:
        collector.record_delivered(message, message.ejection_cycle)
    assert len(collector._order) == 0
    assert collector.measured_delivered == 4  # one warm-up excluded


def test_unknown_messages_do_not_crash_the_collector():
    collector = StatsCollector(warmup_messages=0, measure_messages=10)
    stray = delivered_message(0, 1, 9)
    collector.record_delivered(stray, 9)
    assert collector.delivered == 1
    assert collector.measured_delivered == 0


def test_summary_reports_latency_network_latency_and_hops():
    collector = StatsCollector(warmup_messages=0, measure_messages=3, num_nodes=2)
    messages = [
        delivered_message(0, 2, 20, hops=4),
        delivered_message(0, 4, 30, hops=6),
        delivered_message(10, 12, 40, hops=8),
    ]
    for message in messages:
        collector.record_created(message)
        collector.record_delivered(message, message.ejection_cycle)
    summary = collector.summary(cycles=50)
    assert summary.avg_total_latency == pytest.approx((20 + 30 + 30) / 3)
    assert summary.avg_network_latency == pytest.approx((18 + 26 + 28) / 3)
    assert summary.avg_hops == pytest.approx(6.0)
    assert summary.measured == 3
    assert summary.completion_ratio == pytest.approx(1.0)
    assert summary.throughput > 0


def test_completion_ratio_reflects_missing_messages():
    collector = StatsCollector(warmup_messages=0, measure_messages=4)
    message = delivered_message(0, 1, 9)
    collector.record_created(message)
    collector.record_delivered(message, 9)
    summary = collector.summary(cycles=100)
    assert summary.completion_ratio == pytest.approx(0.25)
    assert not collector.all_measured_delivered()


def test_summary_as_dict_round_trip():
    summary = StatsCollector(warmup_messages=0, measure_messages=1).summary(cycles=10)
    data = summary.as_dict()
    assert data["cycles"] == 10
    assert set(data) >= {"avg_total_latency", "throughput", "saturated"}


# -- saturation policy ---------------------------------------------------------------


def make_summary(latency=50.0, completion=1.0, measured=100, created=None, delivered=None):
    return LatencySummary(
        created=measured if created is None else created,
        delivered=measured if delivered is None else delivered,
        measured=measured,
        avg_total_latency=latency,
        avg_network_latency=latency - 2,
        std_total_latency=1.0,
        max_total_latency=latency * 2,
        avg_hops=5.0,
        throughput=0.1,
        cycles=1000,
        completion_ratio=completion,
        saturated=False,
    )


def test_low_completion_is_saturated():
    assert is_saturated(make_summary(completion=0.5), zero_load_latency=40.0)


def test_exploded_latency_is_saturated():
    policy = SaturationPolicy(latency_multiplier=10.0)
    assert is_saturated(make_summary(latency=800.0), zero_load_latency=40.0, policy=policy)
    assert not is_saturated(make_summary(latency=200.0), zero_load_latency=40.0, policy=policy)


def test_zero_measured_with_undelivered_backlog_is_saturated():
    """Messages were created but are stuck in flight: the network could
    not deliver the offered traffic, which is genuine saturation."""
    summary = make_summary(measured=0, completion=0.0, created=50, delivered=3)
    assert is_saturated(summary, zero_load_latency=40.0)


def test_zero_measured_without_backlog_is_insufficient_not_saturated():
    """Regression: a short-budget near-zero-load run where warm-up never
    completed used to be reported as "Sat.".  Nothing is stuck -- there
    is simply no measurement -- so it must not be flagged, and a warning
    must point at the insufficient cycle budget."""
    summary = make_summary(measured=0, completion=0.0, created=8, delivered=8)
    with pytest.warns(RuntimeWarning, match="insufficient"):
        assert not is_saturated(summary, zero_load_latency=40.0)


def test_zero_measured_short_budget_run_end_to_end():
    """The full-pipeline version of the regression: a tiny cycle budget
    at near-zero load measures nothing, and the result must come back
    not-saturated with an "n/a" label instead of "Sat."."""
    import warnings as warnings_module

    from repro.core.config import SimulationConfig
    from repro.core.simulator import NetworkSimulator

    config = SimulationConfig.tiny(
        normalized_load=0.005,
        warmup_messages=50,
        measure_messages=100,
        drain_factor=0.001,  # strangle the budget so warm-up cannot finish
    )
    with warnings_module.catch_warnings():
        warnings_module.simplefilter("ignore", RuntimeWarning)
        result = NetworkSimulator(config).run()
    assert result.summary.measured == 0
    assert result.summary.created == result.summary.delivered
    assert not result.summary.saturated
    assert result.latency_label() == "n/a"


def test_healthy_run_is_not_saturated():
    assert not is_saturated(make_summary(latency=60.0), zero_load_latency=40.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        SaturationPolicy(min_completion_ratio=0.0)
    with pytest.raises(ValueError):
        SaturationPolicy(latency_multiplier=1.0)
