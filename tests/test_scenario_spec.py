"""Scenario/Study specs: JSON round-trip and deterministic expansion."""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.registry import STUDIES
from repro.scenario import Axis, Report, Scenario, StopPolicy, Study, Variant, load_study
from repro.scenario.builtin import (
    campaign_study,
    lookahead_study,
    spec_path,
    sweep_study,
)


def sample_study():
    return Study(
        name="sample",
        title="A sample study",
        base=SimulationConfig.tiny().to_dict(),
        axes=(
            Axis(field="traffic", values=("uniform", "transpose")),
            Axis(field="normalized_load", values=(0.1, 0.2), label="load"),
            Axis(
                name="router",
                variants=(
                    Variant(name="a", overrides={"pipeline": "proud"}),
                    Variant(name="b", overrides={"pipeline": "la-proud"}),
                ),
            ),
        ),
        stop=StopPolicy(mode="reference", reference="b"),
        report=Report(reporter="reference-relative", options={"reference": "b"}),
    )


# -- JSON round-trip ---------------------------------------------------------------


def test_scenario_json_round_trip():
    scenario = Scenario(name="one", overrides={"traffic": "transpose", "seed": 7})
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_study_json_round_trip_is_exact():
    study = sample_study()
    assert Study.from_json(study.to_json()) == study


def test_every_builtin_study_round_trips():
    for name in STUDIES.names():
        study = STUDIES.get(name)()
        assert Study.from_json(study.to_json()) == study, name


def test_shipped_spec_files_match_the_registered_builders():
    # The JSON files next to repro/scenario/builtin are the serialized
    # default-parameter builders; this keeps them from rotting.
    for name in STUDIES.names():
        built = STUDIES.get(name)()
        shipped = Study.from_json(spec_path(name).read_text(encoding="utf-8"))
        assert shipped == built, name


def test_spec_files_are_plain_json():
    data = json.loads(spec_path("figure5").read_text(encoding="utf-8"))
    assert data["study"] == "figure5"
    assert data["kind"] == "grid"
    assert data["stop"] == {"mode": "reference", "reference": "la-adapt"}


def test_load_study_reads_files_and_builtin_names(tmp_path):
    study = sample_study()
    path = tmp_path / "sample.json"
    path.write_text(study.to_json(), encoding="utf-8")
    assert load_study(path) == study
    assert load_study("figure5") == STUDIES.get("figure5")()
    with pytest.raises(ValueError) as excinfo:
        load_study("no-such-study")
    assert "figure5" in str(excinfo.value)


# -- expansion ---------------------------------------------------------------------


def test_expansion_is_row_major_and_deterministic():
    study = sample_study()
    points = study.expand()
    names = [point.scenario.name for point in points]
    assert names == [
        "traffic=uniform/load=0.1/router=a",
        "traffic=uniform/load=0.1/router=b",
        "traffic=uniform/load=0.2/router=a",
        "traffic=uniform/load=0.2/router=b",
        "traffic=transpose/load=0.1/router=a",
        "traffic=transpose/load=0.1/router=b",
        "traffic=transpose/load=0.2/router=a",
        "traffic=transpose/load=0.2/router=b",
    ]
    assert names == [point.scenario.name for point in study.expand()]
    first = points[0]
    assert first.config.traffic == "uniform"
    assert first.config.normalized_load == 0.1
    assert first.config.pipeline == "proud"
    assert first.coord("load") == 0.1
    assert first.variant == "a"


def test_expansion_after_json_round_trip_matches():
    study = sample_study()
    reloaded = Study.from_json(study.to_json())
    assert [p.config for p in reloaded.expand()] == [p.config for p in study.expand()]


def test_bare_grid_study_expands_to_the_base_config():
    study = Study(name="solo", base=SimulationConfig.tiny().to_dict())
    points = study.expand()
    assert len(points) == 1
    assert points[0].config == SimulationConfig.tiny()


def test_explicit_scenarios_expand_in_order():
    study = Study(
        name="listed",
        base=SimulationConfig.tiny().to_dict(),
        scenarios=(
            Scenario(name="hot", overrides={"traffic": "hotspot"}),
            Scenario(name="cold", overrides={"normalized_load": 0.05}),
        ),
    )
    points = study.expand()
    assert [p.scenario.name for p in points] == ["hot", "cold"]
    assert points[0].config.traffic == "hotspot"
    assert points[1].config.normalized_load == 0.05


def test_mesh_dims_overrides_are_canonicalized_to_tuples():
    study = Study(
        name="dims",
        base=SimulationConfig.tiny().to_dict(),
        scenarios=(Scenario(name="big", overrides={"mesh_dims": [8, 8]}),),
    )
    config = study.expand()[0].config
    assert config.mesh_dims == (8, 8)
    assert hash(config) == hash(config.variant())


def test_expansion_validates_component_names_eagerly():
    study = Study(
        name="broken",
        base=SimulationConfig.tiny().to_dict(),
        axes=(Axis(field="traffic", values=("uniform", "not-a-pattern")),),
    )
    with pytest.raises(ValueError) as excinfo:
        study.expand()
    assert "not-a-pattern" in str(excinfo.value)


# -- spec validation ---------------------------------------------------------------


def test_unknown_study_kind_rejected():
    with pytest.raises(ValueError):
        Study(name="x", kind="mystery")


def test_analytic_study_needs_a_name():
    with pytest.raises(ValueError):
        Study(name="x", kind="analytic")


def test_suite_needs_members():
    with pytest.raises(ValueError):
        Study(name="x", kind="suite")


def test_stop_policy_validation():
    with pytest.raises(ValueError):
        StopPolicy(mode="sometimes")
    with pytest.raises(ValueError):
        StopPolicy(mode="reference")
    with pytest.raises(ValueError):
        # A stop policy needs a value axis to walk.
        Study(name="x", base={}, stop=StopPolicy(mode="any"))


def test_campaign_suite_contains_the_six_experiments():
    suite = campaign_study(SimulationConfig.tiny())
    assert [member.name for member in suite.members] == [
        "figure5", "table3", "figure6", "table4", "table5", "figure7",
    ]


def test_lookahead_study_appends_missing_reference():
    study = lookahead_study(SimulationConfig.tiny(), variants=("no-la-det",))
    variant_axis = study.axes[-1]
    assert [v.name for v in variant_axis.variants] == ["no-la-det", "la-adapt"]


def test_sweep_study_without_stop_runs_every_load():
    study = sweep_study(SimulationConfig.tiny(), loads=(0.1, 0.2), stop_at_saturation=False)
    assert study.stop is None
    assert len(study.expand()) == 2


def test_all_plugins_collects_suite_members_deduplicated():
    member_a = Study(name="a", base={}, plugins=("p1.py", "shared.py"))
    member_b = Study(name="b", base={}, plugins=("shared.py", "mod.dotted"))
    suite = Study(name="s", kind="suite", members=(member_a, member_b),
                  plugins=("top.py",))
    assert suite.all_plugins() == ("top.py", "p1.py", "shared.py", "mod.dotted")


def test_refine_stop_policy_round_trips():
    study = Study(
        name="refine-rt",
        base={},
        axes=(Axis(field="normalized_load", values=(0.1, 0.9), label="load"),),
        stop=StopPolicy(mode="refine", tolerance=0.05, max_points=12),
        report=Report(reporter="sweep"),
    )
    loaded = Study.from_json(study.to_json())
    assert loaded == study
    assert loaded.stop.tolerance == 0.05
    assert loaded.stop.max_points == 12


def test_refine_stop_policy_validation():
    with pytest.raises(ValueError):
        StopPolicy(mode="refine")  # needs a positive tolerance
    with pytest.raises(ValueError):
        StopPolicy(mode="refine", tolerance=-0.1)
    with pytest.raises(ValueError):
        StopPolicy(mode="refine", tolerance=0.1, max_points=-1)
    # Non-refine modes reject refine-only knobs.
    with pytest.raises(ValueError):
        StopPolicy(mode="any", tolerance=0.1)
    with pytest.raises(ValueError):
        StopPolicy(mode="any", max_points=5)


def test_refine_needs_a_numeric_stop_axis():
    with pytest.raises(ValueError) as excinfo:
        Study(
            name="refine-strings",
            base={},
            axes=(Axis(field="traffic", values=("uniform", "transpose")),),
            stop=StopPolicy(mode="refine", tolerance=0.1),
            report=Report(reporter="summary"),
        )
    assert "refine-strings" in str(excinfo.value)
