"""Tests for full-table routing."""

import pytest

from repro.network.topology import LOCAL_PORT, MeshTopology, port_for
from repro.routing.providers import dimension_order_provider
from repro.tables.base import TableProgrammingError
from repro.tables.full_table import FullRoutingTable


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


def test_default_programming_is_minimal_adaptive(mesh):
    table = FullRoutingTable(mesh)
    origin = mesh.node_id((1, 1))
    assert set(table.lookup(origin, mesh.node_id((3, 3)))) == {
        port_for(0, True),
        port_for(1, True),
    }
    assert table.lookup(origin, origin) == (LOCAL_PORT,)


def test_storage_cost_is_one_entry_per_destination(mesh):
    table = FullRoutingTable(mesh)
    assert table.entries_per_router() == 16
    assert table.num_routers() == 16
    assert table.total_entries() == 256


def test_lookup_ports_are_always_productive(mesh):
    table = FullRoutingTable(mesh)
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            ports = table.lookup(source, destination)
            assert ports
            assert set(ports) <= set(mesh.minimal_ports(source, destination))


def test_custom_provider_programming(mesh):
    table = FullRoutingTable(mesh, provider=dimension_order_provider(mesh))
    origin = mesh.node_id((0, 0))
    assert table.lookup(origin, mesh.node_id((3, 3))) == (port_for(0, True),)


def test_reprogram_single_entry(mesh):
    table = FullRoutingTable(mesh)
    origin = mesh.node_id((0, 0))
    destination = mesh.node_id((3, 3))
    table.reprogram(origin, destination, (port_for(1, True),))
    assert table.lookup(origin, destination) == (port_for(1, True),)


def test_reprogram_validation(mesh):
    table = FullRoutingTable(mesh)
    with pytest.raises(TableProgrammingError):
        table.reprogram(0, 5, ())
    with pytest.raises(TableProgrammingError):
        table.reprogram(0, 5, (99,))
    with pytest.raises(TableProgrammingError):
        table.reprogram(3, 3, (port_for(0, True),))
