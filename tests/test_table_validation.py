"""Tests for routing-relation validation (connectivity, minimality, deadlock)."""

import pytest

from repro.network.topology import MeshTopology, Torus3D, TorusTopology
from repro.routing.providers import (
    dimension_order_provider,
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)
from repro.tables.economical import EconomicalStorageTable
from repro.tables.full_table import FullRoutingTable
from repro.tables.interval import IntervalRoutingTable
from repro.tables.mappings import BlockClusterMapping, RowClusterMapping
from repro.tables.meta_table import MetaRoutingTable
from repro.tables.validation import (
    channel_dependency_graph,
    check_connectivity,
    check_minimality,
    escape_subfunction_is_deadlock_free,
    is_deadlock_free,
)


@pytest.fixture(scope="module")
def mesh():
    return MeshTopology((4, 4))


def test_all_shipped_tables_are_connected(mesh):
    tables = [
        FullRoutingTable(mesh),
        EconomicalStorageTable(mesh),
        MetaRoutingTable(mesh, RowClusterMapping(mesh)),
        MetaRoutingTable(mesh, BlockClusterMapping(mesh, block_dims=(2, 2))),
        IntervalRoutingTable(mesh),
    ]
    for table in tables:
        assert check_connectivity(table, mesh) == [], type(table).__name__


def test_minimal_tables_pass_minimality(mesh):
    for table in (FullRoutingTable(mesh), EconomicalStorageTable(mesh)):
        assert check_minimality(table, mesh) == []


def test_interval_routing_is_not_minimal(mesh):
    # Tree-based interval routing trades path quality for table size; the
    # paper lists non-minimal paths as one of its drawbacks.
    assert check_minimality(IntervalRoutingTable(mesh), mesh) != []


def test_broken_relation_is_reported(mesh):
    def broken(current, destination):
        # Always send messages East, even off the edge of the mesh.
        return (1,)

    problems = check_connectivity(broken, mesh)
    assert problems
    assert any("off the network" in problem for problem in problems)


def test_dimension_order_routing_is_deadlock_free(mesh):
    assert is_deadlock_free(mesh, dimension_order_provider(mesh))
    assert escape_subfunction_is_deadlock_free(mesh)


def test_turn_models_are_deadlock_free(mesh):
    assert is_deadlock_free(mesh, north_last_provider(mesh))
    assert is_deadlock_free(mesh, west_first_provider(mesh))
    assert is_deadlock_free(mesh, negative_first_provider(mesh))


def test_unrestricted_adaptive_routing_has_cyclic_dependencies(mesh):
    # This is the motivation for Duato's escape channels: fully adaptive
    # minimal routing on a single channel class is NOT deadlock free.
    assert not is_deadlock_free(mesh, minimal_adaptive_provider(mesh))


def test_interval_tree_routing_is_deadlock_free(mesh):
    assert is_deadlock_free(mesh, IntervalRoutingTable(mesh))


@pytest.mark.parametrize(
    "torus", [TorusTopology((4, 4)), Torus3D((4, 4, 4))], ids=["2d", "3d"]
)
def test_torus_without_datelines_is_cyclic(torus):
    # The wraparound rings close a dependency cycle in every dimension
    # (radix >= 4, so minimal routes chain two channels of a ring);
    # dimension-order routing alone cannot break it.
    assert not escape_subfunction_is_deadlock_free(torus, dateline_classes=False)
    assert not is_deadlock_free(torus, dimension_order_provider(torus))


@pytest.mark.parametrize(
    "torus", [TorusTopology((4, 4)), Torus3D((4, 4, 4))], ids=["2d", "3d"]
)
def test_torus_with_datelines_is_deadlock_free(torus):
    # The two-class dateline discipline breaks every wraparound ring's
    # cycle; the dispatch picks it automatically because the topology
    # wraps.
    assert escape_subfunction_is_deadlock_free(torus)
    assert is_deadlock_free(
        torus, dimension_order_provider(torus), dateline_classes=True
    )


def test_mesh_dispatch_stays_single_class(mesh):
    # On a mesh both disciplines agree -- the dateline mask never sets a
    # bit, so the class-aware graph is two disconnected copies of the
    # single-class one.
    assert escape_subfunction_is_deadlock_free(mesh)
    assert escape_subfunction_is_deadlock_free(mesh, dateline_classes=True)


def test_dependency_graph_structure(mesh):
    graph = channel_dependency_graph(mesh, dimension_order_provider(mesh))
    # One graph node per unidirectional network channel.
    assert graph.number_of_nodes() == len(list(mesh.links()))
    # XY routing never turns from Y back into X, so no (node, Y-port) ->
    # (neighbor, X-port) edges exist.
    for (node, port), (neighbor, next_port) in graph.edges():
        holding_dimension = (port - 1) // 2
        next_dimension = (next_port - 1) // 2
        assert next_dimension >= holding_dimension
