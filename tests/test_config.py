"""Tests for the simulation configuration records."""

import pytest

from repro.core.config import PaperDefaults, SimulationConfig


def test_paper_defaults_match_table2():
    assert PaperDefaults.MESH_DIMS == (16, 16)
    assert PaperDefaults.MESSAGE_LENGTH == 20
    assert PaperDefaults.VCS_PER_PORT == 4
    assert PaperDefaults.BUFFER_PER_CHANNEL == 20
    assert PaperDefaults.LINK_DELAY == 1
    assert PaperDefaults.PROUD_LATENCY == 5
    assert PaperDefaults.LA_PROUD_LATENCY == 4
    assert PaperDefaults.WARMUP_MESSAGES == 10_000
    assert PaperDefaults.MEASURE_MESSAGES == 400_000
    assert set(PaperDefaults.TRAFFIC_PATTERNS) == {
        "uniform",
        "transpose",
        "bit-reversal",
        "shuffle",
    }


def test_paper_config_uses_paper_scale():
    config = SimulationConfig.paper()
    assert config.mesh_dims == (16, 16)
    assert config.num_nodes == 256
    assert config.message_length == 20
    assert config.warmup_messages == 10_000
    assert config.measure_messages == 400_000
    assert config.total_messages == 410_000


def test_small_and_tiny_presets_are_smaller():
    small = SimulationConfig.small()
    tiny = SimulationConfig.tiny()
    assert small.num_nodes < SimulationConfig.paper().num_nodes
    assert tiny.num_nodes < small.num_nodes
    assert tiny.total_messages < small.total_messages


def test_variant_overrides_selected_fields_only():
    base = SimulationConfig.small()
    changed = base.variant(traffic="transpose", normalized_load=0.4)
    assert changed.traffic == "transpose"
    assert changed.normalized_load == 0.4
    assert changed.mesh_dims == base.mesh_dims
    assert base.traffic == "uniform"


def test_constructor_overrides_apply_to_presets():
    config = SimulationConfig.small(selector="lru", pipeline="proud")
    assert config.selector == "lru"
    assert config.pipeline == "proud"


def test_config_is_hashable_and_frozen():
    config = SimulationConfig.tiny()
    with pytest.raises(Exception):
        config.traffic = "transpose"  # type: ignore[misc]
    assert hash(config) == hash(SimulationConfig.tiny())


def test_list_valued_sequence_fields_normalize_to_tuples():
    # JSON-sourced overrides (study specs) arrive as lists; the config
    # must still hash and compare equal to its tuple-built twin.
    config = SimulationConfig(
        mesh_dims=[3, 3, 3], topology="torus3d", routing="duato",
        num_escape_vcs=2, link_delays=[1, 1, 2],
    )
    twin = SimulationConfig(
        mesh_dims=(3, 3, 3), topology="torus3d", routing="duato",
        num_escape_vcs=2, link_delays=(1, 1, 2),
    )
    assert config.mesh_dims == (3, 3, 3)
    assert config.link_delays == (1, 1, 2)
    assert config == twin
    assert hash(config) == hash(twin)


def test_validation_errors():
    with pytest.raises(ValueError):
        SimulationConfig(mesh_dims=())
    with pytest.raises(ValueError):
        SimulationConfig(normalized_load=-0.1)
    with pytest.raises(ValueError):
        SimulationConfig(message_length=0)
    with pytest.raises(ValueError):
        SimulationConfig(measure_messages=0)


def test_config_to_dict_round_trip():
    config = SimulationConfig.small(traffic="transpose", normalized_load=0.35, seed=9)
    data = config.to_dict()
    assert data["mesh_dims"] == [8, 8]
    assert SimulationConfig.from_dict(data) == config


def test_config_from_dict_ignores_unknown_keys_and_defaults_missing_ones():
    rebuilt = SimulationConfig.from_dict(
        {"mesh_dims": [4, 4], "traffic": "transpose", "future_field": "x"}
    )
    assert rebuilt.mesh_dims == (4, 4)
    assert rebuilt.traffic == "transpose"
    assert rebuilt.seed == SimulationConfig().seed


def test_config_to_dict_is_json_stable():
    import json

    first = json.dumps(SimulationConfig.tiny().to_dict(), sort_keys=True)
    second = json.dumps(SimulationConfig.tiny().to_dict(), sort_keys=True)
    assert first == second
