"""Tests for the content-addressed result cache and the cache key."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.cache import ResultCache, config_cache_key
from repro.stats.latency import LatencySummary


def make_result(config=None, latency=42.0):
    config = config if config is not None else SimulationConfig.tiny()
    summary = LatencySummary(
        created=120,
        delivered=120,
        measured=100,
        avg_total_latency=latency,
        avg_network_latency=latency - 3.0,
        std_total_latency=4.5,
        max_total_latency=latency * 2,
        avg_hops=5.25,
        throughput=0.11,
        cycles=4000,
        completion_ratio=1.0,
        saturated=False,
    )
    return SimulationResult(
        config=config, summary=summary, zero_load_latency=29.5, cycles=4000
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_miss_on_empty_cache(cache):
    assert cache.get(SimulationConfig.tiny()) is None
    assert cache.misses == 1 and cache.hits == 0


def test_put_then_get_round_trips_the_result(cache):
    config = SimulationConfig.tiny()
    result = make_result(config)
    path = cache.put(config, result)
    assert path.exists()
    loaded = cache.get(config)
    assert loaded == result
    assert cache.hits == 1 and cache.stores == 1
    assert len(cache) == 1


def test_different_configs_use_different_slots(cache):
    config = SimulationConfig.tiny()
    other = config.variant(normalized_load=0.35)
    assert config_cache_key(config) != config_cache_key(other)
    cache.put(config, make_result(config))
    assert cache.get(other) is None


def test_equal_configs_share_a_key():
    assert config_cache_key(SimulationConfig.tiny()) == config_cache_key(
        SimulationConfig.tiny()
    )


def test_numerically_equal_int_and_float_fields_share_a_key():
    as_int = SimulationConfig.tiny(normalized_load=1, drain_factor=4)
    as_float = SimulationConfig.tiny(normalized_load=1.0, drain_factor=4.0)
    assert as_int == as_float
    assert config_cache_key(as_int) == config_cache_key(as_float)


def test_clear_sweeps_stale_tmp_files_only(cache):
    """Only *stale* temp files are swept: a fresh one belongs to a live
    concurrent writer whose ``os.replace`` must not be broken."""
    from repro.exec.cache import STALE_TMP_SECONDS

    config = SimulationConfig.tiny()
    cache.put(config, make_result(config))
    stale = cache.cache_dir / "deadbeef0123.tmp"
    stale.write_text("half-written by a crashed run", encoding="utf-8")
    ancient = time.time() - STALE_TMP_SECONDS - 60
    os.utime(stale, (ancient, ancient))
    fresh = cache.cache_dir / "cafebabe4567.tmp"
    fresh.write_text("being written right now", encoding="utf-8")
    assert cache.clear() == 1
    assert not stale.exists()
    assert fresh.exists()


def test_concurrent_clear_does_not_break_a_live_writer(cache):
    """Regression for the clear()/put() race: a clear() running while
    another process is between ``mkstemp`` and ``os.replace`` used to
    sweep the live temp file, so the writer died with
    ``FileNotFoundError``.  Simulate the race by sweeping every ``*.tmp``
    (the old clear() behaviour) from inside the first ``os.replace``; the
    write must succeed by rewriting once."""
    config = SimulationConfig.tiny()
    result = make_result(config)
    real_replace = os.replace
    raced = {"count": 0}

    def racing_replace(src, dst):
        if raced["count"] == 0:
            raced["count"] += 1
            for tmp in cache.cache_dir.glob("*.tmp"):
                tmp.unlink()  # what the unguarded sweep used to do
        return real_replace(src, dst)

    os.replace = racing_replace
    try:
        path = cache.put(config, result)
    finally:
        os.replace = real_replace
    assert raced["count"] == 1
    assert path.exists()
    assert cache.get(config) == result
    assert cache.stores == 1


def test_put_raises_if_the_temp_file_is_swept_twice(cache):
    """The rewrite is attempted exactly once; a pathological environment
    that keeps deleting the temp file surfaces the error instead of
    looping."""
    config = SimulationConfig.tiny()
    real_replace = os.replace
    calls = {"count": 0}

    def always_racing_replace(src, dst):
        calls["count"] += 1
        for tmp in cache.cache_dir.glob("*.tmp"):
            tmp.unlink()
        return real_replace(src, dst)

    os.replace = always_racing_replace
    try:
        with pytest.raises(FileNotFoundError):
            cache.put(config, make_result(config))
    finally:
        os.replace = real_replace
    assert calls["count"] == 2
    assert cache.stores == 0
    assert not list(cache.cache_dir.glob("*.tmp"))


def test_corrupted_file_is_a_miss_and_is_discarded(cache):
    config = SimulationConfig.tiny()
    cache.put(config, make_result(config))
    cache.path_for(config).write_text("{ not json", encoding="utf-8")
    assert cache.get(config) is None
    assert not cache.path_for(config).exists()
    # The slot is usable again afterwards.
    cache.put(config, make_result(config))
    assert cache.get(config) is not None


def test_schema_mismatch_is_a_miss(cache):
    config = SimulationConfig.tiny()
    cache.path_for(config).write_text(json.dumps({"config": {}}), encoding="utf-8")
    assert cache.get(config) is None


def test_stale_entry_for_another_config_is_a_miss(cache):
    config = SimulationConfig.tiny()
    other = config.variant(seed=999)
    # Simulate a corrupted/renamed entry: other config's result under our key.
    cache.path_for(config).write_text(make_result(other).to_json(), encoding="utf-8")
    assert cache.get(config) is None


def test_clear_removes_every_entry(cache):
    config = SimulationConfig.tiny()
    cache.put(config, make_result(config))
    cache.put(config.variant(seed=2), make_result(config.variant(seed=2)))
    assert cache.clear() == 2
    assert len(cache) == 0


def test_cache_key_changes_with_the_package_version(monkeypatch):
    before = config_cache_key(SimulationConfig.tiny())
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert config_cache_key(SimulationConfig.tiny()) != before


def test_cache_key_is_stable_across_processes():
    """The key must not depend on PYTHONHASHSEED (unlike builtin hash())."""
    config = SimulationConfig.tiny(normalized_load=0.25, seed=7)
    local_key = config_cache_key(config)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    script = (
        "from repro.core.config import SimulationConfig\n"
        "from repro.exec.cache import config_cache_key\n"
        "print(config_cache_key(SimulationConfig.tiny(normalized_load=0.25, seed=7)))\n"
    )
    for hash_seed in ("0", "12345"):
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        env["PYTHONHASHSEED"] = hash_seed
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == local_key


# -- format v3+: component provenance in the key -------------------------------------


def test_cache_format_is_v9():
    # v3 added component provenance; v4 added the switch_mode config
    # field and its schedule provenance; v5 added link_mode; v6 added
    # core_mode and its schedule provenance; v7 added the closed-loop
    # workload fields, the drain result block and the flat core default;
    # v8 added the topology and link_delays fields (torus/torus3d
    # support); v9 added replications/seed_stride, the streaming p50/p99
    # summary fields and the replicates result block (see
    # CACHE_FORMAT_VERSION docs).
    from repro.exec.cache import CACHE_FORMAT_VERSION

    assert CACHE_FORMAT_VERSION == 9


def test_switch_mode_feeds_the_key():
    # The two switch schedules are bit-identical, but their results must
    # still live in distinct cache slots so pinned-mode studies never
    # serve each other's entries.
    batched = SimulationConfig.tiny()
    reference = batched.variant(switch_mode="reference")
    assert config_cache_key(batched) != config_cache_key(reference)


def test_link_mode_feeds_the_key():
    # Same contract for the link-transport schedules: bit-identical
    # results, distinct slots -- and the two mode axes never alias each
    # other (switching one field must not collide with switching the
    # other).
    batched = SimulationConfig.tiny()
    link_reference = batched.variant(link_mode="reference")
    switch_reference = batched.variant(switch_mode="reference")
    keys = {
        config_cache_key(batched),
        config_cache_key(link_reference),
        config_cache_key(switch_reference),
        config_cache_key(batched.variant(switch_mode="reference", link_mode="reference")),
    }
    assert len(keys) == 4


def test_core_mode_feeds_the_key():
    # The two core schedules are bit-identical, but their results live in
    # distinct slots, and the core axis never aliases the other two mode
    # axes.
    base = SimulationConfig.tiny()
    keys = {
        config_cache_key(base),
        config_cache_key(base.variant(core_mode="objects")),
        config_cache_key(base.variant(switch_mode="reference")),
        config_cache_key(base.variant(link_mode="reference")),
        config_cache_key(base.variant(core_mode="objects", switch_mode="reference")),
    }
    assert len(keys) == 5


def _v5_style_key(config):
    """The pre-v6 key derivation: no ``core_mode`` field or provenance."""
    import hashlib

    from repro.registry import config_component_provenance

    config_dict = {
        key: value for key, value in config.to_dict().items() if key != "core_mode"
    }
    components = {
        key: value
        for key, value in config_component_provenance(config).items()
        if key != "core_mode"
    }
    payload = json.dumps(
        {
            "format": 5,
            "version": repro.__version__,
            "config": config_dict,
            "components": components,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_v5_format_entries_are_ignored_not_misread(cache):
    # An entry stored under the v5 key derivation (before configurations
    # had a core_mode) must be invisible to the v6 code: a clean miss,
    # never a misread -- the point is re-simulated under the v6 key.
    config = SimulationConfig.tiny()
    stale = make_result(config, latency=888.0)
    old_path = cache.cache_dir / f"{_v5_style_key(config)}.json"
    old_path.write_text(stale.to_json(), encoding="utf-8")
    assert cache.get(config) is None
    assert cache.misses == 1
    assert old_path.exists()  # never looked at, merely orphaned
    fresh = make_result(config, latency=30.0)
    cache.put(config, fresh)
    assert cache.get(config) == fresh
    assert config_cache_key(config) != _v5_style_key(config)


def _v2_style_key(config):
    """The pre-v3 key derivation: no component provenance in the payload."""
    import hashlib

    payload = json.dumps(
        {"format": 2, "version": repro.__version__, "config": config.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_old_format_entries_are_ignored_not_misread(cache):
    # A valid result stored under the old (v2) key derivation must be
    # invisible to the new code: the lookup is a miss (so the point is
    # re-simulated and stored under the v3 key), never a misread.
    config = SimulationConfig.tiny()
    stale = make_result(config, latency=999.0)
    old_path = cache.cache_dir / f"{_v2_style_key(config)}.json"
    old_path.write_text(stale.to_json(), encoding="utf-8")
    assert cache.get(config) is None
    assert cache.misses == 1
    # The stale file is simply never looked at (different file name).
    assert old_path.exists()
    fresh = make_result(config, latency=31.0)
    cache.put(config, fresh)
    assert cache.get(config) == fresh
    assert config_cache_key(config) != _v2_style_key(config)


def _v4_style_key(config):
    """The pre-v5 key derivation: no ``link_mode`` field or provenance."""
    import hashlib

    from repro.registry import config_component_provenance

    config_dict = {
        key: value for key, value in config.to_dict().items() if key != "link_mode"
    }
    components = {
        key: value
        for key, value in config_component_provenance(config).items()
        if key != "link_mode"
    }
    payload = json.dumps(
        {
            "format": 4,
            "version": repro.__version__,
            "config": config_dict,
            "components": components,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def test_v4_format_entries_are_ignored_not_misread(cache):
    # An entry stored under the v4 key derivation (before configurations
    # had a link_mode) must be invisible to the v5 code: a clean miss,
    # never a misread -- the point is re-simulated under the v5 key.
    config = SimulationConfig.tiny()
    stale = make_result(config, latency=777.0)
    old_path = cache.cache_dir / f"{_v4_style_key(config)}.json"
    old_path.write_text(stale.to_json(), encoding="utf-8")
    assert cache.get(config) is None
    assert cache.misses == 1
    assert old_path.exists()  # never looked at, merely orphaned
    fresh = make_result(config, latency=30.0)
    cache.put(config, fresh)
    assert cache.get(config) == fresh
    assert config_cache_key(config) != _v4_style_key(config)


def test_component_provenance_feeds_the_key():
    from repro import registry
    from repro.traffic.patterns import TrafficPattern

    config_uniform = SimulationConfig.tiny()

    class FirstImpl(TrafficPattern):
        """Plugin pattern, first implementation."""

        name = "golden-spike"

        def destination(self, source, rng):
            return None

    class SecondImpl(TrafficPattern):
        """Plugin pattern, different implementation under the same name."""

        name = "golden-spike"

        def destination(self, source, rng):
            return 0

    registry.register("traffic", obj=FirstImpl)
    try:
        config = SimulationConfig.tiny(traffic="golden-spike")
        first_key = config_cache_key(config)
        registry.register("traffic", obj=SecondImpl, replace=True)
        second_key = config_cache_key(config)
    finally:
        registry.TRAFFIC_PATTERNS.unregister("golden-spike")
    # Same config dict, different implementations: the keys must differ,
    # and neither may collide with a builtin-only config.
    assert first_key != second_key
    assert config_cache_key(config_uniform) not in (first_key, second_key)


def test_builtin_keys_are_stable_across_processes(tmp_path):
    # PYTHONHASHSEED already covered above; this pins that the component
    # provenance folded into v3 is deterministic too.
    config = SimulationConfig.tiny()
    key_here = config_cache_key(config)
    script = (
        "import sys; sys.path.insert(0, 'src');"
        "from repro.core.config import SimulationConfig;"
        "from repro.exec.cache import config_cache_key;"
        "print(config_cache_key(SimulationConfig.tiny()))"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={"PYTHONHASHSEED": "31337", "PATH": os.environ.get("PATH", "")},
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == key_here
