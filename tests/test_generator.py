"""Tests for the traffic generator and per-node sources."""

import pytest

from repro.engine.rng import SimulationRNG
from repro.network.topology import MeshTopology
from repro.traffic.generator import TrafficGenerator
from repro.traffic.injection import ExponentialInjection
from repro.traffic.patterns import TransposePattern, UniformPattern


def make_generator(rate=0.05, max_messages=None, pattern_cls=UniformPattern,
                   message_length=4, seed=3):
    topology = MeshTopology((4, 4))
    return TrafficGenerator(
        topology=topology,
        pattern=pattern_cls(topology),
        process=ExponentialInjection(rate),
        message_length=message_length,
        rng=SimulationRNG(seed=seed),
        max_messages=max_messages,
    )


def collect(source, cycles):
    messages = []
    for cycle in range(cycles):
        messages.extend(source.messages_due(cycle))
    return messages


def test_source_generates_at_roughly_the_configured_rate():
    generator = make_generator(rate=0.05)
    source = generator.source_for(3)
    messages = collect(source, 20000)
    assert len(messages) == pytest.approx(1000, rel=0.15)


def test_messages_have_valid_fields():
    generator = make_generator(rate=0.1)
    source = generator.source_for(2)
    for message in collect(source, 2000):
        assert message.source == 2
        assert message.destination != 2
        assert 0 <= message.destination < 16
        assert message.length == 4
        assert 0 <= message.creation_cycle < 2000


def test_creation_cycles_are_non_decreasing():
    generator = make_generator(rate=0.2)
    source = generator.source_for(0)
    messages = collect(source, 3000)
    cycles = [message.creation_cycle for message in messages]
    assert cycles == sorted(cycles)


def test_budget_is_enforced_across_sources():
    generator = make_generator(rate=0.5, max_messages=50)
    sources = generator.sources()
    total = 0
    for cycle in range(5000):
        for source in sources:
            total += len(source.messages_due(cycle))
    assert total == 50
    assert generator.generated == 50
    assert generator.exhausted


def test_permutation_fixed_points_do_not_generate():
    generator = make_generator(rate=0.5, pattern_cls=TransposePattern)
    topology = generator.pattern.topology
    diagonal_source = generator.source_for(topology.node_id((1, 1)))
    assert collect(diagonal_source, 2000) == []


def test_generation_is_reproducible_for_equal_seeds():
    first = make_generator(rate=0.1, seed=9).source_for(5)
    second = make_generator(rate=0.1, seed=9).source_for(5)
    a = [(m.creation_cycle, m.destination) for m in collect(first, 3000)]
    b = [(m.creation_cycle, m.destination) for m in collect(second, 3000)]
    assert a == b


def test_different_nodes_use_different_streams():
    generator = make_generator(rate=0.1)
    a = [(m.creation_cycle, m.destination) for m in collect(generator.source_for(1), 3000)]
    b = [(m.creation_cycle, m.destination) for m in collect(generator.source_for(2), 3000)]
    assert a != b


def test_invalid_message_length_rejected():
    with pytest.raises(ValueError):
        make_generator(message_length=0)
