"""Bit-identical equivalence across the full schedule cube.

The simulator has four independent two-implementations-one-semantics
axes: the kernel schedule (``exhaustive``/``activity``), the router
busy-path schedule (``switch_mode``), the link-transport schedule
(``link_mode``) and the core schedule (``core_mode``: the per-component
object network versus the flat struct-of-arrays core).  Every run of a
seeded randomized configuration must produce a field-for-field identical
:class:`~repro.core.results.SimulationResult` under all sixteen
(kernel, switch, link, core) combinations, with the
(exhaustive, reference, reference, objects) corner as the executable
specification.

The flat core lowers the *whole network* -- every router and interface
-- into global flat arrays walked once per cycle, so its combinations
exercise a completely independent implementation of VC allocation,
switch arbitration, link transport and injection against the same
semantics.  (Under ``core_mode="flat"`` the ``switch_mode``/``link_mode``
fields are carried in the config but the flat core's single pass
subsumes both schedules; the cube still runs those combinations to pin
the invariance.)

The batched link transport may only restructure *how* in-flight flits
and credits are stored and drained -- per-link arrival lanes consumed as
due-span slices, sends flushed per evaluation pass -- never *what*
arrives when: same arrival cycles, same FIFO order within a lane, same
wake cycles reported to the activity kernel.  Everything is driven by
seeded ``random.Random`` instances, so failures reproduce exactly.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

KERNEL_MODES = ("exhaustive", "activity")
SWITCH_MODES = ("reference", "batched")
LINK_MODES = ("reference", "batched")
CORE_MODES = ("objects", "flat")

#: All sixteen schedule combinations; the first entry is the
#: specification corner every other combination is compared against.
SCHEDULE_CUBE = tuple(
    itertools.product(KERNEL_MODES, SWITCH_MODES, LINK_MODES, CORE_MODES)
)
assert SCHEDULE_CUBE[0] == ("exhaustive", "reference", "reference", "objects")


def _random_config(seed: int) -> SimulationConfig:
    """A small, drainable configuration drawn from a seeded RNG.

    Mirrors the ``test_router_properties`` scaffolding but additionally
    varies the link-transport-relevant knobs: link and credit delays
    (lane arrival spacing), message length down to single-flit messages
    (head == tail) and loads up to contention.
    """
    rng = random.Random(seed * 7919)
    mesh_dims = rng.choice([(3, 3), (4, 4), (2, 5), (4, 2)])
    square = mesh_dims[0] == mesh_dims[1]
    traffic = rng.choice(
        ["uniform", "transpose", "tornado"] if square else ["uniform", "tornado"]
    )
    return SimulationConfig(
        mesh_dims=mesh_dims,
        vcs_per_port=rng.choice([1, 2, 4]),
        buffer_depth=rng.choice([2, 3, 5]),
        routing=rng.choice(["duato", "dimension-order", "west-first"]),
        traffic=traffic,
        message_length=rng.choice([1, 4, 8]),
        normalized_load=rng.choice([0.15, 0.3, 0.6]),
        injection=rng.choice(["exponential", "bernoulli"]),
        pipeline=rng.choice(["proud", "la-proud"]),
        link_delay=rng.choice([1, 2]),
        credit_delay=rng.choice([1, 2]),
        warmup_messages=20,
        measure_messages=120,
        seed=seed,
    )


def _run(
    config: SimulationConfig,
    kernel: str,
    switch: str,
    link: str,
    core: str = "objects",
):
    return NetworkSimulator(
        config.variant(switch_mode=switch, link_mode=link, core_mode=core),
        kernel_mode=kernel,
    ).run()


def _assert_equivalent(actual, reference, combo) -> None:
    """Field-for-field equality of everything the simulation computed.

    The configs deliberately differ in their mode fields only, so the
    comparison covers the computed fields plus the mode-normalised
    config.
    """
    expected = reference.summary.as_dict()
    got = actual.summary.as_dict()
    assert set(got) == set(expected), combo
    for field, value in expected.items():
        assert got[field] == value, (
            f"LatencySummary.{field} diverged under {combo}: "
            f"{got[field]!r} != {value!r}"
        )
    assert actual.cycles == reference.cycles, combo
    assert actual.zero_load_latency == reference.zero_load_latency, combo
    assert actual.effective_message_rate == reference.effective_message_rate, combo
    assert actual.drain == reference.drain, combo
    normalise = dict(
        switch_mode="reference", link_mode="reference", core_mode="objects"
    )
    assert (
        actual.config.variant(**normalise)
        == reference.config.variant(**normalise)
    ), combo


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_full_schedule_cube_is_bit_identical(seed):
    """Every (kernel, switch, link, core) combination reproduces the
    (exhaustive, reference, reference, objects) specification corner bit
    for bit on a randomized configuration."""
    config = _random_config(seed)
    baseline = _run(config, *SCHEDULE_CUBE[0])
    for combo in SCHEDULE_CUBE[1:]:
        _assert_equivalent(_run(config, *combo), baseline, combo)


#: Contention-heavy variants: few VCs, shallow buffers and long messages
#: force credit stalls and busy lanes -- the regime where an ordering bug
#: in the due-span drain (or a send dropped by the flush) diverges.
CONTENTION_GRID = [
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.9},
    {"vcs_per_port": 2, "buffer_depth": 2, "message_length": 8, "normalized_load": 0.6,
     "traffic": "transpose"},
    {"vcs_per_port": 2, "buffer_depth": 5, "message_length": 4, "normalized_load": 0.9,
     "injection": "bernoulli"},
]


@pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
@pytest.mark.parametrize(
    "overrides",
    CONTENTION_GRID,
    ids=[
        f"vcs{o['vcs_per_port']}-buf{o['buffer_depth']}-len{o['message_length']}"
        f"-load{o['normalized_load']}"
        for o in CONTENTION_GRID
    ],
)
def test_link_axis_under_contention(overrides, kernel_mode):
    config = SimulationConfig.tiny(seed=1).variant(
        measure_messages=150, warmup_messages=20, **overrides
    )
    reference = _run(config, kernel_mode, "batched", "reference")
    batched = _run(config, kernel_mode, "batched", "batched")
    _assert_equivalent(batched, reference, (kernel_mode, "batched", "link-axis"))
    flat = _run(config, kernel_mode, "batched", "batched", "flat")
    _assert_equivalent(flat, reference, (kernel_mode, "flat", "core-axis"))


def test_single_flit_messages_cross_the_cube():
    """Head==tail flits exercise every transport transition in one entry:
    the whole cube must agree on a single-flit workload."""
    config = SimulationConfig.tiny(
        message_length=1, normalized_load=0.5, seed=11
    )
    baseline = _run(config, *SCHEDULE_CUBE[0])
    for combo in SCHEDULE_CUBE[1:]:
        _assert_equivalent(_run(config, *combo), baseline, combo)


def test_multi_cycle_link_and_credit_delays():
    """Delays above one cycle stagger lane arrivals across cycles, so
    due-spans become strict prefixes rather than whole lanes."""
    config = SimulationConfig.tiny(
        link_delay=2, credit_delay=3, normalized_load=0.4, seed=13
    )
    for kernel in KERNEL_MODES:
        reference = _run(config, kernel, "batched", "reference")
        batched = _run(config, kernel, "batched", "batched")
        _assert_equivalent(batched, reference, (kernel, "delays", "link-axis"))


def test_link_axis_identical_json_across_kernels():
    """For a fixed (switch, link) pair the full result JSON -- config
    included -- must match across the kernel axis, as in the kernel and
    router equivalence suites."""
    config = SimulationConfig.tiny(normalized_load=0.6, seed=17)
    for link in LINK_MODES:
        activity = _run(config, "activity", "batched", link)
        exhaustive = _run(config, "exhaustive", "batched", link)
        assert activity.to_json() == exhaustive.to_json(), link


def test_link_mode_recorded_in_result_config():
    config = SimulationConfig.tiny(normalized_load=0.1, seed=5)
    assert _run(config, "activity", "batched", "reference").config.link_mode == "reference"
    assert _run(config, "activity", "batched", "batched").config.link_mode == "batched"


def test_core_mode_recorded_in_result_config():
    config = SimulationConfig.tiny(normalized_load=0.1, seed=5)
    objects = _run(config, "activity", "batched", "batched", "objects")
    flat = _run(config, "activity", "batched", "batched", "flat")
    assert objects.config.core_mode == "objects"
    assert flat.config.core_mode == "flat"


def test_core_axis_identical_json_across_kernels():
    """For the flat core the full result JSON -- config included -- must
    match across the kernel axis, as for the other three axes."""
    config = SimulationConfig.tiny(normalized_load=0.6, seed=17)
    activity = _run(config, "activity", "batched", "batched", "flat")
    exhaustive = _run(config, "exhaustive", "batched", "batched", "flat")
    assert activity.to_json() == exhaustive.to_json()


#: The fifth axis: closed-loop workloads.  One small instance per
#: built-in generator family plus the trace replayer; each must cross
#: the whole sixteen-combination cube bit for bit, drain metrics
#: included (the flat core fires the same delivery callbacks as the
#: object interfaces).
def _workload_overrides():
    from repro.workload import example_trace_path

    return {
        "request-reply": {"workload": "request-reply", "workload_iters": 3},
        "allreduce": {"workload": "allreduce", "workload_iters": 2,
                      "workload_hidden": 32},
        "alltoall": {"workload": "alltoall", "workload_iters": 2},
        "llm-decode": {"workload": "llm-decode", "workload_layers": 2,
                       "workload_hidden": 32, "workload_group": 4},
        "trace": {"workload": "trace",
                  "workload_trace": str(example_trace_path())},
    }


@pytest.mark.parametrize("workload", sorted(_workload_overrides()))
def test_workload_axis_crosses_the_cube(workload):
    """Every closed-loop generator reproduces the specification corner
    bit for bit -- summary, cycles and drain block -- under all sixteen
    (kernel, switch, link, core) combinations."""
    config = SimulationConfig(
        mesh_dims=(3, 3), message_length=4, seed=3,
        **_workload_overrides()[workload],
    )
    baseline = _run(config, *SCHEDULE_CUBE[0])
    assert baseline.drain is not None and baseline.drain["drained"], workload
    for combo in SCHEDULE_CUBE[1:]:
        _assert_equivalent(_run(config, *combo), baseline, combo)


#: The topology axis: wrapping points crossing the full cube.  The
#: saturation-load uniform and tornado runs on the 4x4x4 torus are the
#: acceptance workloads for the dateline escape discipline -- wrap-link
#: pressure in every dimension, in both cores, under both allocators.
TORUS_POINTS = {
    "torus2d-tornado-duato": dict(
        mesh_dims=(4, 4), torus=True, routing="duato", num_escape_vcs=2,
        traffic="tornado", normalized_load=0.9,
    ),
    "torus2d-uniform-dor": dict(
        mesh_dims=(4, 4), torus=True, routing="dimension-order",
        vcs_per_port=2, traffic="uniform", normalized_load=0.6,
    ),
    "torus3d-uniform": dict(
        mesh_dims=(4, 4, 4), topology="torus3d", routing="duato",
        num_escape_vcs=2, traffic="uniform", normalized_load=1.0,
        link_delays=(1, 1, 2),
    ),
    "torus3d-tornado": dict(
        mesh_dims=(4, 4, 4), topology="torus3d", routing="duato",
        num_escape_vcs=2, traffic="tornado", normalized_load=1.0,
    ),
}


@pytest.mark.parametrize("point", sorted(TORUS_POINTS))
def test_torus_axis_crosses_the_cube(point):
    """Every wrapping-topology point reproduces the specification corner
    bit for bit under all sixteen (kernel, switch, link, core)
    combinations -- the dateline discipline is mirrored exactly."""
    config = SimulationConfig(
        message_length=4, warmup_messages=20, measure_messages=120, seed=9,
        **TORUS_POINTS[point],
    )
    baseline = _run(config, *SCHEDULE_CUBE[0])
    # Full measured completion is the no-deadlock witness: the run stops
    # the cycle the last measured message ejects, so warmup stragglers
    # may legitimately still be in flight.
    assert baseline.summary.measured == config.measure_messages, point
    assert baseline.summary.completion_ratio == 1.0, point
    for combo in SCHEDULE_CUBE[1:]:
        _assert_equivalent(_run(config, *combo), baseline, combo)


def test_config_rejects_unknown_core_mode():
    with pytest.raises(ValueError, match="core"):
        SimulationConfig.tiny(core_mode="holographic")


def test_config_rejects_unknown_link_mode():
    with pytest.raises(ValueError, match="link"):
        SimulationConfig.tiny(link_mode="quantum-tunnel")


def test_router_config_rejects_unknown_link_mode():
    from repro.router.config import RouterConfig

    with pytest.raises(ValueError, match="link"):
        RouterConfig(link_mode="quantum-tunnel")
