"""Tests for the meta-table cluster mappings."""

import pytest

from repro.network.topology import MeshTopology
from repro.tables.mappings import BlockClusterMapping, RowClusterMapping


@pytest.fixture
def mesh16():
    return MeshTopology((16, 16))


@pytest.fixture
def mesh4():
    return MeshTopology((4, 4))


def test_row_mapping_structure(mesh4):
    mapping = RowClusterMapping(mesh4)
    assert mapping.num_clusters == 4
    assert mapping.cluster_size == 4
    mapping.validate()
    node = mesh4.node_id((2, 3))
    assert mapping.cluster_of(node) == 3
    assert mapping.subcluster_of(node) == 2


def test_row_mapping_clusters_are_rows(mesh4):
    mapping = RowClusterMapping(mesh4)
    for cluster in range(mapping.num_clusters):
        members = mapping.nodes_in_cluster(cluster)
        ys = {mesh4.coordinates(node)[1] for node in members}
        assert ys == {cluster}
        assert len(members) == 4


def test_block_mapping_default_blocks_match_paper(mesh16):
    mapping = BlockClusterMapping(mesh16)
    assert mapping.block_dims == (4, 4)
    assert mapping.grid_dims == (4, 4)
    assert mapping.num_clusters == 16
    assert mapping.cluster_size == 16
    mapping.validate()


def test_block_mapping_cluster_ids_form_a_grid(mesh16):
    mapping = BlockClusterMapping(mesh16)
    # Cluster 0 is the bottom-left block, cluster 1 is directly to its east,
    # cluster 4 directly to its north (Fig. 8b of the paper).
    assert mapping.cluster_of(mesh16.node_id((0, 0))) == 0
    assert mapping.cluster_of(mesh16.node_id((4, 0))) == 1
    assert mapping.cluster_of(mesh16.node_id((0, 4))) == 4
    assert mapping.cluster_of(mesh16.node_id((5, 5))) == 5
    assert mapping.cluster_of(mesh16.node_id((15, 15))) == 15


def test_block_mapping_custom_blocks(mesh4):
    mapping = BlockClusterMapping(mesh4, block_dims=(2, 2))
    assert mapping.num_clusters == 4
    assert mapping.cluster_size == 4
    mapping.validate()


def test_block_mapping_rejects_non_tiling_blocks(mesh4):
    with pytest.raises(ValueError):
        BlockClusterMapping(mesh4, block_dims=(3, 2))


def test_node_for_inverts_cluster_and_subcluster(mesh4):
    for mapping in (RowClusterMapping(mesh4), BlockClusterMapping(mesh4, block_dims=(2, 2))):
        for node in range(mesh4.num_nodes):
            cluster = mapping.cluster_of(node)
            subcluster = mapping.subcluster_of(node)
            assert mapping.node_for(cluster, subcluster) == node


def test_mappings_require_2d():
    mesh3d = MeshTopology((2, 2, 2))
    with pytest.raises(ValueError):
        RowClusterMapping(mesh3d)
    with pytest.raises(ValueError):
        BlockClusterMapping(mesh3d)
