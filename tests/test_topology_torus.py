"""Tests for the torus topologies (wraparound links, datelines, 3-D)."""

import pytest

from repro.network.topology import LOCAL_PORT, Torus3D, TorusTopology, port_for


def test_wrap_flag(torus4x4):
    assert torus4x4.wraps is True


def test_every_port_connected(torus4x4):
    for node in range(torus4x4.num_nodes):
        for port in range(1, torus4x4.radix):
            assert torus4x4.neighbor(node, port) is not None


def test_wraparound_neighbor(torus4x4):
    east_edge = torus4x4.node_id((3, 1))
    assert torus4x4.neighbor(east_edge, port_for(0, True)) == torus4x4.node_id((0, 1))
    south_edge = torus4x4.node_id((2, 0))
    assert torus4x4.neighbor(south_edge, port_for(1, False)) == torus4x4.node_id((2, 3))


def test_distance_uses_shorter_way_around(torus4x4):
    a = torus4x4.node_id((0, 0))
    b = torus4x4.node_id((3, 0))
    # Going -X wraps around in one hop instead of three.
    assert torus4x4.distance(a, b) == 1
    c = torus4x4.node_id((2, 2))
    assert torus4x4.distance(a, c) == 4


def test_relative_signs_follow_minimal_direction(torus4x4):
    a = torus4x4.node_id((0, 0))
    b = torus4x4.node_id((3, 0))
    assert torus4x4.relative_signs(a, b) == (-1, 0)
    # Exactly half way: ties break toward the positive direction.
    c = torus4x4.node_id((2, 0))
    assert torus4x4.relative_signs(a, c) == (1, 0)


def test_torus_has_twice_the_bisection_of_a_mesh():
    torus = TorusTopology((8, 8))
    assert torus.bisection_channels() == 32
    assert torus.saturation_flit_rate() == pytest.approx(1.0)


def test_link_count(torus4x4):
    # Every node has 4 outgoing network links on a 2-D torus.
    assert len(list(torus4x4.links())) == 4 * torus4x4.num_nodes


def test_dateline_bits_mark_exactly_the_wrap_links(torus4x4):
    # The dateline of dimension d sits on the wrap link: leaving the
    # last coordinate in +d or the zeroth in -d sets bit d; every other
    # hop (and the ejection port) leaves the mask alone.
    for node in range(torus4x4.num_nodes):
        assert torus4x4.dateline_bits(node, LOCAL_PORT) == 0
        x, y = torus4x4.coordinates(node)
        assert torus4x4.dateline_bits(node, port_for(0, True)) == (
            1 if x == 3 else 0
        )
        assert torus4x4.dateline_bits(node, port_for(0, False)) == (
            1 if x == 0 else 0
        )
        assert torus4x4.dateline_bits(node, port_for(1, True)) == (
            2 if y == 3 else 0
        )
        assert torus4x4.dateline_bits(node, port_for(1, False)) == (
            2 if y == 0 else 0
        )


def test_each_ring_has_one_dateline_per_direction(torus4x4):
    # Exactly one link of every unidirectional ring is a dateline --
    # one class switch per wrap traversal, never two.
    for dimension in (0, 1):
        for positive in (True, False):
            port = port_for(dimension, positive)
            marked = sum(
                1
                for node in range(torus4x4.num_nodes)
                if torus4x4.dateline_bits(node, port)
            )
            # 4 rings of 4 nodes in each dimension of a 4x4 torus.
            assert marked == 4


def test_torus3d_requires_three_dimensions():
    with pytest.raises(ValueError, match="exactly 3 dimensions"):
        Torus3D((4, 4))
    with pytest.raises(ValueError, match="exactly 3 dimensions"):
        Torus3D((2, 2, 2, 2))


def test_torus3d_geometry_matches_generic_torus():
    cube = Torus3D((4, 4, 4))
    generic = TorusTopology((4, 4, 4))
    assert cube.wraps is True
    assert cube.num_nodes == 64
    assert cube.radix == 7  # ejection + 2 ports per dimension
    for node in (0, 21, 63):
        for port in range(1, cube.radix):
            assert cube.neighbor(node, port) == generic.neighbor(node, port)
            assert cube.dateline_bits(node, port) == generic.dateline_bits(
                node, port
            )


def test_torus3d_registry_entry():
    from repro.core.config import SimulationConfig
    from repro.registry import TOPOLOGIES

    config = SimulationConfig(
        mesh_dims=(4, 4, 4), topology="torus3d", routing="duato",
        num_escape_vcs=2,
    )
    topology = TOPOLOGIES.get("torus3d")(config)
    assert isinstance(topology, Torus3D)
    with pytest.raises(ValueError, match="torus3d"):
        SimulationConfig(
            mesh_dims=(4, 4), topology="torus3d", routing="duato",
            num_escape_vcs=2,
        )
