"""Tests for the torus topology (wraparound links)."""

import pytest

from repro.network.topology import TorusTopology, port_for


def test_wrap_flag(torus4x4):
    assert torus4x4.wraps is True


def test_every_port_connected(torus4x4):
    for node in range(torus4x4.num_nodes):
        for port in range(1, torus4x4.radix):
            assert torus4x4.neighbor(node, port) is not None


def test_wraparound_neighbor(torus4x4):
    east_edge = torus4x4.node_id((3, 1))
    assert torus4x4.neighbor(east_edge, port_for(0, True)) == torus4x4.node_id((0, 1))
    south_edge = torus4x4.node_id((2, 0))
    assert torus4x4.neighbor(south_edge, port_for(1, False)) == torus4x4.node_id((2, 3))


def test_distance_uses_shorter_way_around(torus4x4):
    a = torus4x4.node_id((0, 0))
    b = torus4x4.node_id((3, 0))
    # Going -X wraps around in one hop instead of three.
    assert torus4x4.distance(a, b) == 1
    c = torus4x4.node_id((2, 2))
    assert torus4x4.distance(a, c) == 4


def test_relative_signs_follow_minimal_direction(torus4x4):
    a = torus4x4.node_id((0, 0))
    b = torus4x4.node_id((3, 0))
    assert torus4x4.relative_signs(a, b) == (-1, 0)
    # Exactly half way: ties break toward the positive direction.
    c = torus4x4.node_id((2, 0))
    assert torus4x4.relative_signs(a, c) == (1, 0)


def test_torus_has_twice_the_bisection_of_a_mesh():
    torus = TorusTopology((8, 8))
    assert torus.bisection_channels() == 32
    assert torus.saturation_flit_rate() == pytest.approx(1.0)


def test_link_count(torus4x4):
    # Every node has 4 outgoing network links on a 2-D torus.
    assert len(list(torus4x4.links())) == 4 * torus4x4.num_nodes
