"""Seeded randomized property tests for router invariants.

Rather than asserting exact numbers, these tests check the *laws* the
router must obey under any traffic -- and check them against both switch
schedules, so the batched busy path cannot satisfy them by construction
quirks the reference would not share:

* **flit conservation** -- every injected message is delivered exactly
  once (no loss, no duplication), and a drained network holds no flits;
* **credit conservation** -- after draining, every output virtual
  channel's credit count returns to the full buffer depth and no
  channel is left allocated;
* **forwarding accounting** -- the routers' crossbar counters equal the
  flit-hops actually traversed by the delivered messages;
* **arbiter fairness** -- a round-robin arbiter never starves a
  continuously requesting slot, and the sorted-request fast path used by
  the batched pass is decision-for-decision equal to the general grant;
* **in-order delivery** -- with deterministic routing and a single
  virtual channel per port there is one FIFO path per (source,
  destination, VC), so messages of a pair must eject in creation order.

Everything is driven by seeded ``random.Random`` instances, so failures
reproduce exactly.

The same laws are re-checked against the flat struct-of-arrays core
(``core_mode="flat"``), which re-implements the whole network's hot path
over global arrays: conservation, drained-state emptiness, forwarding
accounting and priority-pointer parity with the object core.
"""

from __future__ import annotations

import random
from collections import defaultdict

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator
from repro.router.arbiter import RoundRobinArbiter

SWITCH_MODES = ("batched", "reference")
LINK_MODES = ("batched", "reference")
CORE_MODES = ("objects", "flat")


# -- randomized end-to-end runs ------------------------------------------------------


def _random_config(seed: int) -> SimulationConfig:
    """A small, drainable configuration drawn from a seeded RNG."""
    rng = random.Random(seed)
    mesh_dims = rng.choice([(3, 3), (4, 4), (2, 5), (4, 2)])
    vcs = rng.choice([2, 3, 4])
    routing = rng.choice(["duato", "dimension-order", "west-first"])
    square = mesh_dims[0] == mesh_dims[1]
    traffic = rng.choice(
        ["uniform", "transpose", "tornado"] if square else ["uniform", "tornado"]
    )
    return SimulationConfig(
        mesh_dims=mesh_dims,
        vcs_per_port=vcs,
        buffer_depth=rng.choice([2, 3, 5]),
        routing=routing,
        traffic=traffic,
        message_length=rng.choice([1, 4, 8]),
        normalized_load=rng.choice([0.1, 0.25, 0.4]),
        injection=rng.choice(["exponential", "bernoulli"]),
        pipeline=rng.choice(["proud", "la-proud"]),
        warmup_messages=20,
        measure_messages=120,
        seed=seed,
        # These properties introspect the object components (router
        # counters, VC state); the flat-core legs opt in explicitly.
        core_mode="objects",
    )


def _run_with_delivery_log(config: SimulationConfig):
    """Run a simulation recording every delivered message object."""
    simulator = NetworkSimulator(config)
    delivered = []
    original = simulator.stats.record_delivered

    def spy(message, cycle):
        delivered.append(message)
        original(message, cycle)

    simulator.stats.record_delivered = spy
    result = simulator.run()
    return simulator, result, delivered


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
@pytest.mark.parametrize("switch_mode", SWITCH_MODES)
@pytest.mark.parametrize("link_mode", LINK_MODES)
def test_flit_and_credit_conservation(seed, switch_mode, link_mode):
    config = _random_config(seed).variant(switch_mode=switch_mode, link_mode=link_mode)
    simulator, result, delivered = _run_with_delivery_log(config)

    # Every created message was delivered exactly once (loads are modest
    # and the cycle budget generous, so the run fully drains).
    stats = simulator.stats
    assert stats.delivered == stats.created, (
        f"flit loss: created {stats.created}, delivered {stats.delivered} "
        f"(seed {seed}, {switch_mode})"
    )
    seen_ids = [message.message_id for message in delivered]
    assert len(seen_ids) == len(set(seen_ids)), "duplicated delivery"
    assert result.summary.completion_ratio == 1.0

    # The drained network holds nothing: no buffered flits, no in-flight
    # mailbox entries, every input channel back to IDLE.
    network = simulator.network
    assert network.is_idle()

    # Credit conservation: every output VC of every router is free again,
    # and its credit count plus the credits still in flight toward it
    # (the kernel stops the instant the last message is delivered, which
    # can strand the final credit returns in a mailbox) equals the full
    # buffer depth -- credits are never created or destroyed.
    depth = config.buffer_depth
    for router in network.routers:
        in_flight = defaultdict(int)
        for port, vc in router.in_flight_credits():
            in_flight[(port, vc)] += 1
        for port in range(simulator.topology.radix):
            output = router.output_port(port)
            if not output.connected:
                continue
            for vc in output.vcs:
                assert vc.owner is None, (
                    f"router {router.node_id} port {port} VC {vc.vc} still "
                    f"allocated after drain (seed {seed}, {switch_mode})"
                )
                total = vc.credits + in_flight[(port, vc.vc)]
                assert total == depth, (
                    f"router {router.node_id} port {port} VC {vc.vc} credits "
                    f"{vc.credits} + in-flight {in_flight[(port, vc.vc)]} != "
                    f"{depth} after drain (seed {seed}, {switch_mode})"
                )

    # Forwarding accounting: each flit of a message crosses the crossbar
    # of every router on its path (ejection included), so the summed
    # router counters equal the summed flit-hops of the delivered set.
    flit_hops = sum(message.length * message.hops for message in delivered)
    forwarded = sum(router.flits_forwarded for router in network.routers)
    assert forwarded == flit_hops


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_both_modes_agree_on_microarchitectural_totals(seed):
    """Beyond the result summary, the per-router crossbar counters of the
    two schedules must match router for router."""
    config = _random_config(seed)
    reference = NetworkSimulator(config.variant(switch_mode="reference"))
    batched = NetworkSimulator(config.variant(switch_mode="batched"))
    reference.run()
    batched.run()
    for ref_router, bat_router in zip(reference.network.routers, batched.network.routers):
        assert ref_router.flits_forwarded == bat_router.flits_forwarded
        assert ref_router.headers_routed == bat_router.headers_routed


@pytest.mark.parametrize("switch_mode", SWITCH_MODES)
def test_in_order_delivery_per_source_destination_vc(switch_mode):
    """Deterministic routing + one VC per port = one FIFO lane per
    (source, destination, VC) triple: ejection order must equal creation
    order within every pair."""
    config = SimulationConfig(
        mesh_dims=(4, 4),
        vcs_per_port=1,
        routing="dimension-order",
        traffic="uniform",
        normalized_load=0.3,
        message_length=4,
        warmup_messages=30,
        measure_messages=250,
        seed=23,
        switch_mode=switch_mode,
    )
    simulator, result, delivered = _run_with_delivery_log(config)
    assert simulator.stats.delivered == simulator.stats.created

    last_seen = {}
    for message in delivered:
        pair = (message.source, message.destination)
        previous = last_seen.get(pair)
        if previous is not None:
            assert previous.creation_cycle <= message.creation_cycle
            assert previous.message_id < message.message_id, (
                f"pair {pair} delivered message {message.message_id} after "
                f"{previous.message_id} despite earlier creation ({switch_mode})"
            )
        last_seen[pair] = message


# -- arbiter properties --------------------------------------------------------------


def test_round_robin_never_starves_a_persistent_requester():
    """A slot that requests in every arbitration round is granted at
    least once every ``num_requesters`` grants, whatever the competing
    request pattern does."""
    rng = random.Random(99)
    num = 5
    arbiter = RoundRobinArbiter(num)
    persistent = 2
    grants_since_persistent = 0
    for _ in range(500):
        others = [slot for slot in range(num) if slot != persistent and rng.random() < 0.8]
        requests = sorted(others + [persistent])
        winner = arbiter.grant(requests)
        assert winner in requests
        if winner == persistent:
            grants_since_persistent = 0
        else:
            grants_since_persistent += 1
            assert grants_since_persistent < num, (
                "round-robin starved a continuously requesting slot"
            )


@pytest.mark.parametrize("seed", [5, 6, 7, 8])
def test_grant_sorted_equals_grant(seed):
    """The sorted-request fast path used by the batched switch pass must
    make the identical decision -- and leave the identical priority
    pointer -- as the general grant, over long random request sequences."""
    rng = random.Random(seed)
    num = rng.choice([2, 4, 5, 8])
    general = RoundRobinArbiter(num)
    fast = RoundRobinArbiter(num)
    for _ in range(400):
        requests = sorted(
            slot for slot in range(num) if rng.random() < rng.choice([0.2, 0.5, 0.9])
        )
        assert general.grant(requests) == fast.grant_sorted(requests)
        assert repr(general) == repr(fast)  # pointer state stays in lockstep


def test_grant_sorted_empty_request_list():
    arbiter = RoundRobinArbiter(4)
    assert arbiter.grant_sorted([]) is None


def test_batched_priority_pointers_match_reference_arbiters():
    """After identical runs, the batched routers' flat priority arrays
    must equal the pointer positions of the reference routers' arbiter
    objects -- the two bookkeeping forms of one rotating priority."""
    config = _random_config(31)
    reference = NetworkSimulator(config.variant(switch_mode="reference"))
    batched = NetworkSimulator(config.variant(switch_mode="batched"))
    reference.run()
    batched.run()
    for ref_router, bat_router in zip(reference.network.routers, batched.network.routers):
        ref_inputs = [arb._next_priority for arb in ref_router._input_arbiters]
        ref_outputs = [arb._next_priority for arb in ref_router._output_arbiters]
        assert bat_router._input_priorities == ref_inputs
        assert bat_router._output_priorities == ref_outputs


# -- decision-memo invalidation ------------------------------------------------------


def test_reprogramming_a_table_drops_memoized_decisions():
    """The busy path memoizes routing decisions; tables are software
    programmable, so a post-construction ``reprogram`` must clear the
    shared memo in place (routers hold references to the same dict)."""
    from repro.network.topology import MeshTopology, port_for
    from repro.routing.duato import DuatoFullyAdaptiveRouting
    from repro.tables.economical import EconomicalStorageTable

    topology = MeshTopology((3, 3))
    table = EconomicalStorageTable(topology)
    routing = DuatoFullyAdaptiveRouting(topology, table)
    cache = routing.decision_cache()
    assert cache is routing.decision_cache()  # one shared dict

    node = topology.node_id((1, 1))
    destination = topology.node_id((2, 2))
    before = routing.decide(node, destination)
    cache[(node, destination)] = before
    east, north = port_for(0, True), port_for(1, True)
    assert set(before.adaptive_ports) == {east, north}

    # Deny the +X port for (+, +) at the center node, as a North-Last
    # style programming would.
    table.reprogram(node, (1, 1), (north,))
    assert cache == {}, "reprogramming must clear the decision memo"
    after = routing.decide(node, destination)
    assert set(after.adaptive_ports) == {north}


# -- membership-array integrity ------------------------------------------------------


@pytest.mark.parametrize("seed", [41, 42])
def test_membership_arrays_empty_after_drain(seed):
    """The incremental ROUTING/ACTIVE membership arrays must be exact:
    after a drained run they are empty, matching the all-IDLE channels."""
    config = _random_config(seed)
    simulator = NetworkSimulator(config)
    simulator.run()
    assert simulator.network.is_idle()
    for router in simulator.network.routers:
        assert router._routing_members == []
        assert router._active_members == []
        assert router._occupied_channels == 0


# -- flat-core properties ------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_flat_core_flit_and_credit_conservation(seed):
    """The conservation laws hold verbatim on the flat struct-of-arrays
    core: nothing lost or duplicated, the drained arrays all idle, and
    every output VC's credits (plus the in-flight returns stranded when
    the kernel stops) back at the full buffer depth."""
    config = _random_config(seed).variant(core_mode="flat")
    simulator, result, delivered = _run_with_delivery_log(config)

    stats = simulator.stats
    assert stats.delivered == stats.created, (
        f"flit loss: created {stats.created}, delivered {stats.delivered} "
        f"(seed {seed}, flat core)"
    )
    seen_ids = [message.message_id for message in delivered]
    assert len(seen_ids) == len(set(seen_ids)), "duplicated delivery"
    assert result.summary.completion_ratio == 1.0

    core = simulator.core
    assert core is not None
    assert core.is_idle()

    depth = config.buffer_depth
    radix = simulator.topology.radix
    vcs = config.vcs_per_port
    for node in range(config.num_nodes):
        in_flight = defaultdict(int)
        for port, vc in core.in_flight_credits(node):
            in_flight[(port, vc)] += 1
        for port in range(radix):
            if not core._out_connected[node * radix + port]:
                continue
            for vc in range(vcs):
                assert core.output_owner(node, port, vc) == -1, (
                    f"node {node} port {port} VC {vc} still allocated "
                    f"after drain (seed {seed}, flat core)"
                )
                total = core.output_credits(node, port, vc) + in_flight[(port, vc)]
                assert total == depth, (
                    f"node {node} port {port} VC {vc} credits do not "
                    f"conserve: {total} != {depth} (seed {seed}, flat core)"
                )

    flit_hops = sum(message.length * message.hops for message in delivered)
    assert sum(core.flits_forwarded) == flit_hops


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_flat_core_counters_match_object_core(seed):
    """The flat core's per-node crossbar/header counters equal the object
    routers' counters node for node -- not just in aggregate."""
    config = _random_config(seed)
    objects = NetworkSimulator(config.variant(core_mode="objects"))
    flat = NetworkSimulator(config.variant(core_mode="flat"))
    objects.run()
    flat.run()
    core = flat.core
    for node, router in enumerate(objects.network.routers):
        assert core.flits_forwarded[node] == router.flits_forwarded
        assert core.headers_routed[node] == router.headers_routed


def test_flat_core_priority_pointers_match_object_core():
    """After identical runs the flat core's global priority arrays equal
    the batched object routers' per-router arrays -- one rotating
    round-robin priority in two bookkeeping forms, so the arbiters of the
    two cores stay fair in lockstep."""
    config = _random_config(31).variant(switch_mode="batched")
    objects = NetworkSimulator(config.variant(core_mode="objects"))
    flat = NetworkSimulator(config.variant(core_mode="flat"))
    objects.run()
    flat.run()
    core = flat.core
    radix = objects.topology.radix
    for node, router in enumerate(objects.network.routers):
        base = node * radix
        assert core._in_prio[base:base + radix] == router._input_priorities
        assert core._out_prio[base:base + radix] == router._output_priorities


@pytest.mark.parametrize("seed", [41, 42])
def test_flat_core_membership_lists_empty_after_drain(seed):
    """The flat core's per-node ROUTING/ACTIVE membership lists must be
    exact: after a drained run they are empty, matching all-IDLE state."""
    config = _random_config(seed).variant(core_mode="flat")
    simulator = NetworkSimulator(config)
    simulator.run()
    core = simulator.core
    assert core.is_idle()
    assert all(members == [] for members in core._routing_members)
    assert all(members == [] for members in core._active_members)


# -- link-transport wheel integrity --------------------------------------------------


def _assert_wheel_consistent(wheel):
    """Arrival-wheel integrity: length and truthiness agree with the
    entries actually stored across lanes and the ``far`` overflow."""
    stored = sum(len(lane) for lane in wheel.slots) + len(wheel.far)
    assert len(wheel) == stored
    assert bool(wheel) == (stored > 0)


@pytest.mark.parametrize("seed", [43, 44, 45])
def test_wheels_drained_and_consistent_after_run(seed):
    """Under ``link_mode="batched"`` a drained run leaves every flit
    wheel empty and every wheel's pending counter exact.  (Credit wheels
    may hold the final in-flight credit returns -- the kernel stops the
    instant the last message is delivered -- which the counters must
    cover; ``far`` stays empty because the wired path never uses it.)"""
    config = _random_config(seed).variant(link_mode="batched")
    simulator = NetworkSimulator(config)
    simulator.run()
    assert simulator.network.is_idle()
    for router in simulator.network.routers:
        _assert_wheel_consistent(router._flit_wheel)
        _assert_wheel_consistent(router._credit_wheel)
        assert len(router._flit_wheel) == 0
        assert router._flit_wheel.far == []
        assert router._credit_wheel.far == []
        assert len(router.in_flight_credits()) == len(router._credit_wheel)
    for interface in simulator.network.interfaces:
        _assert_wheel_consistent(interface._eject_mailbox)
        _assert_wheel_consistent(interface._credit_mailbox)
        assert len(interface._eject_mailbox) == 0


@pytest.mark.parametrize("seed", [46, 47])
def test_wheel_lanes_are_slot_exact(seed):
    """The wheel drain consumes the lane ``cycle % size`` without any
    arrival comparison, which is only correct if that lane holds exactly
    the flits due this cycle.  Log every wired flit push (by wrapping the
    receiver factory before construction -- batched components bind their
    receivers and drain at init/wiring time) and assert, at the top of
    every drain, that the lane length matches the logged arrivals for
    this cycle and that no logged arrival lies in the past."""
    from collections import defaultdict

    from repro.router.router import Router

    push_log = {}
    real_make = Router.make_flit_receiver
    real_drain = Router._deliver_batched_links
    drains = [0]

    def logging_make(self, port):
        receiver = real_make(self, port)
        log = push_log.setdefault(id(self), defaultdict(int))

        def wrapped(vc, flit, arrival_cycle):
            log[arrival_cycle] += 1
            receiver(vc, flit, arrival_cycle)

        return wrapped

    def checked_drain(self, cycle):
        log = push_log.get(id(self))
        if log is not None:
            drains[0] += 1
            wheel = self._flit_wheel
            lane = wheel.slots[cycle % wheel.size]
            expected = log.pop(cycle, 0)
            assert len(lane) == expected, (
                f"lane for cycle {cycle} holds {len(lane)} flits, "
                f"{expected} were pushed for it (seed {seed})"
            )
            assert all(arrival > cycle for arrival in log), (
                f"flits pushed for a past cycle were never drained "
                f"(cycle {cycle}, pending {sorted(log)}, seed {seed})"
            )
        return real_drain(self, cycle)

    config = _random_config(seed).variant(
        link_mode="batched", traffic="uniform", normalized_load=0.6, message_length=8
    )
    try:
        Router.make_flit_receiver = logging_make
        Router._deliver_batched_links = checked_drain
        simulator = NetworkSimulator(config)
        result = simulator.run()
    finally:
        Router.make_flit_receiver = real_make
        Router._deliver_batched_links = real_drain
    assert result.summary.delivered > 0
    assert drains[0] > 0
