"""Tests for the economical-storage (sign-indexed) routing table."""

import pytest

from repro.network.topology import LOCAL_PORT, MeshTopology, port_for
from repro.routing.providers import north_last_provider
from repro.tables.base import TableProgrammingError
from repro.tables.economical import EconomicalStorageTable
from repro.tables.full_table import FullRoutingTable

EAST = port_for(0, True)
WEST = port_for(0, False)
NORTH = port_for(1, True)
SOUTH = port_for(1, False)


@pytest.fixture
def mesh():
    return MeshTopology((4, 4))


def test_entry_count_matches_paper_claim(mesh):
    table = EconomicalStorageTable(mesh)
    assert table.entries_per_router() == 9
    three_d = EconomicalStorageTable(MeshTopology((3, 3, 3)))
    assert three_d.entries_per_router() == 27


def test_lookup_equals_full_table_for_every_pair(mesh):
    economical = EconomicalStorageTable(mesh)
    full = FullRoutingTable(mesh)
    for source in range(mesh.num_nodes):
        for destination in range(mesh.num_nodes):
            assert set(economical.lookup(source, destination)) == set(
                full.lookup(source, destination)
            ), (source, destination)


def test_index_of_is_the_sign_pair(mesh):
    table = EconomicalStorageTable(mesh)
    origin = mesh.node_id((1, 1))
    assert table.index_of(origin, mesh.node_id((3, 0))) == (1, -1)
    assert table.index_of(origin, origin) == (0, 0)


def test_quadrant_axis_and_local_entries(mesh):
    table = EconomicalStorageTable(mesh)
    origin = mesh.node_id((1, 1))
    assert set(table.entry(origin, (1, 1))) == {EAST, NORTH}
    assert table.entry(origin, (1, 0)) == (EAST,)
    assert table.entry(origin, (0, -1)) == (SOUTH,)
    assert table.entry(origin, (0, 0)) == (LOCAL_PORT,)


def test_corner_node_unreachable_patterns_get_geometric_defaults():
    mesh = MeshTopology((3, 3))
    table = EconomicalStorageTable(mesh)
    corner = mesh.node_id((0, 0))
    # No destination lies south-west of the origin corner, but the entry is
    # still programmed (and never consulted).
    assert set(table.entry(corner, (-1, -1))) == {WEST, SOUTH}


def test_north_last_programming_matches_figure7():
    mesh = MeshTopology((3, 3))
    table = EconomicalStorageTable(mesh, provider=north_last_provider(mesh))
    node = mesh.node_id((1, 1))
    # North-east and north-west quadrants lose the +Y (North) choice.
    assert table.entry(node, (1, 1)) == (EAST,)
    assert table.entry(node, (-1, 1)) == (WEST,)
    # Straight north keeps its only (allowed) port.
    assert table.entry(node, (0, 1)) == (NORTH,)
    # Southern quadrants keep both choices.
    assert set(table.entry(node, (1, -1))) == {EAST, SOUTH}


def test_reprogram_entry(mesh):
    table = EconomicalStorageTable(mesh)
    node = mesh.node_id((1, 1))
    table.reprogram(node, (1, 1), (EAST,))
    assert table.lookup(node, mesh.node_id((3, 3))) == (EAST,)


def test_reprogram_validation(mesh):
    table = EconomicalStorageTable(mesh)
    with pytest.raises(TableProgrammingError):
        table.reprogram(0, (2, 2), (EAST,))
    with pytest.raises(TableProgrammingError):
        table.reprogram(0, (1, 1), ())
    with pytest.raises(TableProgrammingError):
        table.reprogram(0, (1, 1), (42,))


def test_describe_lists_all_entries(mesh):
    table = EconomicalStorageTable(mesh)
    entries = table.describe(mesh.node_id((2, 2)))
    assert len(entries) == 9
    signs = [signs for signs, _ in entries]
    assert len(set(signs)) == 9


def test_table_works_on_torus_signs():
    torus_mesh = MeshTopology((4, 4))
    table = EconomicalStorageTable(torus_mesh)
    assert table.entries_per_router() == 9
