"""Tests for the network assembly (routers + interfaces + links)."""

import pytest

from repro.network.link import Link
from repro.network.network import Network
from repro.network.topology import LOCAL_PORT, MeshTopology
from repro.router.config import RouterConfig
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.selection.heuristics import StaticDimensionOrderSelector
from repro.stats.collector import StatsCollector
from repro.tables.economical import EconomicalStorageTable


@pytest.fixture
def network():
    topology = MeshTopology((3, 3))
    table = EconomicalStorageTable(topology)
    routing = DuatoFullyAdaptiveRouting(topology, table)
    return Network(
        topology=topology,
        router_config=RouterConfig(),
        routing=routing,
        selector_factory=lambda node: StaticDimensionOrderSelector(),
        stats=StatsCollector(),
        sources=None,
    )


def test_one_router_and_interface_per_node(network):
    assert len(network.routers) == 9
    assert len(network.interfaces) == 9
    for node in range(9):
        assert network.router(node).node_id == node
        assert network.interface(node).node_id == node


def test_components_order_routers_then_interfaces(network):
    components = network.components()
    assert len(components) == 18
    assert components[:9] == network.routers
    assert components[9:] == network.interfaces


def test_every_network_link_is_described(network):
    # A 3x3 mesh has 2 * (2*3 + 2*3) = 24 unidirectional links.
    assert len(network.links) == 24
    for link in network.links:
        assert isinstance(link, Link)
        assert network.topology.neighbor(link.source, link.source_port) == link.destination


def test_router_ports_connected_according_to_topology(network):
    topology = network.topology
    for node in range(topology.num_nodes):
        router = network.router(node)
        assert router.output_port(LOCAL_PORT).connected
        for port in range(1, topology.radix):
            expected = topology.neighbor(node, port) is not None
            assert router.output_port(port).connected == expected


def test_fresh_network_is_idle(network):
    assert network.is_idle()


def test_link_descriptor_validation():
    with pytest.raises(ValueError):
        Link(source=1, source_port=1, destination=1, destination_port=2)
    with pytest.raises(ValueError):
        Link(source=1, source_port=1, destination=2, destination_port=2, delay=0)
    link = Link(source=1, source_port=1, destination=2, destination_port=2)
    assert link.reversed().source == 2
    assert link.reversed().destination == 1
