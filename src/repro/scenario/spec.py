"""Declarative scenario and study specifications.

A :class:`Scenario` describes **one** simulation run as plain data: a
name plus configuration overrides.  A :class:`Study` describes a **named
batch** of scenarios -- an explicit list, a sweep grid (ordered axes of
configuration values and named variants), or a suite of member studies --
together with a saturation-stop policy and an output selection (which
reporter turns results into rows, and which columns are printed).

Both round-trip losslessly to plain JSON files::

    study = Study.from_json(Path("figure5.json").read_text())
    assert Study.from_json(study.to_json()) == study

and expand deterministically into :class:`~repro.core.config.SimulationConfig`
batches (see :meth:`Study.expand`), which
:func:`~repro.scenario.runner.run_study` submits through the existing
:class:`~repro.exec.backend.ExecutionBackend`/:class:`~repro.exec.cache.ResultCache`
path.  The spec layer never simulates anything itself.

Spec dictionaries are JSON-plain: lists (not tuples) inside ``base``,
``overrides`` and ``options``; the only coercion applied when building
configurations is ``mesh_dims`` lists becoming tuples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import SimulationConfig

__all__ = [
    "Axis",
    "Coord",
    "Report",
    "Scenario",
    "StopPolicy",
    "Study",
    "StudyPoint",
    "Variant",
]


def _config_overrides(overrides: Mapping[str, object]) -> Dict[str, object]:
    """JSON-plain overrides -> SimulationConfig keyword arguments."""
    kwargs = dict(overrides)
    if "mesh_dims" in kwargs:
        kwargs["mesh_dims"] = tuple(int(extent) for extent in kwargs["mesh_dims"])
    return kwargs


@dataclass(frozen=True)
class Scenario:
    """One named simulation run: configuration overrides over a base.

    A standalone scenario (no study) applies its overrides to the default
    :class:`SimulationConfig`; inside a study they apply to the study's
    ``base``.
    """

    #: Name of the run (used in reports and expansion bookkeeping).
    name: str = "scenario"
    #: JSON-plain configuration overrides.
    overrides: Dict[str, object] = field(default_factory=dict)

    def config(self, base: Optional[SimulationConfig] = None) -> SimulationConfig:
        """The :class:`SimulationConfig` this scenario describes."""
        base = base if base is not None else SimulationConfig()
        return base.variant(**_config_overrides(self.overrides))

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "overrides": dict(self.overrides)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        return cls(
            name=str(data.get("name", "scenario")),
            overrides=dict(data.get("overrides", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class Variant:
    """One named point of a variant axis: a label plus overrides.

    Variants let an axis sweep *combinations* of fields under one report
    name (e.g. Figure 5's router organisations, which vary ``pipeline``
    and ``routing`` together).
    """

    name: str
    overrides: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "overrides": dict(self.overrides)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Variant":
        return cls(name=str(data["name"]), overrides=dict(data.get("overrides", {})))


@dataclass(frozen=True)
class Axis:
    """One sweep dimension of a study grid.

    Either a **value axis** (``field`` plus ``values``: one configuration
    field swept over scalar values) or a **variant axis** (``variants``:
    named override bundles).  Axes expand row-major in the order listed,
    the last axis varying fastest.
    """

    #: Configuration field swept by a value axis ("" for variant axes).
    field: str = ""
    #: Values of a value axis, in sweep order.
    values: Tuple[object, ...] = ()
    #: Column label used in reports (defaults to ``field``).
    label: str = ""
    #: Name of a variant axis (defaults to "variant").
    name: str = ""
    #: The named variants of a variant axis, in sweep order.
    variants: Tuple[Variant, ...] = ()

    @property
    def is_variant(self) -> bool:
        """Whether this is a variant axis."""
        return bool(self.variants)

    @property
    def report_label(self) -> str:
        """The label reports use for this axis."""
        if self.is_variant:
            return self.name or "variant"
        return self.label or self.field

    def __len__(self) -> int:
        return len(self.variants) if self.is_variant else len(self.values)

    def points(self) -> List[Tuple[object, Dict[str, object]]]:
        """The axis's ``(report value, overrides)`` pairs, in sweep order."""
        if self.is_variant:
            return [(variant.name, dict(variant.overrides)) for variant in self.variants]
        return [(value, {self.field: value}) for value in self.values]

    def to_dict(self) -> Dict[str, object]:
        if self.is_variant:
            data: Dict[str, object] = {
                "name": self.name or "variant",
                "variants": [variant.to_dict() for variant in self.variants],
            }
            return data
        data = {"field": self.field, "values": list(self.values)}
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Axis":
        if "variants" in data:
            return cls(
                name=str(data.get("name", "variant")),
                variants=tuple(Variant.from_dict(v) for v in data["variants"]),
            )
        return cls(
            field=str(data["field"]),
            values=tuple(data["values"]),
            label=str(data.get("label", "")),
        )


@dataclass(frozen=True)
class StopPolicy:
    """Saturation-stop policy of a study grid.

    The stop axis is the study's **last value axis**; variant axes after
    it are simulated together per stop-axis value.  Per combination of
    the axes *before* the stop axis, the walk along the stop axis ends --
    after recording the triggering batch -- when:

    * ``mode="any"``: any scenario of the batch is saturated (the load
      sweep semantics: the saturated point itself is kept so tables can
      print "Sat." rows);
    * ``mode="reference"``: the variant named ``reference`` is saturated
      (Figure 5's semantics: the paper only plots loads up to saturation
      of the reference router); or
    * ``mode="refine"``: after evaluating the declared (coarse) stop-axis
      grid, bisect toward the saturation knee -- repeatedly simulate the
      midpoint of the tightest (unsaturated, saturated) value bracket --
      until the knee is bracketed within ``tolerance`` or ``max_points``
      stop-axis steps have been evaluated per group (0 = unbounded).
      With ``reference`` set, that variant's saturation decides each
      step, exactly as in ``mode="reference"``.
    """

    mode: str = "any"
    reference: str = ""
    #: Knee-bracket width (in stop-axis units) at which refinement stops.
    tolerance: float = 0.0
    #: Stop-axis steps evaluated per group, initial grid included
    #: (0 = no budget).
    max_points: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("any", "reference", "refine"):
            raise ValueError(
                f"unknown stop mode {self.mode!r}; expected 'any', "
                "'reference' or 'refine'"
            )
        if self.mode == "reference" and not self.reference:
            raise ValueError("stop mode 'reference' needs a reference variant name")
        if self.mode == "refine":
            if not self.tolerance > 0.0:
                raise ValueError(
                    "stop mode 'refine' needs a positive tolerance (the "
                    "knee-bracket width, in stop-axis units, at which "
                    "bisection stops)"
                )
            if self.max_points < 0:
                raise ValueError("max_points cannot be negative (0 = no budget)")
        else:
            if self.tolerance:
                raise ValueError(
                    f"tolerance only applies to stop mode 'refine', not {self.mode!r}"
                )
            if self.max_points:
                raise ValueError(
                    f"max_points only applies to stop mode 'refine', not {self.mode!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"mode": self.mode}
        if self.reference:
            data["reference"] = self.reference
        if self.mode == "refine":
            data["tolerance"] = self.tolerance
            if self.max_points:
                data["max_points"] = self.max_points
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StopPolicy":
        return cls(
            mode=str(data.get("mode", "any")),
            reference=str(data.get("reference", "")),
            tolerance=float(data.get("tolerance", 0.0)),
            max_points=int(data.get("max_points", 0)),
        )


@dataclass(frozen=True)
class Report:
    """Output selection of a study: reporter, its options and columns.

    ``reporter`` names an entry of the :data:`repro.registry.REPORTERS`
    registry; ``options`` are passed to it as keyword arguments;
    ``columns`` optionally restricts (and orders) the printed columns.
    """

    reporter: str = "summary"
    options: Dict[str, object] = field(default_factory=dict)
    columns: Optional[Tuple[str, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"reporter": self.reporter}
        if self.options:
            data["options"] = dict(self.options)
        if self.columns is not None:
            data["columns"] = list(self.columns)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Report":
        columns = data.get("columns")
        return cls(
            reporter=str(data.get("reporter", "summary")),
            options=dict(data.get("options", {})),
            columns=tuple(columns) if columns is not None else None,
        )


@dataclass(frozen=True)
class Coord:
    """One coordinate of an expanded grid point."""

    #: Report label of the axis ("traffic", "load", "variant", ...).
    label: str
    #: The axis value at this point (a scalar, or a variant name).
    value: object
    #: Whether the coordinate comes from a variant axis.
    is_variant: bool = False


@dataclass(frozen=True)
class StudyPoint:
    """One expanded point of a study grid: scenario, coordinates, config."""

    scenario: Scenario
    coords: Tuple[Coord, ...]
    config: SimulationConfig

    def coord(self, label: str) -> object:
        """The value of the coordinate labelled ``label``."""
        for coord in self.coords:
            if coord.label == label:
                return coord.value
        raise KeyError(f"point {self.scenario.name!r} has no coordinate {label!r}")

    @property
    def variant(self) -> Optional[str]:
        """Name of the point's (first) variant coordinate, if any."""
        for coord in self.coords:
            if coord.is_variant:
                return str(coord.value)
        return None


@dataclass(frozen=True)
class Study:
    """A named batch of scenarios: explicit list, sweep grid, analytic
    computation or suite of member studies.

    ``kind`` selects the flavour:

    * ``"grid"`` -- ``base`` (a full configuration dictionary) plus
      ``axes`` and/or explicit ``scenarios``, an optional ``stop`` policy
      and a ``report`` selection.
    * ``"analytic"`` -- no simulations: ``analytic`` names an entry of the
      :data:`repro.registry.ANALYTICS` registry called with ``options``.
    * ``"suite"`` -- ``members`` are run in order (sharing one execution
      backend) and rendered as one Markdown report.

    ``plugins`` lists modules (dotted paths or ``.py`` files) imported
    before the study expands, so spec files can name user-registered
    components.
    """

    name: str
    kind: str = "grid"
    title: str = ""
    paper_claim: str = ""
    description: str = ""
    base: Dict[str, object] = field(default_factory=dict)
    axes: Tuple[Axis, ...] = ()
    scenarios: Tuple[Scenario, ...] = ()
    stop: Optional[StopPolicy] = None
    report: Report = field(default_factory=Report)
    analytic: str = ""
    options: Dict[str, object] = field(default_factory=dict)
    members: Tuple["Study", ...] = ()
    plugins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("grid", "analytic", "suite"):
            raise ValueError(
                f"unknown study kind {self.kind!r}; expected 'grid', 'analytic' or 'suite'"
            )
        if self.kind == "analytic" and not self.analytic:
            raise ValueError("an analytic study needs an 'analytic' registry name")
        if self.kind == "suite" and not self.members:
            raise ValueError("a suite study needs at least one member")
        if self.stop is not None and self.scenarios:
            raise ValueError("a stop policy only applies to grid axes, not explicit scenarios")
        if self.stop is not None:
            value_indices = [
                i for i, axis in enumerate(self.axes) if not axis.is_variant
            ]
            if not value_indices:
                # Without a value axis there is no stop axis: the runner
                # would otherwise die deep in the walk with a bare
                # "max() arg is an empty sequence".
                raise ValueError(
                    f"study {self.name!r}: a stop policy needs at least one "
                    "value axis to walk (the grid has only variant axes)"
                )
            if self.stop.mode == "reference" or (
                self.stop.mode == "refine" and self.stop.reference
            ):
                # The walk batches the axes *after* the last value axis per
                # step, so the reference variant must live there -- catch a
                # mis-ordered spec now instead of after burning simulations.
                inner = self.axes[value_indices[-1] + 1 :]
                names = [v.name for axis in inner for v in axis.variants]
                if self.stop.reference not in names:
                    raise ValueError(
                        f"study {self.name!r}: stop reference "
                        f"{self.stop.reference!r} must name a "
                        "variant on an axis after the last value axis "
                        f"(found none among {names!r}); reorder the axes so "
                        "the variant axis comes last"
                    )
            if self.stop.mode == "refine":
                stop_axis = self.axes[value_indices[-1]]
                for value in stop_axis.values:
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        raise ValueError(
                            f"study {self.name!r}: stop mode 'refine' bisects "
                            f"a numeric axis; axis {stop_axis.report_label!r} "
                            f"has non-numeric value {value!r}"
                        )

    # -- expansion ------------------------------------------------------------

    def base_config(self) -> SimulationConfig:
        """The study's base configuration (defaults overlaid with ``base``)."""
        return SimulationConfig().variant(**_config_overrides(self.base))

    def expand(self) -> List[StudyPoint]:
        """Deterministic expansion into configured scenario points.

        Explicit ``scenarios`` come first (in listed order), then the
        ``axes`` grid in row-major order (last axis fastest).  The same
        study always expands to the same points in the same order -- the
        property the golden tests and the content-addressed cache rely on.
        """
        if self.kind != "grid":
            raise ValueError(f"only grid studies expand, not {self.kind!r}")
        base = self.base_config()
        points: List[StudyPoint] = []
        for scenario in self.scenarios:
            points.append(
                StudyPoint(
                    scenario=scenario,
                    coords=(Coord("scenario", scenario.name),),
                    config=scenario.config(base),
                )
            )
        grid: List[Tuple[Tuple[Coord, ...], Dict[str, object]]] = [((), {})]
        for axis in self.axes:
            label = axis.report_label
            next_grid = []
            for coords, overrides in grid:
                for value, axis_overrides in axis.points():
                    merged = dict(overrides)
                    merged.update(axis_overrides)
                    next_grid.append(
                        (coords + (Coord(label, value, axis.is_variant),), merged)
                    )
            grid = next_grid
        if self.axes:
            for coords, overrides in grid:
                name = "/".join(f"{c.label}={c.value}" for c in coords)
                points.append(
                    StudyPoint(
                        scenario=Scenario(name=name, overrides=overrides),
                        coords=coords,
                        config=base.variant(**_config_overrides(overrides)),
                    )
                )
        elif not self.scenarios:
            # A bare grid study is a single run of the base configuration.
            points.append(
                StudyPoint(scenario=Scenario(name=self.name), coords=(), config=base)
            )
        return points

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-compatible dictionary (defaults omitted)."""
        data: Dict[str, object] = {"study": self.name, "kind": self.kind}
        for key in ("title", "paper_claim", "description"):
            value = getattr(self, key)
            if value:
                data[key] = value
        if self.plugins:
            data["plugins"] = list(self.plugins)
        if self.kind == "grid":
            data["base"] = dict(self.base)
            if self.axes:
                data["axes"] = [axis.to_dict() for axis in self.axes]
            if self.scenarios:
                data["scenarios"] = [scenario.to_dict() for scenario in self.scenarios]
            if self.stop is not None:
                data["stop"] = self.stop.to_dict()
            data["report"] = self.report.to_dict()
        elif self.kind == "analytic":
            data["analytic"] = self.analytic
            if self.options:
                data["options"] = dict(self.options)
            if self.report.columns is not None:
                data["report"] = self.report.to_dict()
        else:  # suite
            data["base"] = dict(self.base)
            data["members"] = [member.to_dict() for member in self.members]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Study":
        stop = data.get("stop")
        return cls(
            name=str(data.get("study", data.get("name", "study"))),
            kind=str(data.get("kind", "grid")),
            title=str(data.get("title", "")),
            paper_claim=str(data.get("paper_claim", "")),
            description=str(data.get("description", "")),
            base=dict(data.get("base", {})),
            axes=tuple(Axis.from_dict(axis) for axis in data.get("axes", [])),
            scenarios=tuple(Scenario.from_dict(s) for s in data.get("scenarios", [])),
            stop=StopPolicy.from_dict(stop) if stop is not None else None,
            report=Report.from_dict(data.get("report", {})),
            analytic=str(data.get("analytic", "")),
            options=dict(data.get("options", {})),
            members=tuple(cls.from_dict(member) for member in data.get("members", [])),
            plugins=tuple(str(plugin) for plugin in data.get("plugins", [])),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Study":
        return cls.from_dict(json.loads(text))

    def with_title(self, title: str, paper_claim: str = "") -> "Study":
        """A copy with the report heading fields replaced (for suites)."""
        return replace(self, title=title, paper_claim=paper_claim)

    def all_plugins(self) -> Tuple[str, ...]:
        """This study's plugins plus those of every suite member, deduplicated.

        The full list a process-pool backend must import in its workers.
        """
        seen: List[str] = []
        for plugin in self.plugins:
            if plugin not in seen:
                seen.append(plugin)
        for member in self.members:
            for plugin in member.all_plugins():
                if plugin not in seen:
                    seen.append(plugin)
        return tuple(seen)
