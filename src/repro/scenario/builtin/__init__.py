"""Built-in studies: the paper's experiments, sweeps and campaign as specs.

Every table and figure of the paper's evaluation -- plus the plain load
sweep and the full reproduction campaign -- is expressed here as a
declarative :class:`~repro.scenario.spec.Study` built from a base
configuration and the experiment's sweep axes.  The builder functions
parameterize scale and scope exactly like the legacy ``run_*`` functions
they replace (which now delegate here); the zero-argument builders
registered in the ``study`` registry produce the tiny-scale default specs
shipped as JSON files next to this module (``figure5.json``, ...), which
is what ``repro.cli study figure5`` runs.

The row layouts produced by each study's reporter are bit-identical to
the legacy experiment runners -- enforced by the golden tests in
``tests/test_scenario_golden.py``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.registry import register
from repro.scenario.spec import Axis, Report, StopPolicy, Study, Variant

__all__ = [
    "BUILTIN_SPEC_DIR",
    "LOOKAHEAD_REFERENCE",
    "PAPER_SELECTORS",
    "ROUTER_VARIANTS",
    "TABLE_SCHEMES",
    "campaign_study",
    "cost_table_study",
    "es_programming_study",
    "lookahead_study",
    "message_length_study",
    "path_selection_study",
    "refine_sweep_study",
    "replicated_lookahead_study",
    "single_run_study",
    "spec_path",
    "sweep_study",
    "table_storage_study",
    "torus3d_adaptivity_study",
    "torus_tornado_study",
    "workload_allreduce_study",
    "workload_llm_decode_study",
]

#: Directory holding the shipped JSON instances of the built-in studies.
BUILTIN_SPEC_DIR = Path(__file__).resolve().parent

#: The four router organisations of Figure 5, as configuration overrides
#: (mirrors ``repro.core.experiments.lookahead.ROUTER_VARIANTS``).
ROUTER_VARIANTS: Dict[str, Dict[str, str]] = {
    "no-la-det": {"pipeline": "proud", "routing": "dimension-order"},
    "no-la-adapt": {"pipeline": "proud", "routing": "duato"},
    "la-det": {"pipeline": "la-proud", "routing": "dimension-order"},
    "la-adapt": {"pipeline": "la-proud", "routing": "duato"},
}

#: The organisation every other one is normalised against in Figure 5.
LOOKAHEAD_REFERENCE = "la-adapt"

#: The five heuristics evaluated in Figure 6, in the paper's legend order.
PAPER_SELECTORS = ("static-xy", "min-mux", "lfu", "lru", "max-credit")

#: Table 4 column name -> table organisation, in the paper's column order.
TABLE_SCHEMES: Dict[str, str] = {
    "meta_adaptive": "meta-block",
    "meta_deterministic": "meta-row",
    "economical": "economical",
}


def spec_path(name: str) -> Path:
    """Path of the shipped JSON spec of one built-in study."""
    return BUILTIN_SPEC_DIR / f"{name}.json"


def _base_dict(base_config: Optional[SimulationConfig], **overrides) -> Dict[str, object]:
    config = base_config if base_config is not None else SimulationConfig.small()
    if overrides:
        config = config.variant(**overrides)
    return config.to_dict()


# -- single run and sweep ---------------------------------------------------------


def single_run_study(
    config: Optional[SimulationConfig] = None, name: str = "run"
) -> Study:
    """One simulation of ``config``, reported as a flat summary row."""
    return Study(
        name=name,
        title="Single run",
        base=_base_dict(config),
        report=Report(reporter="summary"),
    )


def sweep_study(
    base_config: Optional[SimulationConfig] = None,
    loads: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    stop_at_saturation: bool = True,
    name: str = "sweep",
) -> Study:
    """Latency-versus-normalized-load sweep (the paper's curves).

    With ``stop_at_saturation`` the walk stops after the first saturated
    load; the saturated point itself is kept so tables can print "Sat."
    rows.
    """
    return Study(
        name=name,
        title="Latency versus normalized load",
        base=_base_dict(base_config),
        axes=(Axis(field="normalized_load", values=tuple(loads), label="load"),),
        stop=StopPolicy(mode="any") if stop_at_saturation else None,
        report=Report(reporter="sweep"),
    )


# -- the paper's experiments ------------------------------------------------------


def lookahead_study(
    base_config: Optional[SimulationConfig] = None,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3, 0.5),
    variants: Sequence[str] = tuple(ROUTER_VARIANTS),
) -> Study:
    """Figure 5: look-ahead and adaptivity comparison."""
    if LOOKAHEAD_REFERENCE not in variants:
        variants = tuple(variants) + (LOOKAHEAD_REFERENCE,)
    return Study(
        name="figure5",
        title="Figure 5 - look-ahead and adaptivity comparison",
        base=_base_dict(base_config),
        axes=(
            Axis(field="traffic", values=tuple(traffic_patterns)),
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="router",
                variants=tuple(
                    Variant(name=v, overrides=dict(ROUTER_VARIANTS[v])) for v in variants
                ),
            ),
        ),
        stop=StopPolicy(mode="reference", reference=LOOKAHEAD_REFERENCE),
        report=Report(
            reporter="reference-relative", options={"reference": LOOKAHEAD_REFERENCE}
        ),
    )


def message_length_study(
    base_config: Optional[SimulationConfig] = None,
    message_lengths: Sequence[int] = (5, 10, 20, 50),
    traffic: str = "uniform",
    load: float = 0.2,
) -> Study:
    """Table 3: impact of message length on the look-ahead benefit."""
    return Study(
        name="table3",
        title="Table 3 - look-ahead benefit versus message length",
        base=_base_dict(
            base_config, traffic=traffic, normalized_load=load, routing="duato"
        ),
        axes=(
            Axis(field="message_length", values=tuple(message_lengths)),
            Axis(
                name="router",
                variants=(
                    Variant(name="lookahead", overrides={"pipeline": "la-proud"}),
                    Variant(name="no_lookahead", overrides={"pipeline": "proud"}),
                ),
            ),
        ),
        report=Report(
            reporter="paired-improvement",
            options={"improved": "lookahead", "baseline": "no_lookahead"},
        ),
    )


def path_selection_study(
    base_config: Optional[SimulationConfig] = None,
    selectors: Sequence[str] = PAPER_SELECTORS,
    traffic_patterns: Sequence[str] = ("transpose",),
    loads: Sequence[float] = (0.2, 0.4),
) -> Study:
    """Figure 6: performance of the path-selection heuristics."""
    return Study(
        name="figure6",
        title="Figure 6 - path-selection heuristics",
        base=_base_dict(base_config, routing="duato", pipeline="la-proud"),
        axes=(
            Axis(field="traffic", values=tuple(traffic_patterns)),
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="selector",
                variants=tuple(
                    Variant(name=s, overrides={"selector": s}) for s in selectors
                ),
            ),
        ),
        report=Report(
            reporter="variant-grid", options={"per_variant": ["latency", "saturated"]}
        ),
    )


def table_storage_study(
    base_config: Optional[SimulationConfig] = None,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3),
    schemes: Optional[Dict[str, str]] = None,
    include_full_table: bool = False,
) -> Study:
    """Table 4: performance of the routing-table storage schemes."""
    if schemes is None:
        schemes = dict(TABLE_SCHEMES)
    if include_full_table and "full" not in schemes.values():
        schemes = dict(schemes)
        schemes["full_table"] = "full"
    return Study(
        name="table4",
        title="Table 4 - table-storage schemes",
        base=_base_dict(base_config, routing="duato", pipeline="la-proud"),
        axes=(
            Axis(field="traffic", values=tuple(traffic_patterns)),
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="scheme",
                variants=tuple(
                    Variant(name=column, overrides={"table": table})
                    for column, table in schemes.items()
                ),
            ),
        ),
        report=Report(
            reporter="variant-grid",
            options={"per_variant": ["latency", "saturated", "label"]},
        ),
    )


def cost_table_study(
    num_nodes: int = 256,
    n_dims: int = 2,
    num_ports: Optional[int] = None,
    meta_levels: int = 2,
) -> Study:
    """Table 5: storage-cost and property summary (analytic)."""
    return Study(
        name="table5",
        kind="analytic",
        title="Table 5 - storage cost summary",
        analytic="cost-table",
        options={
            "num_nodes": num_nodes,
            "n_dims": n_dims,
            "num_ports": num_ports,
            "meta_levels": meta_levels,
        },
    )


def es_programming_study(
    mesh_extent: int = 3, node_coords: Tuple[int, int] = (1, 1)
) -> Study:
    """Figure 7: economical-storage table programming example (analytic)."""
    return Study(
        name="figure7",
        kind="analytic",
        title="Figure 7 - economical-storage table programming (North-Last)",
        analytic="es-programming",
        options={"mesh_extent": mesh_extent, "node_coords": list(node_coords)},
    )


# -- statistically rigorous studies -----------------------------------------------


def replicated_lookahead_study(
    base_config: Optional[SimulationConfig] = None,
    replications: int = 5,
    seed_stride: int = 1,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3, 0.5),
    name: str = "figure5_replicated",
) -> Study:
    """Figure 5 with seed-replicated points and 95% CI columns.

    Every grid point fans out into ``replications`` runs at seeds
    ``seed, seed + seed_stride, ...`` through the execution backend;
    the reference-relative rows gain per-variant replicate counts and
    latency/throughput CI half-width columns (see
    :func:`repro.scenario.reporters.replication_columns`).
    """
    study = lookahead_study(base_config, traffic_patterns=traffic_patterns, loads=loads)
    return replace(
        study,
        name=name,
        title="Figure 5 (replicated) - look-ahead comparison with confidence intervals",
        base=_base_dict(
            base_config, replications=replications, seed_stride=seed_stride
        ),
    )


def refine_sweep_study(
    base_config: Optional[SimulationConfig] = None,
    loads: Sequence[float] = (0.1, 0.9),
    tolerance: float = 0.05,
    max_points: int = 12,
    replications: int = 1,
    name: str = "sweep_refine",
) -> Study:
    """Knee-seeking load sweep: bisect toward the saturation knee.

    The declared ``loads`` are only the coarse bracket; ``mode="refine"``
    bisects the load axis between the highest unsaturated and lowest
    saturated points until the bracket is within ``tolerance`` or
    ``max_points`` loads have been evaluated.  Reported through the
    ``confidence`` reporter so replicated runs print mean +- CI rows.
    """
    return Study(
        name=name,
        title="Saturation-knee refinement sweep",
        base=_base_dict(base_config, replications=replications),
        axes=(Axis(field="normalized_load", values=tuple(loads), label="load"),),
        stop=StopPolicy(mode="refine", tolerance=tolerance, max_points=max_points),
        report=Report(reporter="confidence"),
    )


# -- torus studies ----------------------------------------------------------------


def torus_tornado_study(
    base_config: Optional[SimulationConfig] = None,
    loads: Sequence[float] = (0.2, 0.4),
    name: str = "torus_tornado",
) -> Study:
    """Tornado traffic on a 2-D torus: the classic wraparound stressor.

    Tornado sends every node to the one ``extent // 2`` hops further
    around its own ring, so minimal routes lean maximally on the
    wraparound links -- the adversarial case for the dateline escape
    discipline, which every route with a crossing exercises.  Compares
    Duato's fully adaptive routing against plain dimension-order, both
    running over the two dateline escape classes.
    """
    return Study(
        name=name,
        title="Tornado on a torus - adaptivity over the dateline discipline",
        base=_base_dict(
            base_config,
            torus=True,
            num_escape_vcs=2,
            traffic="tornado",
            pipeline="la-proud",
        ),
        axes=(
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="router",
                variants=(
                    Variant(name="adaptive", overrides={"routing": "duato"}),
                    Variant(name="dor", overrides={"routing": "dimension-order"}),
                ),
            ),
        ),
        report=Report(
            reporter="variant-grid", options={"per_variant": ["latency", "saturated"]}
        ),
    )


def torus3d_adaptivity_study(
    base_config: Optional[SimulationConfig] = None,
    dims: Tuple[int, int, int] = (3, 3, 3),
    loads: Sequence[float] = (0.15, 0.3),
    z_link_delay: int = 2,
    name: str = "torus3d_adaptivity",
) -> Study:
    """Uniform traffic on a 3-D torus whose vertical links are slow.

    Models a stacked-die part: the ``torus3d`` topology with
    per-dimension ``link_delays`` makes the Z (through-silicon-via)
    links ``z_link_delay`` cycles against 1 in plane.  Adaptive routing
    can spread load around the slow dimension's congestion while
    dimension-order cannot, which is what the variant pair measures.
    """
    return Study(
        name=name,
        title="3-D torus with slow Z links - adaptivity comparison",
        base=_base_dict(
            base_config,
            mesh_dims=tuple(dims),
            topology="torus3d",
            num_escape_vcs=2,
            link_delays=(1, 1, z_link_delay),
            pipeline="la-proud",
        ),
        axes=(
            Axis(field="normalized_load", values=tuple(loads), label="load"),
            Axis(
                name="router",
                variants=(
                    Variant(name="adaptive", overrides={"routing": "duato"}),
                    Variant(name="dor", overrides={"routing": "dimension-order"}),
                ),
            ),
        ),
        report=Report(
            reporter="variant-grid", options={"per_variant": ["latency", "saturated"]}
        ),
    )


# -- closed-loop workload studies -------------------------------------------------


def workload_allreduce_study(
    base_config: Optional[SimulationConfig] = None,
    mesh_sizes: Sequence[Tuple[int, int]] = ((4, 4), (8, 8)),
    iters: int = 2,
    name: str = "workload_allreduce",
) -> Study:
    """Time-to-drain of a ring all-reduce across mesh sizes.

    Every node joins one all-network ring (``workload_group=0``); the
    drain reporter's critical-path-utilization column shows how much of
    the drain time is contention versus the DAG's inherent serial chain.
    """
    return Study(
        name=name,
        title="Closed-loop ring all-reduce - time to drain versus mesh size",
        base=_base_dict(
            base_config, workload="allreduce", workload_iters=iters, workload_group=0
        ),
        axes=(
            # List-valued (not tuple) so the study equals its JSON
            # round-trip, like every shipped mesh sweep.
            Axis(
                field="mesh_dims",
                values=tuple(list(m) for m in mesh_sizes),
                label="mesh",
            ),
        ),
        report=Report(reporter="drain"),
    )


def workload_llm_decode_study(
    base_config: Optional[SimulationConfig] = None,
    mesh_sizes: Sequence[Tuple[int, int]] = ((4, 4),),
    tp_degrees: Sequence[int] = (2, 4),
    layers: int = 2,
    hidden: int = 64,
    name: str = "workload_llm_decode",
) -> Study:
    """Time-to-drain of tensor-parallel LLM decode across TP degrees.

    Sweeps the tensor-parallel group size (``workload_group``) and the
    mesh size; each decode layer is a per-member compute step, a ring
    all-reduce inside the group and an activation hand-off to the next
    group.
    """
    return Study(
        name=name,
        title="Closed-loop LLM decode - time to drain versus TP degree",
        base=_base_dict(
            base_config,
            workload="llm-decode",
            workload_layers=layers,
            workload_hidden=hidden,
        ),
        axes=(
            Axis(
                field="mesh_dims",
                values=tuple(list(m) for m in mesh_sizes),
                label="mesh",
            ),
            Axis(field="workload_group", values=tuple(tp_degrees), label="tp"),
        ),
        report=Report(reporter="drain"),
    )


# -- the full campaign ------------------------------------------------------------


def campaign_study(
    base_config: Optional[SimulationConfig] = None,
    loads_low_high: Sequence[float] = (0.15, 0.4),
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
) -> Study:
    """The full reproduction campaign as a suite of the six experiments.

    Mirrors :func:`repro.core.campaign.run_campaign`: the (low, high)
    loads parameterize the latency experiments (Table 3 samples only the
    low load, Figure 6 only the high one).
    """
    config = base_config if base_config is not None else SimulationConfig.small()
    loads = tuple(loads_low_high)
    members = (
        lookahead_study(
            config, traffic_patterns=traffic_patterns, loads=loads
        ).with_title(
            "Figure 5 - look-ahead and adaptivity comparison",
            "the LA-ADAPT router is ~12-15% faster than the no-look-ahead routers "
            "at low load, and adaptivity dominates at high load on non-uniform traffic",
        ),
        message_length_study(config, load=loads[0]).with_title(
            "Table 3 - look-ahead benefit versus message length",
            "the relative improvement shrinks from 18% (5 flits) to 6.5% (50 flits)",
        ),
        path_selection_study(
            config, traffic_patterns=traffic_patterns, loads=loads[-1:]
        ).with_title(
            "Figure 6 - path-selection heuristics",
            "LRU, LFU and MAX-CREDIT beat STATIC-XY and MIN-MUX on the "
            "non-uniform patterns at medium-to-high load",
        ),
        table_storage_study(
            config,
            traffic_patterns=traffic_patterns,
            loads=loads,
            include_full_table=True,
        ).with_title(
            "Table 4 - table-storage schemes",
            "economical storage equals the full table; the meta-table mappings "
            "lose adaptivity and saturate earlier",
        ),
        cost_table_study(
            num_nodes=config.num_nodes, n_dims=len(config.mesh_dims)
        ).with_title(
            "Table 5 - storage cost summary",
            "economical storage needs 9 entries on any 2-D mesh vs N for the full table",
        ),
        es_programming_study().with_title(
            "Figure 7 - economical-storage table programming (North-Last)",
            "specific algorithms deny otherwise-minimal ports to stay deadlock free",
        ),
    )
    return Study(
        name="campaign",
        kind="suite",
        title="Reproduction campaign",
        base=config.to_dict(),
        members=members,
    )


# -- registered default-scale builders --------------------------------------------
#
# Zero-argument builders at SimulationConfig.tiny() scale, matching the CLI's
# historical `experiment --scale tiny` default; `repro.cli study <name>` loads
# the shipped JSON instances, which tests keep in sync with these builders.


@register("study", "run")
def _builtin_run() -> Study:
    """Single tiny-scale run of the default configuration."""
    return single_run_study(SimulationConfig.tiny())


@register("study", "sweep")
def _builtin_sweep() -> Study:
    """Tiny-scale latency/load sweep."""
    return sweep_study(SimulationConfig.tiny())


@register("study", "figure5")
def _builtin_figure5() -> Study:
    """Tiny-scale Figure 5 study."""
    return lookahead_study(SimulationConfig.tiny())


@register("study", "table3")
def _builtin_table3() -> Study:
    """Tiny-scale Table 3 study."""
    return message_length_study(SimulationConfig.tiny())


@register("study", "figure6")
def _builtin_figure6() -> Study:
    """Tiny-scale Figure 6 study."""
    return path_selection_study(SimulationConfig.tiny())


@register("study", "table4")
def _builtin_table4() -> Study:
    """Tiny-scale Table 4 study (including the full-table column)."""
    return table_storage_study(SimulationConfig.tiny(), include_full_table=True)


@register("study", "table5")
def _builtin_table5() -> Study:
    """Table 5 cost summary for the tiny 4x4 mesh."""
    tiny = SimulationConfig.tiny()
    return cost_table_study(num_nodes=tiny.num_nodes, n_dims=len(tiny.mesh_dims))


@register("study", "figure7")
def _builtin_figure7() -> Study:
    """The paper's 3x3 Figure 7 programming example."""
    return es_programming_study()


@register("study", "campaign")
def _builtin_campaign() -> Study:
    """Tiny-scale full campaign suite."""
    return campaign_study(SimulationConfig.tiny())


@register("study", "figure5_replicated")
def _builtin_figure5_replicated() -> Study:
    """Tiny-scale replicated Figure 5 study (5 seeds per point)."""
    return replicated_lookahead_study(SimulationConfig.tiny())


@register("study", "sweep_refine")
def _builtin_sweep_refine() -> Study:
    """Knee-refinement sweep on the curve with a knee inside the bracket.

    Transpose under dimension-order routing on an 8x8 mesh saturates
    around load 0.65 at this run length, so the (0.2, 1.0) coarse
    bracket genuinely bisects (4x4 tiny-scale runs drain everything the
    budget offers and never trip the saturation detector).
    """
    return refine_sweep_study(
        SimulationConfig.tiny(
            mesh_dims=(8, 8),
            traffic="transpose",
            routing="dimension-order",
            message_length=20,
            warmup_messages=150,
            measure_messages=1_200,
        ),
        loads=(0.2, 1.0),
        tolerance=0.2,
        max_points=8,
    )


@register("study", "torus_tornado")
def _builtin_torus_tornado() -> Study:
    """Tiny-scale tornado-on-torus study."""
    return torus_tornado_study(SimulationConfig.tiny(num_escape_vcs=2))


@register("study", "torus3d_adaptivity")
def _builtin_torus3d_adaptivity() -> Study:
    """Tiny-scale 3-D torus slow-Z adaptivity study."""
    return torus3d_adaptivity_study(SimulationConfig.tiny(num_escape_vcs=2))


@register("study", "workload_allreduce")
def _builtin_workload_allreduce() -> Study:
    """Tiny-scale ring all-reduce drain study."""
    return workload_allreduce_study(
        SimulationConfig.tiny(), mesh_sizes=((2, 2), (4, 4))
    )


@register("study", "workload_llm_decode")
def _builtin_workload_llm_decode() -> Study:
    """Tiny-scale tensor-parallel LLM-decode drain study."""
    return workload_llm_decode_study(SimulationConfig.tiny())
