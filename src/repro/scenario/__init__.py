"""Declarative scenario layer: specs, reporters, built-ins and the runner.

Workloads are *data* here, not code: a :class:`Scenario` (one run) or
:class:`Study` (a named grid/list/suite of runs) round-trips to plain
JSON, expands deterministically into configuration batches and executes
through the existing execution backend and result cache via one
:func:`run_study` entry point::

    from repro.scenario import load_study, run_study

    outcome = run_study(load_study("figure5"))       # built-in spec
    outcome = run_study(load_study("my_study.json"))  # spec file
    print(outcome.to_markdown())

New components referenced by a spec (traffic patterns, selectors, ...)
are registered through :mod:`repro.registry`, either by importing the
defining module first or by listing it in the spec's ``plugins`` field.
"""

from __future__ import annotations

import os
from pathlib import Path

import repro.scenario.reporters  # noqa: F401  (registers the built-in reporters)
from repro.registry import STUDIES
from repro.scenario.runner import StudyResult, run_study
from repro.scenario.spec import (
    Axis,
    Coord,
    Report,
    Scenario,
    StopPolicy,
    Study,
    StudyPoint,
    Variant,
)

__all__ = [
    "Axis",
    "Coord",
    "Report",
    "Scenario",
    "StopPolicy",
    "Study",
    "StudyPoint",
    "StudyResult",
    "Variant",
    "load_study",
    "run_study",
]


def _anchor_plugins(study: Study, base_dir: Path) -> Study:
    """Resolve relative ``.py`` plugin paths against the spec's directory.

    Spec files name their plugins relative to themselves (the natural way
    to check a spec plus plugin into a repo); resolving here makes the
    spec runnable from any working directory.  Applied recursively to
    suite members.
    """
    import dataclasses

    def resolve(plugin: str) -> str:
        if plugin.endswith(".py") and not Path(plugin).is_absolute():
            return str((base_dir / plugin).resolve())
        return plugin

    changes = {}
    if study.plugins:
        changes["plugins"] = tuple(resolve(plugin) for plugin in study.plugins)
    if study.members:
        changes["members"] = tuple(
            _anchor_plugins(member, base_dir) for member in study.members
        )
    return dataclasses.replace(study, **changes) if changes else study


def load_study(source) -> Study:
    """Load a study from a JSON spec file or a built-in study name.

    ``source`` may be a filesystem path (anything existing on disk, or
    ending in ``.json``) or the name of a registered built-in study
    (``figure5``, ``table3``, ..., ``sweep``, ``campaign``).  Relative
    ``.py`` plugin paths in a spec file are resolved against the spec's
    own directory.
    """
    path = Path(source)
    if path.suffix == ".json" or path.exists():
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ValueError(f"cannot read study spec {str(source)!r}: {error}") from None
        try:
            study = Study.from_json(text)
        except ValueError:
            raise
        except (KeyError, TypeError) as error:
            # Malformed spec shapes (missing axis "field", wrong types)
            # surface as one uniform error instead of raw tracebacks.
            raise ValueError(
                f"invalid study spec {str(source)!r}: {error!r}"
            ) from error
        return _anchor_plugins(study, path.resolve().parent)
    name = os.fspath(source)
    builder = STUDIES.get(name)  # raises with the registered alternatives
    return builder()
