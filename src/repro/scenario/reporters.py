"""Built-in study reporters: turn executed points into report rows.

A *reporter* is a registered function ``reporter(study, points, results,
**options) -> List[Dict]`` that shapes the raw
:class:`~repro.core.results.SimulationResult` batch of a grid study into
the row dictionaries printed by the CLI and the Markdown reports.  The
row layouts here reproduce the legacy experiment runners column for
column (the golden tests compare them), and user code can register new
reporters via ``repro.registry.register("reporter", name)``.

Rows are grouped by the study's **value-axis** coordinates in expansion
order; **variant-axis** coordinates become per-variant columns inside a
row, mirroring how the paper's tables put router organisations, selection
heuristics and table schemes side by side.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.registry import register
from repro.scenario.spec import Study, StudyPoint

__all__ = [
    "confidence_reporter",
    "drain_reporter",
    "grouped_by_value_coords",
    "paired_improvement_reporter",
    "reference_relative_reporter",
    "replication_columns",
    "summary_reporter",
    "sweep_reporter",
    "variant_grid_reporter",
]


def replication_columns(
    result: SimulationResult, prefix: str = ""
) -> Dict[str, object]:
    """Confidence-interval columns of a replicated result (else empty).

    For a result merged from ``replications`` seed-offset runs (see
    :func:`repro.stats.confidence.merge_replicates`) returns the
    replicate count plus the latency/throughput CI half-widths, named
    ``{prefix}n`` / ``{prefix}latency_ci95`` / ``{prefix}throughput_ci95``
    (the ``95`` tracks the block's confidence level).  Single-seed
    results produce no columns, so unreplicated studies keep their
    legacy row layouts byte for byte.
    """
    block = result.replicates
    if not block:
        return {}
    tag = f"ci{round(float(block.get('level', 0.95)) * 100)}"
    columns: Dict[str, object] = {f"{prefix}n": block.get("count", 0)}
    for metric in ("latency", "throughput"):
        interval = block.get(metric)
        if interval:
            columns[f"{prefix}{metric}_{tag}"] = interval["half_width"]
    return columns


def grouped_by_value_coords(
    points: Sequence[StudyPoint], results: Sequence[SimulationResult]
) -> List[Tuple[Dict[str, object], Dict[str, SimulationResult]]]:
    """Group executed points by their value-axis coordinates.

    Returns one ``(coords, by_variant)`` pair per distinct value-coordinate
    combination, in first-appearance order; ``by_variant`` maps variant
    name to result (key ``""`` when the study has no variant axis), in
    expansion order.
    """
    def hashable(value: object) -> object:
        # JSON specs deliver list-valued axis points (e.g. mesh_dims
        # sweeps); group keys need them hashable.
        if isinstance(value, list):
            return tuple(hashable(item) for item in value)
        return value

    groups: List[Tuple[Dict[str, object], Dict[str, SimulationResult]]] = []
    group_of: Dict[Tuple, Dict[str, SimulationResult]] = {}
    for point, result in zip(points, results):
        key = tuple(
            (c.label, hashable(c.value)) for c in point.coords if not c.is_variant
        )
        by_variant = group_of.get(key)
        if by_variant is None:
            by_variant = {}
            group_of[key] = by_variant
            groups.append((dict(key), by_variant))
        by_variant[point.variant or ""] = result
    return groups


@register("reporter", "summary")
def summary_reporter(
    study: Study, points: Sequence[StudyPoint], results: Sequence[SimulationResult]
) -> List[Dict[str, object]]:
    """One flat summary row per executed point (the ``run`` CLI layout)."""
    rows: List[Dict[str, object]] = []
    for result in results:
        row = result.as_dict()
        row.update(replication_columns(result))
        rows.append(row)
    return rows


@register("reporter", "sweep")
def sweep_reporter(
    study: Study, points: Sequence[StudyPoint], results: Sequence[SimulationResult]
) -> List[Dict[str, object]]:
    """One latency/load row per point (the ``sweep`` CLI layout)."""
    rows: List[Dict[str, object]] = []
    for point, result in zip(points, results):
        row: Dict[str, object] = {
            "load": point.config.normalized_load,
            "latency": result.latency_label(),
            "network_latency": result.summary.avg_network_latency,
            "throughput": result.summary.throughput,
            "saturated": result.saturated,
        }
        row.update(replication_columns(result))
        rows.append(row)
    return rows


@register("reporter", "drain")
def drain_reporter(
    study: Study, points: Sequence[StudyPoint], results: Sequence[SimulationResult]
) -> List[Dict[str, object]]:
    """One time-to-drain row per closed-loop workload point.

    Each row carries the point's axis coordinates plus the drain block
    of the result: whether the DAG drained inside the cycle budget, the
    cycle its last step completed, the analytic contention-free critical
    path and their ratio (critical-path utilization -- 1.0 means the
    network added no contention delay at all).
    """
    rows: List[Dict[str, object]] = []
    for point, result in zip(points, results):
        drain = result.drain or {}
        row: Dict[str, object] = {
            coord.label: coord.value for coord in point.coords
        }
        row["drained"] = bool(drain.get("drained", False))
        row["time_to_drain"] = drain.get("time_to_drain", result.cycles)
        row["critical_path"] = drain.get("critical_path_cycles", 0)
        row["cp_utilization"] = drain.get("critical_path_utilization", 0.0)
        row["transfers"] = drain.get("transfers", 0)
        row["avg_latency"] = result.latency
        rows.append(row)
    return rows


@register("reporter", "variant-grid")
def variant_grid_reporter(
    study: Study,
    points: Sequence[StudyPoint],
    results: Sequence[SimulationResult],
    per_variant: Sequence[str] = ("latency", "saturated"),
) -> List[Dict[str, object]]:
    """One row per value-coordinate group, one column set per variant.

    ``per_variant`` selects the columns written for each variant ``v``:
    ``latency`` (``{v}_latency``), ``saturated`` (``{v}_saturated``) and
    ``label`` (``{v}_label``, the paper's "Sat."-style rendering).
    Reproduces the Figure 6 and Table 4 row layouts.
    """
    rows: List[Dict[str, object]] = []
    for coords, by_variant in grouped_by_value_coords(points, results):
        row: Dict[str, object] = dict(coords)
        for variant, result in by_variant.items():
            if "latency" in per_variant:
                row[f"{variant}_latency"] = result.latency
            if "saturated" in per_variant:
                row[f"{variant}_saturated"] = result.saturated
            if "label" in per_variant:
                row[f"{variant}_label"] = result.latency_label()
            row.update(replication_columns(result, prefix=f"{variant}_"))
        rows.append(row)
    return rows


@register("reporter", "reference-relative")
def reference_relative_reporter(
    study: Study,
    points: Sequence[StudyPoint],
    results: Sequence[SimulationResult],
    reference: str,
) -> List[Dict[str, object]]:
    """Per-variant latencies plus percentage increase over a reference.

    Reproduces the Figure 5 row layout: the reference variant's absolute
    numbers first, then every other variant's latency, saturation flag
    and percentage latency increase over the reference (positive = slower
    than the reference, the way the paper's bars read).
    """
    prefix = reference.replace("-", "_")
    rows: List[Dict[str, object]] = []
    for coords, by_variant in grouped_by_value_coords(points, results):
        if reference not in by_variant:
            raise ValueError(
                f"reference variant {reference!r} missing from study {study.name!r}"
            )
        ref = by_variant[reference]
        row: Dict[str, object] = dict(coords)
        row[f"{prefix}_latency"] = ref.latency
        row[f"{prefix}_saturated"] = ref.saturated
        row.update(replication_columns(ref, prefix=f"{prefix}_"))
        for variant, result in by_variant.items():
            if variant == reference:
                continue
            row[f"{variant}_latency"] = result.latency
            row[f"{variant}_saturated"] = result.saturated
            row.update(replication_columns(result, prefix=f"{variant}_"))
            if ref.latency > 0:
                increase = 100.0 * (result.latency - ref.latency) / ref.latency
            else:
                increase = 0.0
            row[f"{variant}_pct_increase"] = increase
        rows.append(row)
    return rows


@register("reporter", "paired-improvement")
def paired_improvement_reporter(
    study: Study,
    points: Sequence[StudyPoint],
    results: Sequence[SimulationResult],
    improved: str,
    baseline: str,
) -> List[Dict[str, object]]:
    """Two-variant comparison with a percentage-improvement column.

    Reproduces the Table 3 row layout: the ``improved`` and ``baseline``
    variants' latencies, the relative improvement of ``improved`` over
    ``baseline`` and a combined saturation flag.
    """
    rows: List[Dict[str, object]] = []
    for coords, by_variant in grouped_by_value_coords(points, results):
        for needed in (improved, baseline):
            if needed not in by_variant:
                raise ValueError(
                    f"variant {needed!r} missing from study {study.name!r}"
                )
        better = by_variant[improved]
        base = by_variant[baseline]
        if base.latency > 0:
            improvement = 100.0 * (base.latency - better.latency) / base.latency
        else:
            improvement = 0.0
        row: Dict[str, object] = dict(coords)
        row[f"{improved}_latency"] = better.latency
        row[f"{baseline}_latency"] = base.latency
        row["pct_improvement"] = improvement
        row["saturated"] = better.saturated or base.saturated
        rows.append(row)
    return rows


@register("reporter", "confidence")
def confidence_reporter(
    study: Study, points: Sequence[StudyPoint], results: Sequence[SimulationResult]
) -> List[Dict[str, object]]:
    """One row per point with replicate counts and mean +- CI statistics.

    The statistically-rigorous sweep layout: axis coordinates, replicate
    count ``n``, mean latency with its CI half-width and across-replicate
    standard deviation, mean throughput with its half-width, the p50/p99
    latency estimates and the saturation flag.  Single-seed points print
    ``n=1`` with zero half-widths.
    """
    rows: List[Dict[str, object]] = []
    for point, result in zip(points, results):
        block = result.replicates or {}
        latency_ci = block.get("latency") or {}
        throughput_ci = block.get("throughput") or {}
        row: Dict[str, object] = {c.label: c.value for c in point.coords}
        row["n"] = block.get("count", 1)
        row["latency"] = result.latency
        row["latency_ci95"] = latency_ci.get("half_width", 0.0)
        row["latency_std"] = latency_ci.get("std", 0.0)
        row["throughput"] = result.summary.throughput
        row["throughput_ci95"] = throughput_ci.get("half_width", 0.0)
        row["p50"] = result.summary.p50_total_latency
        row["p99"] = result.summary.p99_total_latency
        row["saturated"] = result.saturated
        rows.append(row)
    return rows
