"""Execute declarative studies through the execution backend.

:func:`run_study` is the single entry point of the scenario layer: it
expands a :class:`~repro.scenario.spec.Study` into configuration batches,
submits them through an :class:`~repro.exec.backend.ExecutionBackend`
(serial or process pool, with optional
:class:`~repro.exec.cache.ResultCache`), applies the study's saturation
stop policy and reporter, and returns a :class:`StudyResult`.

Every simulation is seeded by its configuration alone, so the outcome is
bit-identical whichever backend runs it -- which is what lets the legacy
``run_*`` experiment functions survive as thin shims over this path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import (
    SimulationResult,
    render_campaign_header,
    render_report_section,
)
from repro.exec.backend import ExecutionBackend, SerialBackend
from repro.registry import ANALYTICS, REPORTERS, load_plugin
from repro.scenario.spec import Study, StudyPoint

__all__ = ["StudyResult", "run_study"]


@dataclass(frozen=True)
class StudyResult:
    """Everything produced by one :func:`run_study` call."""

    #: The study that was run.
    study: Study
    #: The points actually executed, in order (truncated by stop policies).
    points: Tuple[StudyPoint, ...]
    #: Simulation results aligned with ``points`` (empty for analytic/suite).
    results: Tuple[SimulationResult, ...]
    #: Reporter output: one dictionary per report row.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: Member results, for suite studies.
    members: Tuple["StudyResult", ...] = ()

    def member(self, name: str) -> "StudyResult":
        """Look up one member result of a suite by its study name."""
        for member in self.members:
            if member.study.name == name:
                return member
        raise KeyError(f"no member study named {name!r} in {self.study.name!r}")

    def to_markdown(self) -> str:
        """Render the study as Markdown, matching the legacy campaign report."""
        if self.study.kind == "suite":
            return render_campaign_header(self.study.base_config()) + "\n".join(
                member.to_markdown() for member in self.members
            )
        return render_report_section(
            self.study.title or self.study.name,
            self.study.paper_claim or "(not stated)",
            self.rows,
            columns=self.study.report.columns,
        )


def _reference_result(
    study: Study,
    batch_points: Sequence[StudyPoint],
    batch_results: Sequence[SimulationResult],
    reference: str,
) -> SimulationResult:
    for point, result in zip(batch_points, batch_results):
        if point.variant == reference:
            return result
    raise ValueError(
        f"stop policy of study {study.name!r} references variant {reference!r}, "
        "which is not part of the expanded batch"
    )


def _run_grid_with_stop(
    study: Study, points: List[StudyPoint], backend: ExecutionBackend
) -> Tuple[List[StudyPoint], List[SimulationResult]]:
    """Walk the grid along the stop axis, truncating at saturation.

    The stop axis is the last value axis; the (variant) axes after it form
    the per-step batch.  ``mode="any"`` walks steps in waves of
    ``backend.wave_size`` (the load-sweep semantics: a parallel wave may
    simulate -- and cache -- a few points past saturation, but the
    returned points always truncate at the first saturated step);
    ``mode="reference"`` simulates one batch per step and stops when the
    reference variant saturates.
    """
    stop = study.stop
    assert stop is not None
    stop_index = max(i for i, axis in enumerate(study.axes) if not axis.is_variant)
    stop_axis = study.axes[stop_index]
    inner_count = 1
    for axis in study.axes[stop_index + 1 :]:
        inner_count *= len(axis)
    steps_per_group = len(stop_axis)
    per_group = steps_per_group * inner_count

    executed: List[StudyPoint] = []
    results: List[SimulationResult] = []
    for group_start in range(0, len(points), per_group):
        group = points[group_start : group_start + per_group]
        if stop.mode == "reference":
            for step_start in range(0, len(group), inner_count):
                batch = group[step_start : step_start + inner_count]
                batch_results = backend.run_configs([p.config for p in batch])
                executed.extend(batch)
                results.extend(batch_results)
                reference = _reference_result(study, batch, batch_results, stop.reference)
                if reference.saturated:
                    break
        else:  # mode == "any"
            wave_points = max(1, backend.wave_size) * inner_count
            stopped = False
            for wave_start in range(0, len(group), wave_points):
                wave = group[wave_start : wave_start + wave_points]
                wave_results = backend.run_configs([p.config for p in wave])
                for step_start in range(0, len(wave), inner_count):
                    batch = wave[step_start : step_start + inner_count]
                    batch_results = wave_results[step_start : step_start + inner_count]
                    executed.extend(batch)
                    results.extend(batch_results)
                    if any(result.saturated for result in batch_results):
                        stopped = True
                        break
                if stopped:
                    break
    return executed, results


def run_study(
    study: Study, backend: Optional[ExecutionBackend] = None
) -> StudyResult:
    """Run a study and return its :class:`StudyResult`.

    Grid points are submitted through ``backend`` (default: a fresh
    :class:`~repro.exec.backend.SerialBackend`); cached points are served
    from disk when the backend carries a
    :class:`~repro.exec.cache.ResultCache`.  Analytic studies run no
    simulations and need no backend.  Suite members share the one backend.
    """
    for plugin in study.plugins:
        load_plugin(plugin)
    if study.kind == "suite":
        if any(member.kind == "grid" for member in study.members):
            backend = backend if backend is not None else SerialBackend()
        members = tuple(run_study(member, backend) for member in study.members)
        return StudyResult(study=study, points=(), results=(), rows=[], members=members)
    if study.kind == "analytic":
        analytic = ANALYTICS.get(study.analytic)
        rows = analytic(**study.options)
        return StudyResult(study=study, points=(), results=(), rows=rows)
    # grid
    points = study.expand()
    backend = backend if backend is not None else SerialBackend()
    if study.stop is None:
        executed = points
        results = backend.run_configs([point.config for point in points])
    else:
        executed, results = _run_grid_with_stop(study, points, backend)
    reporter = REPORTERS.get(study.report.reporter)
    rows = reporter(study, executed, results, **study.report.options)
    return StudyResult(
        study=study,
        points=tuple(executed),
        results=tuple(results),
        rows=rows,
    )
