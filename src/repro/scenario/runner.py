"""Execute declarative studies through the execution backend.

:func:`run_study` is the single entry point of the scenario layer: it
expands a :class:`~repro.scenario.spec.Study` into configuration batches,
submits them through an :class:`~repro.exec.backend.ExecutionBackend`
(serial or process pool, with optional
:class:`~repro.exec.cache.ResultCache`), applies the study's saturation
stop policy and reporter, and returns a :class:`StudyResult`.

Every simulation is seeded by its configuration alone, so the outcome is
bit-identical whichever backend runs it -- which is what lets the legacy
``run_*`` experiment functions survive as thin shims over this path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import (
    SimulationResult,
    render_campaign_header,
    render_report_section,
)
from repro.exec.backend import ExecutionBackend, SerialBackend
from repro.registry import ANALYTICS, REPORTERS, load_plugin
from repro.scenario.spec import Axis, Coord, Scenario, StopPolicy, Study, StudyPoint

__all__ = ["StudyResult", "run_study"]


@dataclass(frozen=True)
class StudyResult:
    """Everything produced by one :func:`run_study` call."""

    #: The study that was run.
    study: Study
    #: The points actually executed, in order (truncated by stop policies).
    points: Tuple[StudyPoint, ...]
    #: Simulation results aligned with ``points`` (empty for analytic/suite).
    results: Tuple[SimulationResult, ...]
    #: Reporter output: one dictionary per report row.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: Member results, for suite studies.
    members: Tuple["StudyResult", ...] = ()

    def member(self, name: str) -> "StudyResult":
        """Look up one member result of a suite by its study name."""
        for member in self.members:
            if member.study.name == name:
                return member
        raise KeyError(f"no member study named {name!r} in {self.study.name!r}")

    def to_markdown(self) -> str:
        """Render the study as Markdown, matching the legacy campaign report."""
        if self.study.kind == "suite":
            return render_campaign_header(self.study.base_config()) + "\n".join(
                member.to_markdown() for member in self.members
            )
        return render_report_section(
            self.study.title or self.study.name,
            self.study.paper_claim or "(not stated)",
            self.rows,
            columns=self.study.report.columns,
        )


def _reference_result(
    study: Study,
    batch_points: Sequence[StudyPoint],
    batch_results: Sequence[SimulationResult],
    reference: str,
) -> SimulationResult:
    for point, result in zip(batch_points, batch_results):
        if point.variant == reference:
            return result
    raise ValueError(
        f"stop policy of study {study.name!r} references variant {reference!r}, "
        "which is not part of the expanded batch"
    )


def _step_saturated(
    study: Study,
    stop: StopPolicy,
    batch: Sequence[StudyPoint],
    batch_results: Sequence[SimulationResult],
) -> bool:
    """Whether one stop-axis step counts as saturated under ``stop``.

    ``mode="reference"`` (and ``mode="refine"`` with a reference set)
    asks the reference variant; otherwise any saturated scenario in the
    batch counts.
    """
    if stop.mode == "reference" or (stop.mode == "refine" and stop.reference):
        return _reference_result(study, batch, batch_results, stop.reference).saturated
    return any(result.saturated for result in batch_results)


def _point_at(point: StudyPoint, stop_axis: Axis, value: float) -> StudyPoint:
    """A copy of ``point`` moved to ``value`` on the stop axis.

    Rebuilds the coordinate tuple, the scenario name (the same
    ``label=value`` join :meth:`Study.expand` uses) and the configuration,
    so refinement points are indistinguishable from expanded ones.
    """
    label = stop_axis.report_label
    coords = tuple(
        Coord(label, value, False) if c.label == label and not c.is_variant else c
        for c in point.coords
    )
    overrides = dict(point.scenario.overrides)
    overrides[stop_axis.field] = value
    name = "/".join(f"{c.label}={c.value}" for c in coords)
    return StudyPoint(
        scenario=Scenario(name=name, overrides=overrides),
        coords=coords,
        config=point.config.variant(**{stop_axis.field: value}),
    )


def _refine_group(
    study: Study,
    stop: StopPolicy,
    stop_axis: Axis,
    group: List[StudyPoint],
    inner_count: int,
    backend: ExecutionBackend,
    executed: List[StudyPoint],
    results: List[SimulationResult],
) -> None:
    """Bisect one group's stop axis toward the saturation knee.

    The declared stop-axis values are the coarse seed grid, evaluated as
    one ``run_configs`` wave; each bisection step simulates the midpoint
    batch of the tightest (unsaturated, saturated) value bracket until
    the bracket is within ``stop.tolerance`` or ``stop.max_points``
    stop-axis steps (seed grid included) have been evaluated.  Every wave
    goes through ``backend.run_configs`` and the executed order depends
    only on the saturation flags, so serial and pool backends produce
    byte-identical rows.
    """
    group_results = backend.run_configs([p.config for p in group])
    executed.extend(group)
    results.extend(group_results)
    steps: List[Tuple[float, List[StudyPoint], List[SimulationResult]]] = []
    for step_start in range(0, len(group), inner_count):
        batch = group[step_start : step_start + inner_count]
        batch_results = group_results[step_start : step_start + inner_count]
        value = float(batch[0].coord(stop_axis.report_label))
        steps.append((value, batch, batch_results))
    evaluated = len(steps)
    saturated_values = []
    unsaturated_values = []
    for value, batch, batch_results in steps:
        if _step_saturated(study, stop, batch, batch_results):
            saturated_values.append(value)
        else:
            unsaturated_values.append(value)
    if not saturated_values:
        return  # The knee lies above the declared grid; nothing to bisect.
    high = min(saturated_values)
    below = [value for value in unsaturated_values if value < high]
    if not below:
        return  # The knee lies below the declared grid.
    low = max(below)
    template = steps[0][1]
    while high - low > stop.tolerance and (
        stop.max_points == 0 or evaluated < stop.max_points
    ):
        mid = (low + high) / 2.0
        batch = [_point_at(point, stop_axis, mid) for point in template]
        batch_results = backend.run_configs([p.config for p in batch])
        executed.extend(batch)
        results.extend(batch_results)
        evaluated += 1
        if _step_saturated(study, stop, batch, batch_results):
            high = mid
        else:
            low = mid


def _run_grid_with_stop(
    study: Study, points: List[StudyPoint], backend: ExecutionBackend
) -> Tuple[List[StudyPoint], List[SimulationResult]]:
    """Walk the grid along the stop axis, truncating at saturation.

    The stop axis is the last value axis; the (variant) axes after it form
    the per-step batch.  ``mode="any"`` and ``mode="reference"`` walk
    steps in speculative waves of ``backend.wave_size`` (a parallel wave
    may simulate -- and cache -- a few points past saturation, but the
    returned points always truncate at the first stopping step, so the
    rows are byte-identical to the serial walk); the two modes differ
    only in which result decides a step (any scenario of the batch versus
    the reference variant).  ``mode="refine"`` evaluates the declared
    grid as one wave and then bisects toward the saturation knee (see
    :func:`_refine_group`).
    """
    stop = study.stop
    assert stop is not None
    stop_index = max(i for i, axis in enumerate(study.axes) if not axis.is_variant)
    stop_axis = study.axes[stop_index]
    inner_count = 1
    for axis in study.axes[stop_index + 1 :]:
        inner_count *= len(axis)
    steps_per_group = len(stop_axis)
    per_group = steps_per_group * inner_count

    executed: List[StudyPoint] = []
    results: List[SimulationResult] = []
    for group_start in range(0, len(points), per_group):
        group = points[group_start : group_start + per_group]
        if stop.mode == "refine":
            _refine_group(
                study, stop, stop_axis, group, inner_count, backend, executed, results
            )
            continue
        wave_points = max(1, backend.wave_size) * inner_count
        stopped = False
        for wave_start in range(0, len(group), wave_points):
            wave = group[wave_start : wave_start + wave_points]
            wave_results = backend.run_configs([p.config for p in wave])
            for step_start in range(0, len(wave), inner_count):
                batch = wave[step_start : step_start + inner_count]
                batch_results = wave_results[step_start : step_start + inner_count]
                executed.extend(batch)
                results.extend(batch_results)
                if _step_saturated(study, stop, batch, batch_results):
                    stopped = True
                    break
            if stopped:
                break
    return executed, results


def run_study(
    study: Study, backend: Optional[ExecutionBackend] = None
) -> StudyResult:
    """Run a study and return its :class:`StudyResult`.

    Grid points are submitted through ``backend`` (default: a fresh
    :class:`~repro.exec.backend.SerialBackend`); cached points are served
    from disk when the backend carries a
    :class:`~repro.exec.cache.ResultCache`.  Analytic studies run no
    simulations and need no backend.  Suite members share the one backend.
    """
    for plugin in study.plugins:
        load_plugin(plugin)
    if study.kind == "suite":
        if any(member.kind == "grid" for member in study.members):
            backend = backend if backend is not None else SerialBackend()
        members = tuple(run_study(member, backend) for member in study.members)
        return StudyResult(study=study, points=(), results=(), rows=[], members=members)
    if study.kind == "analytic":
        analytic = ANALYTICS.get(study.analytic)
        rows = analytic(**study.options)
        return StudyResult(study=study, points=(), results=(), rows=rows)
    # grid
    points = study.expand()
    backend = backend if backend is not None else SerialBackend()
    if study.stop is None:
        executed = points
        results = backend.run_configs([point.config for point in points])
    else:
        executed, results = _run_grid_with_stop(study, points, backend)
    reporter = REPORTERS.get(study.report.reporter)
    rows = reporter(study, executed, results, **study.report.options)
    return StudyResult(
        study=study,
        points=tuple(executed),
        results=tuple(results),
        rows=rows,
    )
