"""Named, introspectable plugin registries for every pluggable component.

The simulator is assembled from eleven kinds of interchangeable parts --
topologies, routing algorithms, routing-table organisations,
path-selection heuristics, traffic patterns, injection processes, router
pipelines, switch-allocation schedules, link-transport schedules, core
schedules and closed-loop workloads -- plus the scenario layer's
reporters, analytic experiments and built-in studies.  Each kind has a :class:`Registry`
mapping report names (the strings stored in
:class:`~repro.core.config.SimulationConfig`) to factories, so user code
can plug in new components without touching repro internals::

    from repro.registry import register
    from repro.traffic.patterns import TrafficPattern

    @register("traffic", "diagonal")
    class DiagonalPattern(TrafficPattern):
        name = "diagonal"

        def destination(self, source, rng):
            ...

Factory signatures by kind (what the simulator calls for each entry):

=============  ==========================================================
``topology``   ``factory(config) -> Topology``
``table``      ``factory(topology, config) -> RoutingTable``
``routing``    ``factory(topology, table, config) -> RoutingAlgorithm``
``selector``   ``factory(rng) -> PathSelector``
``traffic``    ``factory(topology, **kwargs) -> TrafficPattern``
``injection``  ``factory(config, rate) -> InjectionProcess``
``pipeline``   a :class:`~repro.router.pipeline.PipelineTiming` instance
``switch``     a :class:`~repro.router.switch.SwitchSchedule` instance
``link``       a :class:`~repro.network.link.LinkSchedule` instance
``core``       a :class:`~repro.network.flatcore.CoreSchedule` instance
``workload``   ``factory(config, topology) -> WorkloadDag``
``reporter``   ``reporter(study, points, results, **options) -> rows``
``analytic``   ``analytic(**options) -> rows``
``study``      ``builder() -> Study`` (default-parameter built-in study)
=============  ==========================================================

Built-in components register themselves when their defining module is
imported; each registry lazily imports those modules on first lookup, so
``TRAFFIC_PATTERNS.names()`` is complete without any explicit bootstrap.
Every entry records a *provenance* string (``module:qualname``) which is
folded into the result-cache key, so a result computed with a plugin
component can never be served for a same-named but different one.
"""

from __future__ import annotations

import importlib
import importlib.util
import re
import sys
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ANALYTICS",
    "CORE_MODES",
    "INJECTIONS",
    "LINK_MODES",
    "PIPELINES",
    "REGISTRIES",
    "REPORTERS",
    "ROUTING_ALGORITHMS",
    "ROUTING_TABLES",
    "Registry",
    "RegistryEntry",
    "SELECTORS",
    "STUDIES",
    "SWITCH_MODES",
    "TOPOLOGIES",
    "TRAFFIC_PATTERNS",
    "WORKLOADS",
    "describe_registries",
    "load_plugin",
    "register",
    "validate_config_names",
]


class RegistryEntry:
    """One registered component: its name, factory and origin."""

    __slots__ = ("name", "factory", "provenance", "summary")

    def __init__(self, name: str, factory: object, provenance: str, summary: str) -> None:
        self.name = name
        self.factory = factory
        #: ``module:qualname`` of the factory -- folded into cache keys.
        self.provenance = provenance
        #: First docstring line, for introspection listings.
        self.summary = summary

    def __repr__(self) -> str:
        return f"RegistryEntry({self.name!r}, provenance={self.provenance!r})"


def _provenance_of(obj: object) -> str:
    module = getattr(obj, "__module__", None) or type(obj).__module__
    qualname = getattr(obj, "__qualname__", None) or type(obj).__qualname__
    return f"{module}:{qualname}"


def _summary_of(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


class Registry:
    """A named mapping from report names to component factories.

    Parameters
    ----------
    kind:
        Human-readable component kind ("traffic pattern", ...), used in
        error messages.
    builtin_modules:
        Modules that register the built-in entries of this kind; imported
        lazily on the first lookup so the registry is always complete
        without import-order gymnastics.
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._loaded = not self._builtin_modules
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: Optional[str] = None,
        obj: object = None,
        *,
        replace: bool = False,
        provenance: Optional[str] = None,
    ):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        ``name`` defaults to the object's ``name`` attribute.  Registering
        a *different* object under an existing name raises ``ValueError``
        unless ``replace=True``; re-registering the identical object is a
        no-op (so importing a plugin module twice is harmless).
        """
        def _do_register(target: object) -> object:
            entry_name = name if name is not None else getattr(target, "name", None)
            if not entry_name or not isinstance(entry_name, str):
                raise ValueError(
                    f"cannot register {self.kind} {target!r} without a name: pass "
                    "register(kind, name) or give the object a 'name' attribute"
                )
            existing = self._entries.get(entry_name)
            if existing is not None and not replace:
                if existing.factory is target:
                    return target
                raise ValueError(
                    f"a {self.kind} named {entry_name!r} is already registered "
                    f"({existing.provenance}); pass replace=True to override it"
                )
            self._entries[entry_name] = RegistryEntry(
                name=entry_name,
                factory=target,
                provenance=provenance if provenance is not None else _provenance_of(target),
                summary=_summary_of(target),
            )
            return target

        if obj is not None:
            return _do_register(obj)
        return _do_register

    def unregister(self, name: str) -> None:
        """Remove one entry (mainly for tests tearing down plugins)."""
        self._load()
        self._entries.pop(name, None)

    # -- lookup ---------------------------------------------------------------

    def _load(self) -> None:
        if self._loaded:
            return
        # Set the flag first: the imported modules call register() on this
        # very registry, and a partially-imported module must not retrigger
        # the loader.
        self._loaded = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    def get(self, name: str) -> object:
        """The factory registered under ``name``.

        Raises ``ValueError`` naming the unknown value and the sorted list
        of registered alternatives.
        """
        self._load()
        try:
            return self._entries[name].factory
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered alternatives: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def entry(self, name: str) -> RegistryEntry:
        """The full :class:`RegistryEntry` under ``name`` (same errors as get)."""
        self._load()
        if name not in self._entries:
            self.get(name)  # raises with the standard message
        return self._entries[name]

    def provenance(self, name: str) -> Optional[str]:
        """``module:qualname`` of the entry, or None when unregistered."""
        self._load()
        entry = self._entries.get(name)
        return entry.provenance if entry is not None else None

    def names(self) -> Tuple[str, ...]:
        """Sorted tuple of every registered name."""
        self._load()
        return tuple(sorted(self._entries))

    def describe(self) -> List[Dict[str, str]]:
        """Introspection rows: name, provenance and summary per entry."""
        self._load()
        return [
            {
                "name": entry.name,
                "provenance": entry.provenance,
                "summary": entry.summary,
            }
            for _, entry in sorted(self._entries.items())
        ]

    def __contains__(self, name: object) -> bool:
        self._load()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._load()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, entries={len(self._entries)})"


# -- the registries -----------------------------------------------------------------

TOPOLOGIES = Registry("topology", ["repro.network.topology"])
ROUTING_TABLES = Registry("routing-table organisation", ["repro.tables"])
ROUTING_ALGORITHMS = Registry("routing algorithm", ["repro.routing"])
SELECTORS = Registry("path-selection heuristic", ["repro.selection.heuristics"])
TRAFFIC_PATTERNS = Registry("traffic pattern", ["repro.traffic.patterns"])
INJECTIONS = Registry("injection process", ["repro.traffic.injection"])
PIPELINES = Registry("router pipeline", ["repro.router.pipeline"])
SWITCH_MODES = Registry("switch-allocation schedule", ["repro.router.switch"])
LINK_MODES = Registry("link-transport schedule", ["repro.network.link"])
CORE_MODES = Registry("core schedule", ["repro.network.flatcore"])
WORKLOADS = Registry("closed-loop workload", ["repro.workload.builtin"])
REPORTERS = Registry("study reporter", ["repro.scenario.reporters"])
ANALYTICS = Registry(
    "analytic experiment",
    ["repro.core.experiments.cost_table", "repro.core.experiments.es_programming"],
)
STUDIES = Registry("built-in study", ["repro.scenario.builtin"])

#: Registry lookup by short kind keyword (the first argument of :func:`register`).
REGISTRIES: Dict[str, Registry] = {
    "topology": TOPOLOGIES,
    "table": ROUTING_TABLES,
    "routing": ROUTING_ALGORITHMS,
    "selector": SELECTORS,
    "traffic": TRAFFIC_PATTERNS,
    "injection": INJECTIONS,
    "pipeline": PIPELINES,
    "switch": SWITCH_MODES,
    "link": LINK_MODES,
    "core": CORE_MODES,
    "workload": WORKLOADS,
    "reporter": REPORTERS,
    "analytic": ANALYTICS,
    "study": STUDIES,
}


def register(kind: str, name: Optional[str] = None, **kwargs):
    """Register a component in the registry for ``kind``.

    Usable as a decorator (``@register("traffic", "diagonal")``) or
    directly (``register("pipeline", "proud", obj=PROUD)``); see
    :meth:`Registry.register` for the keyword arguments.
    """
    try:
        registry = REGISTRIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown registry kind {kind!r}; expected one of "
            f"{', '.join(sorted(REGISTRIES))}"
        ) from None
    return registry.register(name, **kwargs)


def describe_registries() -> Dict[str, List[Dict[str, str]]]:
    """Introspection snapshot of every registry, keyed by kind keyword."""
    return {kind: registry.describe() for kind, registry in sorted(REGISTRIES.items())}


# -- configuration validation -------------------------------------------------------

#: SimulationConfig field -> registry kind keyword, for the eager validation
#: and for folding component provenance into the result-cache key.
CONFIG_FIELD_KINDS: Dict[str, str] = {
    "traffic": "traffic",
    "routing": "routing",
    "table": "table",
    "selector": "selector",
    "pipeline": "pipeline",
    "switch_mode": "switch",
    "link_mode": "link",
    "core_mode": "core",
    "injection": "injection",
    # Optional: None selects open-loop traffic and is skipped by the
    # validation/provenance walks below.
    "workload": "workload",
}


def topology_name(config) -> str:
    """Registry name of the topology a configuration selects.

    The explicit ``topology`` field wins; an empty string falls back to
    the ``torus`` flag (``"torus"`` when set, ``"mesh"`` otherwise).
    """
    explicit = getattr(config, "topology", "")
    if explicit:
        return explicit
    return "torus" if config.torus else "mesh"


def validate_config_names(config) -> None:
    """Check every registry-backed string field of ``config``.

    Raises ``ValueError`` naming the offending field, the bad value and
    the sorted registered alternatives -- at configuration-construction
    time, instead of deep inside network assembly.  Cross-field checks
    ride along: the selected topology factory may veto the configuration
    (``validate_config`` attribute, e.g. torus3d requiring three
    dimensions), and on a wrapping topology (``wraps`` attribute) the
    routing factory's ``validate_wraparound`` runs, so a routing x
    topology x escape-VC mismatch fails here with a pointed error
    instead of a ValueError from deep inside network wiring.  Plugin
    factories without these attributes are skipped and keep their
    wiring-time behaviour.
    """
    for field, kind in CONFIG_FIELD_KINDS.items():
        registry = REGISTRIES[kind]
        value = getattr(config, field)
        if value is None:
            continue
        if value not in registry:
            raise ValueError(
                f"SimulationConfig.{field}: unknown {registry.kind} {value!r}; "
                f"registered alternatives: {', '.join(registry.names()) or '(none)'}"
            )
    name = topology_name(config)
    if name not in TOPOLOGIES:
        raise ValueError(
            f"SimulationConfig.topology: unknown topology {name!r}; "
            f"registered alternatives: {', '.join(TOPOLOGIES.names())}"
        )
    topology_factory = TOPOLOGIES.get(name)
    topology_check = getattr(topology_factory, "validate_config", None)
    if topology_check is not None:
        topology_check(config)
    if getattr(topology_factory, "wraps", False):
        routing_factory = ROUTING_ALGORITHMS.get(config.routing)
        wrap_check = getattr(routing_factory, "validate_wraparound", None)
        if wrap_check is not None:
            wrap_check(config)


def config_component_provenance(config) -> Dict[str, Optional[str]]:
    """Provenance of every registry-backed component a configuration names.

    Fed into the result-cache key so results computed with a user-registered
    component are never confused with results of a same-named builtin (or a
    different plugin).  Unregistered names map to None, which still changes
    the key relative to any registered implementation.
    """
    provenance: Dict[str, Optional[str]] = {
        field: REGISTRIES[kind].provenance(getattr(config, field))
        for field, kind in CONFIG_FIELD_KINDS.items()
        if getattr(config, field) is not None
    }
    provenance["topology"] = TOPOLOGIES.provenance(topology_name(config))
    return provenance


# -- plugin loading -----------------------------------------------------------------

def load_plugin(spec: str):
    """Import a plugin module that registers extra components.

    ``spec`` is either a dotted module path (``my_pkg.patterns``) or a
    filesystem path to a ``.py`` file.  File plugins are imported under a
    stable module name derived from the file stem plus a digest of the
    file contents, so loading the same file twice (or in a worker
    process) reuses the cached module instead of re-registering,
    different files sharing a basename stay distinct, and *editing* a
    plugin changes its components' provenance -- which invalidates
    result-cache entries computed by the old implementation.  (Dotted
    module paths get no content digest; their cached results are the
    user's responsibility after edits.)  Returns the imported module.
    """
    if spec.endswith(".py"):
        import hashlib
        from pathlib import Path

        path = Path(spec).resolve()
        # The module name embeds a digest of the file *contents*: two
        # plugin files that merely share a basename never alias each
        # other, re-loading an unchanged file reuses the cached module,
        # and editing a plugin changes the module name -- hence the
        # provenance folded into result-cache keys -- so stale cached
        # results computed by the old implementation become misses.
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:8]
        stem = re.sub(r"[^0-9A-Za-z_]", "_", path.stem)
        module_name = f"repro_plugin_{stem}_{digest}"
        if module_name in sys.modules:
            return sys.modules[module_name]
        module_spec = importlib.util.spec_from_file_location(module_name, path)
        if module_spec is None or module_spec.loader is None:
            raise ImportError(f"cannot load plugin file {spec!r}")
        module = importlib.util.module_from_spec(module_spec)
        sys.modules[module_name] = module
        try:
            module_spec.loader.exec_module(module)
        except BaseException:
            sys.modules.pop(module_name, None)
            raise
        return module
    return importlib.import_module(spec)
