"""Saturation detection.

Like the paper ("Results are only presented for loads leading up to
network saturation"; Table 4 prints "Sat." for saturated points), a run is
declared saturated when the network cannot deliver the offered traffic:
either a substantial fraction of the measured messages never arrived
within the cycle budget, or the average latency exploded relative to the
contention-free base latency.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.stats.latency import LatencySummary

__all__ = ["SaturationPolicy", "is_saturated"]


@dataclass(frozen=True)
class SaturationPolicy:
    """Thresholds used to flag a run as saturated.

    Attributes
    ----------
    min_completion_ratio:
        A run delivering less than this fraction of its measured messages
        within the cycle budget is saturated.
    latency_multiplier:
        A run whose average total latency exceeds
        ``latency_multiplier x zero_load_latency`` is saturated.
    """

    min_completion_ratio: float = 0.95
    latency_multiplier: float = 12.0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_completion_ratio <= 1.0:
            raise ValueError("completion ratio threshold must be in (0, 1]")
        if self.latency_multiplier <= 1.0:
            raise ValueError("latency multiplier must exceed 1")


def is_saturated(
    summary: LatencySummary,
    zero_load_latency: float,
    policy: SaturationPolicy = SaturationPolicy(),
) -> bool:
    """Apply ``policy`` to one run summary.

    ``zero_load_latency`` is the analytic contention-free latency of an
    average message (hop latency times average distance plus
    serialization), used to scale the latency threshold.
    """
    if summary.measured == 0:
        # Nothing made it through the measurement window.  Two very
        # different situations land here:
        #
        # * the network could not deliver the offered traffic -- messages
        #   were created but are stuck in flight (genuine saturation); or
        # * nothing was *measured* at all because the budget expired before
        #   warm-up completed (e.g. a short-budget near-zero-load run).
        #   Calling that "Sat." would invert reality, so it is reported as
        #   an insufficient measurement instead.
        if summary.created > summary.delivered:
            return True
        warnings.warn(
            "run measured zero post-warm-up messages without an undelivered "
            "backlog; the cycle budget is too short for the warm-up window "
            "and the result is insufficient rather than saturated",
            RuntimeWarning,
            stacklevel=2,
        )
        return False
    if summary.completion_ratio < policy.min_completion_ratio:
        return True
    if zero_load_latency > 0 and summary.avg_total_latency > (
        policy.latency_multiplier * zero_load_latency
    ):
        return True
    return False
