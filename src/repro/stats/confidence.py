"""Student-t confidence intervals and replicate merging (pure stdlib).

Replicated campaigns fan one grid point into ``config.replications``
seed-offset runs; this module turns those per-seed results back into one
:class:`~repro.core.results.SimulationResult` whose summary pools the
message-level moments (via the order-independent
:meth:`~repro.stats.latency.RunningStats.merge`) and whose ``replicates``
block carries mean +- Student-t confidence intervals across the replicate
means.  The t critical value is computed from the regularized incomplete
beta function (continued-fraction evaluation plus ``math.lgamma``) and a
bisection inverse -- no SciPy dependency, deterministic to the last bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.stats.latency import RunningStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.config import SimulationConfig
    from repro.core.results import SimulationResult

__all__ = [
    "CONFIDENCE_LEVEL",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "merge_replicates",
    "student_t_cdf",
    "t_critical",
]

#: Two-sided confidence level of every reported interval.
CONFIDENCE_LEVEL = 0.95


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction of the incomplete beta function (Lentz's method)."""
    max_iterations = 300
    epsilon = 3e-14
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            break
    return h


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), evaluated from whichever tail converges fast."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: int) -> float:
    """P(T <= t) for Student's t distribution with ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("the t distribution needs at least one degree of freedom")
    if t == 0.0:
        return 0.5
    # Two-sided tail: P(|T| > |t|) = I_{df/(df+t^2)}(df/2, 1/2).
    tail = _regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
    if t > 0:
        return 1.0 - 0.5 * tail
    return 0.5 * tail


def t_critical(level: float, df: int) -> float:
    """The two-sided Student-t critical value: ``P(|T| <= t) = level``.

    ``t_critical(0.95, 9)`` is the familiar 2.262; as ``df`` grows the
    value approaches the normal 1.96.  Found by bisection on the
    monotone two-sided tail -- deterministic, no table lookups.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("the confidence level must be strictly between 0 and 1")
    if df < 1:
        raise ValueError("the t distribution needs at least one degree of freedom")
    alpha = 1.0 - level

    def tail(t: float) -> float:
        return _regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t))

    low, high = 0.0, 1.0
    while tail(high) > alpha:
        high *= 2.0
        if high > 1e12:  # pragma: no cover - numerically unreachable
            break
    for _ in range(200):
        mid = 0.5 * (low + high)
        if tail(mid) > alpha:
            low = mid
        else:
            high = mid
        if high - low <= 1e-12 * max(1.0, high):
            break
    return 0.5 * (low + high)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its two-sided Student-t confidence half-width."""

    #: Mean of the values.
    mean: float
    #: Unbiased sample standard deviation of the values.
    std: float
    #: Number of values.
    count: int
    #: Two-sided confidence level (e.g. 0.95).
    level: float
    #: Half-width of the interval: ``t * std / sqrt(count)``.
    half_width: float

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible dictionary (bounds included for readability)."""
        return {
            "mean": self.mean,
            "std": self.std,
            "count": self.count,
            "level": self.level,
            "half_width": self.half_width,
            "lower": self.lower,
            "upper": self.upper,
        }


def mean_confidence_interval(
    values: Sequence[float], level: float = CONFIDENCE_LEVEL
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``values``.

    Needs at least two values (one degree of freedom); the half-width
    shrinks like 1/sqrt(n) as replicates are added.
    """
    values = [float(value) for value in values]
    if len(values) < 2:
        raise ValueError(
            "a confidence interval needs at least two values "
            f"(got {len(values)}); raise config.replications"
        )
    stats = RunningStats()
    for value in values:
        stats.add(value)
    half_width = t_critical(level, stats.count - 1) * stats.std / math.sqrt(stats.count)
    return ConfidenceInterval(
        mean=stats.mean,
        std=stats.std,
        count=stats.count,
        level=level,
        half_width=half_width,
    )


def merge_replicates(
    config: "SimulationConfig", results: Sequence["SimulationResult"]
) -> "SimulationResult":
    """Fold per-seed replicate results into one result for ``config``.

    ``results`` are the runs of ``config.replicate_configs()``, in seed
    order.  The merged summary pools the message-level moments across
    replicates (weighted means, pooled standard deviation via the
    order-independent moment merge, max of maxima, summed counts);
    throughput, completion ratio and the p50/p99 estimates are averaged
    per replicate; ``saturated`` is true when *any* replicate saturated.
    The ``replicates`` block records the seeds plus mean +- Student-t
    confidence intervals (level :data:`CONFIDENCE_LEVEL`) of latency,
    network latency and throughput across the replicate means -- and of
    time-to-drain for closed-loop workload runs.  Scalars derived from
    the configuration alone (``zero_load_latency``,
    ``effective_message_rate``) and the ``drain`` block come from the
    first replicate.
    """
    from repro.core.results import SimulationResult
    from repro.stats.latency import LatencySummary

    results = list(results)
    if not results:
        raise ValueError("merge_replicates needs at least one replicate result")
    count = len(results)
    pooled_total = RunningStats()
    pooled_network = RunningStats()
    pooled_hops = RunningStats()
    for result in results:
        summary = result.summary
        measured = summary.measured
        m2 = summary.std_total_latency**2 * max(0, measured - 1)
        pooled_total.merge(
            RunningStats.from_moments(
                measured,
                summary.avg_total_latency,
                m2,
                maximum=summary.max_total_latency,
            )
        )
        pooled_network.merge(
            RunningStats.from_moments(measured, summary.avg_network_latency, 0.0)
        )
        pooled_hops.merge(RunningStats.from_moments(measured, summary.avg_hops, 0.0))

    def mean_of(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    cycles = max(result.cycles for result in results)
    summary = LatencySummary(
        created=sum(result.summary.created for result in results),
        delivered=sum(result.summary.delivered for result in results),
        measured=pooled_total.count,
        avg_total_latency=pooled_total.mean,
        avg_network_latency=pooled_network.mean,
        std_total_latency=pooled_total.std,
        max_total_latency=pooled_total.maximum,
        avg_hops=pooled_hops.mean,
        throughput=mean_of([result.summary.throughput for result in results]),
        cycles=cycles,
        completion_ratio=mean_of(
            [result.summary.completion_ratio for result in results]
        ),
        saturated=any(result.saturated for result in results),
        p50_total_latency=mean_of(
            [result.summary.p50_total_latency for result in results]
        ),
        p99_total_latency=mean_of(
            [result.summary.p99_total_latency for result in results]
        ),
    )
    block: Dict[str, object] = {
        "count": count,
        "seeds": [result.config.seed for result in results],
        "level": CONFIDENCE_LEVEL,
        "saturated_count": sum(1 for result in results if result.saturated),
    }
    if count >= 2:
        block["latency"] = mean_confidence_interval(
            [result.summary.avg_total_latency for result in results]
        ).as_dict()
        block["network_latency"] = mean_confidence_interval(
            [result.summary.avg_network_latency for result in results]
        ).as_dict()
        block["throughput"] = mean_confidence_interval(
            [result.summary.throughput for result in results]
        ).as_dict()
        drains = [result.drain for result in results]
        if all(drain is not None and "time_to_drain" in drain for drain in drains):
            block["time_to_drain"] = mean_confidence_interval(
                [float(drain["time_to_drain"]) for drain in drains]
            ).as_dict()
    return SimulationResult(
        config=config,
        summary=summary,
        zero_load_latency=results[0].zero_load_latency,
        cycles=cycles,
        effective_message_rate=results[0].effective_message_rate,
        drain=results[0].drain,
        replicates=block,
    )
