"""Measurement infrastructure: latency statistics, warm-up and saturation.

The paper reports average network latency versus normalized load, with
statistics collected after a warm-up period and runs terminated at network
saturation.  This subpackage provides:

* :class:`~repro.stats.collector.StatsCollector` -- per-message accounting
  with warm-up exclusion;
* :class:`~repro.stats.latency.LatencySummary` -- aggregated latency and
  throughput figures;
* :mod:`repro.stats.saturation` -- the saturation-detection policy used to
  print "Sat." rows like the paper's Table 4;
* :mod:`repro.stats.confidence` -- Student-t confidence intervals and the
  per-seed replicate merge behind ``config.replications``.
"""

from repro.stats.collector import StatsCollector
from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    merge_replicates,
    t_critical,
)
from repro.stats.latency import LatencySummary, P2Quantile, RunningStats
from repro.stats.saturation import SaturationPolicy, is_saturated

__all__ = [
    "ConfidenceInterval",
    "LatencySummary",
    "P2Quantile",
    "RunningStats",
    "SaturationPolicy",
    "StatsCollector",
    "is_saturated",
    "mean_confidence_interval",
    "merge_replicates",
    "t_critical",
]
