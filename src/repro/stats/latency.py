"""Latency aggregation primitives."""

from __future__ import annotations

import math
from dataclasses import dataclass
from dataclasses import fields as dataclasses_fields
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencySummary", "P2Quantile", "RunningStats"]


class P2Quantile:
    """Streaming quantile estimator (the P² algorithm of Jain & Chlamtac).

    Tracks one quantile with five markers -- O(1) memory and O(1) work per
    sample -- so p50/p99 stay available on 400,000-message runs without
    retaining samples.  The first five observations are stored and the
    estimate is exact until the markers initialize; afterwards marker
    heights move by parabolic (falling back to linear) prediction.  The
    update is pure arithmetic on the sample sequence: no randomness, no
    ambient state, so equal streams always produce equal estimates.
    """

    __slots__ = ("_fraction", "_initial", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(
                "a streaming quantile fraction must be strictly between 0 and 1 "
                "(track minimum/maximum directly for the extremes), got "
                f"{fraction!r}"
            )
        self._fraction = fraction
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        #: Desired marker positions and their per-sample growth rates.
        self._desired: List[float] = []
        self._rates: Tuple[float, ...] = ()

    @property
    def fraction(self) -> float:
        """The quantile being tracked."""
        return self._fraction

    @property
    def count(self) -> int:
        """Samples absorbed so far."""
        if self._heights:
            return int(self._positions[-1])
        return len(self._initial)

    def add(self, value: float) -> None:
        """Absorb one sample."""
        if not self._heights:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self._fraction
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
                self._rates = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
                self._initial = []
            return
        heights = self._heights
        positions = self._positions
        # Locate the marker cell the sample falls into, stretching the
        # extreme markers when it lands outside the current range.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._rates[index]
        # Nudge the three interior markers toward their desired positions.
        for index in range(1, 4):
            drift = self._desired[index] - positions[index]
            if (drift >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + (step / span) * (
            (below + step) * (heights[index + 1] - heights[index]) / above
            + (above - step) * (heights[index] - heights[index - 1]) / below
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbor = index + int(step)
        return heights[index] + step * (heights[neighbor] - heights[index]) / (
            positions[neighbor] - positions[index]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 when no samples were seen).

        Exact (nearest-rank, the :meth:`RunningStats.percentile` rule)
        while fewer than five samples have arrived.
        """
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return 0.0
        ordered = sorted(self._initial)
        rank = math.ceil(self._fraction * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def __repr__(self) -> str:
        return f"P2Quantile(fraction={self._fraction}, count={self.count}, value={self.value:.2f})"


class RunningStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm).

    Keeping only the running moments lets the collector absorb hundreds of
    thousands of samples (the paper measures 400,000 messages) without
    storing them, while optional sample retention supports percentiles in
    smaller runs.  ``quantiles`` attaches one streaming
    :class:`P2Quantile` estimator per listed fraction, so selected
    percentiles (p50/p99) stay available without ``keep_samples=True``.
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max", "_samples", "_quantiles")

    def __init__(
        self, keep_samples: bool = False, quantiles: Sequence[float] = ()
    ) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: Optional[List[float]] = [] if keep_samples else None
        self._quantiles: Dict[float, P2Quantile] = {
            float(fraction): P2Quantile(float(fraction)) for fraction in quantiles
        }

    @classmethod
    def from_moments(
        cls,
        count: int,
        mean: float,
        m2: float,
        minimum: float = math.inf,
        maximum: float = -math.inf,
    ) -> "RunningStats":
        """Rebuild an accumulator from stored moments (no samples retained).

        ``m2`` is the sum of squared deviations (``variance * (count - 1)``).
        The bounds default to the empty-state sentinels, for callers that
        only know the moments; such accumulators still merge correctly.
        """
        if count < 0:
            raise ValueError("sample count cannot be negative")
        if m2 < 0:
            raise ValueError("the sum of squared deviations cannot be negative")
        stats = cls()
        if count:
            stats._count = int(count)
            stats._mean = float(mean)
            stats._m2 = float(m2)
            stats._min = float(minimum)
            stats._max = float(maximum)
        return stats

    def add(self, value: float) -> None:
        """Record one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._samples is not None:
            self._samples.append(value)
        for tracker in self._quantiles.values():
            tracker.add(value)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Absorb ``other``'s samples into this accumulator, in place.

        Combines the moments with the parallel-variance formula (Chan et
        al.), so merging the same sample multiset in any partition and any
        order yields the same count/mean/variance/min/max up to float
        rounding -- what lets per-seed replicate summaries pool into one
        message-level aggregate.  Retained samples survive only when both
        sides kept them.  Streaming quantile trackers are path dependent
        (P² marker state) and therefore not mergeable: merging an
        accumulator that tracks quantiles raises ``ValueError``.
        Returns ``self``.
        """
        if self._quantiles or other._quantiles:
            raise ValueError(
                "streaming quantile trackers are not mergeable; merge "
                "moment-only accumulators (RunningStats.from_moments) and "
                "combine quantile estimates separately"
            )
        if other._count == 0:
            if self._samples is not None and other._samples is None:
                self._samples = None
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            if self._samples is not None:
                self._samples = (
                    list(other._samples) if other._samples is not None else None
                )
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        if self._samples is not None:
            if other._samples is not None:
                self._samples.extend(other._samples)
            else:
                self._samples = None
        return self

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Exact sample percentile; requires ``keep_samples=True``.

        Nearest-rank with an explicit ceiling rule: the result is the
        smallest retained sample whose cumulative fraction reaches
        ``fraction`` (rank ``ceil(fraction * n)``, clamped to the sample
        range), so ``percentile(0.0)`` is the minimum, ``percentile(1.0)``
        the maximum, and no banker's rounding is involved.  The fraction
        is validated before the empty-accumulator early return.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        if self._samples is None:
            raise ValueError(
                "percentiles need keep_samples=True; use quantile() for a "
                "streaming estimate"
            )
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(fraction * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def quantile(self, fraction: float) -> float:
        """Best-available quantile: exact when samples are retained, else
        the P² streaming estimate of a tracked fraction.

        Raises ``ValueError`` for a fraction that is neither computable
        exactly (``keep_samples=True``) nor tracked by a streaming
        estimator passed at construction.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("quantile fraction must be within [0, 1]")
        if self._samples is not None:
            return self.percentile(fraction)
        tracker = self._quantiles.get(float(fraction))
        if tracker is None:
            tracked = sorted(self._quantiles)
            raise ValueError(
                f"fraction {fraction!r} is not tracked (streaming quantiles: "
                f"{tracked!r}); pass it via RunningStats(quantiles=...) or "
                "retain samples with keep_samples=True"
            )
        return tracker.value

    def __repr__(self) -> str:
        return f"RunningStats(count={self._count}, mean={self.mean:.2f})"


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate results of one simulation run.

    Latencies are in cycles; throughput is in flits per node per cycle.
    """

    #: Messages generated (all, including warm-up).
    created: int
    #: Messages delivered (all, including warm-up).
    delivered: int
    #: Measured (post-warm-up) messages delivered.
    measured: int
    #: Mean creation-to-ejection latency of measured messages.
    avg_total_latency: float
    #: Mean injection-to-ejection latency of measured messages.
    avg_network_latency: float
    #: Standard deviation of the total latency.
    std_total_latency: float
    #: Largest observed total latency.
    max_total_latency: float
    #: Mean hop count of measured messages.
    avg_hops: float
    #: Delivered measured flits per node per cycle over the measurement window.
    throughput: float
    #: Cycles simulated.
    cycles: int
    #: Fraction of measured messages delivered before the run ended.
    completion_ratio: float
    #: Whether the run was flagged as saturated.
    saturated: bool = False
    #: Median total latency of measured messages (exact when samples were
    #: retained, else the P² streaming estimate; 0.0 in summaries recorded
    #: before this field existed).
    p50_total_latency: float = 0.0
    #: 99th-percentile total latency (same provenance as the median).
    p99_total_latency: float = 0.0

    def as_dict(self) -> dict:
        """Dictionary form for report printers and JSON dumps."""
        return {
            "created": self.created,
            "delivered": self.delivered,
            "measured": self.measured,
            "avg_total_latency": self.avg_total_latency,
            "avg_network_latency": self.avg_network_latency,
            "std_total_latency": self.std_total_latency,
            "max_total_latency": self.max_total_latency,
            "avg_hops": self.avg_hops,
            "throughput": self.throughput,
            "cycles": self.cycles,
            "completion_ratio": self.completion_ratio,
            "saturated": self.saturated,
            "p50_total_latency": self.p50_total_latency,
            "p99_total_latency": self.p99_total_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        """Rebuild a summary from :meth:`as_dict` output.

        Unknown keys are ignored so serialized results stay loadable when
        fields are added later; missing fields raise ``TypeError``.
        """
        known = {spec.name for spec in dataclasses_fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
