"""Latency aggregation primitives."""

from __future__ import annotations

import math
from dataclasses import dataclass
from dataclasses import fields as dataclasses_fields
from typing import List, Optional

__all__ = ["LatencySummary", "RunningStats"]


class RunningStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm).

    Keeping only the running moments lets the collector absorb hundreds of
    thousands of samples (the paper measures 400,000 messages) without
    storing them, while optional sample retention supports percentiles in
    smaller runs.
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max", "_samples")

    def __init__(self, keep_samples: bool = False) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def add(self, value: float) -> None:
        """Record one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._samples is not None:
            self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Sample percentile; requires ``keep_samples=True``."""
        if self._samples is None:
            raise ValueError("percentiles need keep_samples=True")
        if not self._samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def __repr__(self) -> str:
        return f"RunningStats(count={self._count}, mean={self.mean:.2f})"


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate results of one simulation run.

    Latencies are in cycles; throughput is in flits per node per cycle.
    """

    #: Messages generated (all, including warm-up).
    created: int
    #: Messages delivered (all, including warm-up).
    delivered: int
    #: Measured (post-warm-up) messages delivered.
    measured: int
    #: Mean creation-to-ejection latency of measured messages.
    avg_total_latency: float
    #: Mean injection-to-ejection latency of measured messages.
    avg_network_latency: float
    #: Standard deviation of the total latency.
    std_total_latency: float
    #: Largest observed total latency.
    max_total_latency: float
    #: Mean hop count of measured messages.
    avg_hops: float
    #: Delivered measured flits per node per cycle over the measurement window.
    throughput: float
    #: Cycles simulated.
    cycles: int
    #: Fraction of measured messages delivered before the run ended.
    completion_ratio: float
    #: Whether the run was flagged as saturated.
    saturated: bool = False

    def as_dict(self) -> dict:
        """Dictionary form for report printers and JSON dumps."""
        return {
            "created": self.created,
            "delivered": self.delivered,
            "measured": self.measured,
            "avg_total_latency": self.avg_total_latency,
            "avg_network_latency": self.avg_network_latency,
            "std_total_latency": self.std_total_latency,
            "max_total_latency": self.max_total_latency,
            "avg_hops": self.avg_hops,
            "throughput": self.throughput,
            "cycles": self.cycles,
            "completion_ratio": self.completion_ratio,
            "saturated": self.saturated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        """Rebuild a summary from :meth:`as_dict` output.

        Unknown keys are ignored so serialized results stay loadable when
        fields are added later; missing fields raise ``TypeError``.
        """
        known = {spec.name for spec in dataclasses_fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
