"""Per-message statistics collection with warm-up handling.

Messages are numbered in creation order across the whole network.  The
first ``warmup_messages`` of them are excluded from the reported
statistics, matching the paper's methodology (10,000 warm-up injections
before the 400,000 measured ones).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.stats.latency import LatencySummary, RunningStats

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a package cycle
    from repro.traffic.message import Message

__all__ = ["REPORTED_QUANTILES", "StatsCollector"]

#: The total-latency quantiles every run reports (LatencySummary's
#: ``p50_total_latency``/``p99_total_latency``).
REPORTED_QUANTILES = (0.5, 0.99)


class StatsCollector:
    """Accumulates message-level statistics for one simulation run."""

    def __init__(
        self,
        warmup_messages: int = 0,
        measure_messages: Optional[int] = None,
        num_nodes: int = 1,
        keep_samples: bool = False,
    ) -> None:
        if warmup_messages < 0:
            raise ValueError("warm-up message count cannot be negative")
        self._warmup = warmup_messages
        self._measure_target = measure_messages
        self._num_nodes = max(1, num_nodes)
        self._created = 0
        self._delivered = 0
        self._injected = 0
        self._measured_delivered = 0
        self._measured_flits = 0
        self._order: Dict[int, int] = {}
        # p50/p99 ride on streaming P² estimators, so the headline
        # percentiles survive keep_samples=False (the memory-flat default
        # on 400k-message runs); with samples retained they are exact.
        self._total_latency = RunningStats(
            keep_samples=keep_samples, quantiles=REPORTED_QUANTILES
        )
        self._network_latency = RunningStats(keep_samples=keep_samples)
        self._hops = RunningStats()
        self._first_measured_delivery: Optional[int] = None
        self._last_delivery_cycle = 0
        #: Observers of every tail-flit ejection (closed-loop workload
        #: engines release DAG successors from here).  The collector is
        #: the single delivery point shared by the object interfaces and
        #: the flat core, so hooking here guarantees both cores fire the
        #: same callbacks at the same cycles in the same order.
        self._delivery_callbacks: List[Callable[["Message", int], None]] = []

    # -- recording ---------------------------------------------------------------

    def add_delivery_callback(
        self, callback: Callable[["Message", int], None]
    ) -> None:
        """Invoke ``callback(message, cycle)`` on every delivered tail flit.

        Callbacks see every delivery (warm-up included) and run after the
        collector's own streaming accounting; they must not retain the
        message (the collector itself keeps no per-message state after
        delivery, and observers are expected to match).
        """
        self._delivery_callbacks.append(callback)

    def record_created(self, message: "Message") -> None:
        """Register a newly generated message (assigns its creation index)."""
        self._order[message.message_id] = self._created
        self._created += 1

    def record_injected(self, message: "Message", cycle: int) -> None:
        """Register the injection of a message's header flit."""
        self._injected += 1

    def record_delivered(self, message: "Message", cycle: int) -> None:
        """Register delivery of a message's tail flit and accumulate latency."""
        self._delivered += 1
        self._last_delivery_cycle = cycle
        # Pop (rather than read) the creation index: each message is
        # delivered at most once, and keeping one dict entry per created
        # message would grow memory without bound on long runs.
        index = self._order.pop(message.message_id, None)
        measured = (
            index is not None
            and index >= self._warmup
            and (
                self._measure_target is None
                or index < self._warmup + self._measure_target
            )
        )
        if measured:
            self._measured_delivered += 1
            self._measured_flits += message.length
            self._total_latency.add(message.total_latency)
            self._network_latency.add(message.network_latency)
            self._hops.add(message.hops)
            if self._first_measured_delivery is None:
                self._first_measured_delivery = cycle
        for callback in self._delivery_callbacks:
            callback(message, cycle)

    # -- progress queries -----------------------------------------------------------

    @property
    def created(self) -> int:
        """Messages generated so far."""
        return self._created

    @property
    def delivered(self) -> int:
        """Messages delivered so far (including warm-up)."""
        return self._delivered

    @property
    def measured_delivered(self) -> int:
        """Measured (post-warm-up) messages delivered so far."""
        return self._measured_delivered

    @property
    def warmup_messages(self) -> int:
        """Number of leading messages excluded from statistics."""
        return self._warmup

    @property
    def measure_target(self) -> Optional[int]:
        """Number of measured messages the run intends to deliver."""
        return self._measure_target

    def all_measured_delivered(self) -> bool:
        """True once every intended measured message has been delivered."""
        if self._measure_target is None:
            return False
        return self._measured_delivered >= self._measure_target

    # -- summary ----------------------------------------------------------------------

    def summary(self, cycles: int, saturated: bool = False) -> LatencySummary:
        """Aggregate the collected statistics over ``cycles`` simulated cycles."""
        if self._measure_target:
            completion = self._measured_delivered / self._measure_target
        else:
            completion = 1.0 if self._created == 0 else self._delivered / self._created
        if self._first_measured_delivery is not None and cycles > 0:
            window = max(1, self._last_delivery_cycle - self._first_measured_delivery + 1)
            throughput = self._measured_flits / (window * self._num_nodes)
        else:
            throughput = 0.0
        return LatencySummary(
            created=self._created,
            delivered=self._delivered,
            measured=self._measured_delivered,
            avg_total_latency=self._total_latency.mean,
            avg_network_latency=self._network_latency.mean,
            std_total_latency=self._total_latency.std,
            max_total_latency=self._total_latency.maximum,
            avg_hops=self._hops.mean,
            throughput=throughput,
            cycles=cycles,
            completion_ratio=completion,
            saturated=saturated,
            p50_total_latency=self._total_latency.quantile(0.5),
            p99_total_latency=self._total_latency.quantile(0.99),
        )

    def __repr__(self) -> str:
        return (
            f"StatsCollector(created={self._created}, delivered={self._delivered}, "
            f"measured={self._measured_delivered})"
        )
