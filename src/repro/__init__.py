"""LAPSES reproduction: Look-Ahead, Path Selection and Economical Storage
adaptive router design (Vaidya, Sivasubramaniam & Das, HPCA 1999).

The package implements the paper's cycle-level wormhole network simulator
(PROUD / LA-PROUD pipelined routers with virtual channels and credit-based
flow control), Duato's fully adaptive routing, the proposed path-selection
heuristics (LRU, LFU, MAX-CREDIT) and the three routing-table storage
organisations (full table, meta-table, economical storage), plus the
experiment harness that regenerates every table and figure of the paper's
evaluation.

Quick start::

    from repro import NetworkSimulator, SimulationConfig

    config = SimulationConfig.small(traffic="transpose", normalized_load=0.3,
                                    selector="max-credit")
    result = NetworkSimulator(config).run()
    print(f"average latency: {result.latency:.1f} cycles")

Batches of runs are described declaratively (see :mod:`repro.scenario`)::

    from repro import Study, load_study, run_study

    outcome = run_study(load_study("figure5"))
    print(outcome.to_markdown())

and new components plug in through :mod:`repro.registry` without touching
repro internals.
"""

from repro.core.config import PaperDefaults, SimulationConfig
from repro.core.results import SimulationResult, format_rows
from repro.core.simulator import NetworkSimulator
from repro.core.sweep import LoadSweepPoint, run_load_sweep
from repro.scenario import Scenario, Study, StudyResult, load_study, run_study

__version__ = "1.1.0"

__all__ = [
    "LoadSweepPoint",
    "NetworkSimulator",
    "PaperDefaults",
    "Scenario",
    "SimulationConfig",
    "SimulationResult",
    "Study",
    "StudyResult",
    "format_rows",
    "load_study",
    "run_load_sweep",
    "run_study",
    "__version__",
]
