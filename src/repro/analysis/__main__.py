"""``python -m repro.analysis`` -- run the house-style linter."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
