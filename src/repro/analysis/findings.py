"""Rule metadata and finding records of the house-style linter.

Every rule has a stable identifier ``<FAMILY><NNN>`` whose first letter
names its checker family:

``D``
    Determinism: unordered iteration, ambient randomness and wall-clock
    reads in simulation code (:mod:`repro.analysis.determinism`).
``C``
    Cache-key drift: the result-cache key surface versus the committed
    fingerprint (:mod:`repro.analysis.cachekey`).
``W``
    Wake contract: quiescence-relevant state mutations paired with their
    wake/active-hint guards (:mod:`repro.analysis.wake`).
``R``
    Registry/spec consistency: constructible registry entries, valid
    study-spec fields, complete schedule mode pairs
    (:mod:`repro.analysis.registry_spec`).

Identifiers are part of the public contract: suppressions
(``# repro: allow=D001``), exit codes and the JSON report all use them,
so renaming or renumbering a rule is a breaking change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "FAMILIES",
    "FAMILY_EXIT_BITS",
    "Finding",
    "RULES",
    "Rule",
]

#: Checker families in report order.
FAMILIES: Tuple[str, ...] = ("D", "C", "W", "R")

#: Exit-code bit of each family: the linter's exit status is the OR of
#: the bits of every family with at least one finding (0 = clean), so a
#: caller can tell *which* contracts failed from the code alone.
FAMILY_EXIT_BITS: Dict[str, int] = {"D": 1, "C": 2, "W": 4, "R": 8}


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable id, short name and rationale."""

    id: str
    name: str
    rationale: str

    @property
    def family(self) -> str:
        """Family letter (the id's first character)."""
        return self.id[0]


#: Every rule the linter can emit, keyed by id.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "D001",
            "unordered-set-iteration",
            "Iterating a set in simulation code draws an order from the "
            "process's hash seed; wrap the iterable in sorted(...) to pin "
            "it.  (Plain dict iteration is insertion-ordered in Python "
            "and is not flagged.)",
        ),
        Rule(
            "D002",
            "ambient-random-call",
            "Module-level random.* functions share one ambient generator "
            "whose state depends on call order across the whole process; "
            "draw from a named repro.engine.rng.SimulationRNG stream "
            "instead.",
        ),
        Rule(
            "D003",
            "unseeded-rng-construction",
            "random.Random() without a seed initialises from the OS "
            "entropy pool; every generator must derive from the "
            "configuration seed (SimulationRNG or random.Random(seed)).",
        ),
        Rule(
            "D004",
            "wallclock-or-identity-ordering",
            "time.* reads and id(...) values vary between runs and "
            "interpreters; simulation decisions must depend only on the "
            "simulated clock and stable identifiers.",
        ),
        Rule(
            "C001",
            "cache-key-drift-without-version-bump",
            "The cache-key surface (SimulationConfig fields/defaults and "
            "the provenance field list) changed while CACHE_FORMAT_VERSION "
            "did not: cached results computed before the change would be "
            "served for configurations that no longer mean the same thing. "
            "Bump CACHE_FORMAT_VERSION in src/repro/exec/cache.py, then "
            "regenerate the fingerprint (lint --update-fingerprint).",
        ),
        Rule(
            "C002",
            "stale-cache-key-fingerprint",
            "The committed analysis/cache_key.fingerprint no longer "
            "matches the live cache-key surface (or is missing); "
            "regenerate it with lint --update-fingerprint and commit the "
            "result.",
        ),
        Rule(
            "W001",
            "unpaired-quiescence-mutation",
            "A declared quiescence-relevant container grew without its "
            "wake/active-hint guard (or pending-counter update) in the "
            "same method: the activity-aware kernel could sleep through "
            "the new work.  See repro.analysis.wake.WAKE_CONTRACTS.",
        ),
        Rule(
            "R001",
            "unconstructible-registry-entry",
            "A registered component could not be constructed through its "
            "documented factory signature; studies naming it would fail "
            "deep inside network assembly.",
        ),
        Rule(
            "R002",
            "unknown-study-spec-field",
            "A study spec override names a key that is not a "
            "SimulationConfig field; the spec would raise only when it is "
            "expanded and run.",
        ),
        Rule(
            "R003",
            "incomplete-schedule-mode-pair",
            "Every two-implementations-one-semantics registry kind must "
            "ship both its reference and its fast entry, or the "
            "equivalence cube silently stops covering the pair.",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str
    col: int = 0

    @property
    def family(self) -> str:
        """Family letter of the finding's rule."""
        return self.rule[0]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """One-line human-readable rendering (path:line:col: ID message)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-report row."""
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
