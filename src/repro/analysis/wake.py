"""W-checks: quiescence-relevant mutations paired with wake guards.

The activity-aware kernel sleeps a component until its reported
``next_event_cycle``; anything that *adds* work to a component must
therefore either wake it (the ``set_wake``/active-hint guard idiom ::

    if not self._kernel_active[self._kernel_index]:
        self._wake(arrival_cycle)

) or update the pending counter / wake cycle that ``next_event_cycle``
reads.  :data:`WAKE_CONTRACTS` declares, per module, which attributes
hold that quiescence-relevant state and which guard identifiers count as
its pairing.  The checker then verifies every growth site (``append``,
``extend``, ``add``, ``insert``, ``bisect.insort``) of a declared
attribute -- reached directly (``self._attr...``) or through local
aliases (``wheel = self._attr``, ``slots = wheel.slots``) -- appears in
a top-level method that also mentions at least one complete guard
group.

The pairing is deliberately *lexical* (identifier presence in the same
method, closures included): it cannot prove the guard dominates the
mutation, but it catches the realistic regression -- a new fast path
that grows a lane or membership list and forgets the wake machinery
entirely -- with no false positives on the current tree.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.base import Checker, identifier_names, walk_units
from repro.analysis.findings import Finding
from repro.analysis.source import PythonSource

__all__ = ["WAKE_CONTRACTS", "WakeChecker"]

#: Mutation method names that grow a container.
_GROW_METHODS = {"append", "appendleft", "extend", "extendleft", "add", "insert"}

#: Free functions that grow their first argument.
_INSORT_FUNCS = {"insort", "insort_left", "insort_right"}

#: Guard groups: ``attr -> ((id, ...), ...)``.  A mutation site is paired
#: when at least one group has *all* its identifiers present in the
#: enclosing top-level method; each group spells one accepted idiom
#: (wake-callback guard, pending counter, membership bookkeeping, ...).
GuardGroups = Tuple[Tuple[str, ...], ...]

#: The declared quiescence-relevant state, per module.
WAKE_CONTRACTS: Dict[str, Dict[str, GuardGroups]] = {
    "repro.router.router": {
        # Reference link schedule: per-port tuple deques, paired with the
        # pending counters next_event_cycle sums.
        "_flit_mailboxes": (("_pending_flits",),),
        "_credit_mailboxes": (("_pending_credits",),),
        # Batched link schedule: arrival wheels, paired with the wake
        # guard (receivers run in the sender's evaluation).
        "_flit_wheel": (("_wake", "_kernel_active"),),
        "_credit_wheel": (("_wake", "_kernel_active"),),
        # Channel membership lists, paired with the occupied-channel
        # count (the busy gate) or the shared remove helper.
        "_routing_members": (("_occupied_channels",), ("_membership_remove",)),
        "_active_members": (("_occupied_channels",), ("_membership_remove",)),
    },
    "repro.network.interface": {
        "_eject_mailbox": (("_wake", "_kernel_active"),),
        "_credit_mailbox": (("_wake", "_kernel_active"),),
        "_injection_queue": (("_wake", "_kernel_active"),),
    },
    "repro.network.flatcore": {
        # The four global wheels, paired with their pending counters
        # (either the attribute itself or the per-pass local tally that
        # is added to it before the pass returns).
        "_flit_lanes": (("_flit_pending",), ("flit_pushed",)),
        "_credit_lanes": (("_credit_pending",), ("credit_pushed",)),
        "_eject_lanes": (("_eject_pending",), ("eject_pushed",)),
        "_ni_credit_lanes": (("_ni_credit_pending",), ("ni_credit_pushed",)),
        # Interface-side injection state, paired with the per-node wake
        # cycle the flat scheduler polls.
        "_ni_queue": (("_ni_wake",),),
        "_ni_flits": (("_ni_wake",),),
    },
    "repro.network.link": {
        # The wheel is a passive container: every *owner* grows it
        # through the contracts above.  Growth from inside link.py
        # itself would bypass them, so any future push helper must
        # involve the pending-visibility machinery.
        "slots": (("earliest_pending",), ("_wake", "_kernel_active")),
        "far": (("earliest_pending",), ("_wake", "_kernel_active")),
    },
    "repro.workload.engine": {
        # Released DAG steps land in per-node pending lists the sources'
        # next_due_cycle forecasts read; every insort must re-arm the
        # home node's interface through the attached wake callback.
        "_pending": (("_wake_home",),),
    },
}


class WakeChecker(Checker):
    """Per-file W-checks over :data:`WAKE_CONTRACTS` (or an injected
    table, used by the fixture self-tests)."""

    rules = ("W001",)

    def __init__(
        self, contracts: Optional[Mapping[str, Dict[str, GuardGroups]]] = None
    ) -> None:
        self._contracts = contracts if contracts is not None else WAKE_CONTRACTS

    def check_source(self, source: PythonSource) -> List[Finding]:
        table = self._contracts.get(source.module)
        if not table:
            return []
        path = str(source.path)
        findings: List[Finding] = []
        for unit in walk_units(source.tree):
            names = identifier_names(unit)
            aliases = _alias_roots(unit, table)
            for site_line, site_col, attr in _mutation_sites(unit, table, aliases):
                if _guards_satisfied(table[attr], names):
                    continue
                groups = " or ".join(
                    "{" + ", ".join(group) + "}" for group in table[attr]
                )
                findings.append(
                    Finding(
                        rule="W001",
                        path=path,
                        line=site_line,
                        col=site_col,
                        message=(
                            f"{source.module}: growth of quiescence-relevant "
                            f"{attr!r} in {unit.name}() without its wake "
                            f"pairing; expected all of one group: {groups}"
                        ),
                    )
                )
        return findings


def _guards_satisfied(groups: GuardGroups, names: Set[str]) -> bool:
    return any(all(guard in names for guard in group) for group in groups)


def _alias_roots(
    unit: ast.AST, table: Mapping[str, GuardGroups]
) -> Dict[str, Set[str]]:
    """Local name -> watched attributes it (transitively) aliases.

    Follows plain assignments whose right-hand side is a
    *reference-preserving* chain over watched state (``wheel =
    self._flit_wheel``, ``slots = wheel.slots``, ``lane =
    slots[cycle % size]``), iterated to a fixpoint so chains of any
    depth resolve.  Expressions that build new objects (comprehensions,
    calls, operators) never alias -- a copy of a wheel's contents is not
    the wheel.  Only simple-name targets are tracked.
    """
    aliases: Dict[str, Set[str]] = {}
    assignments = [
        node for node in ast.walk(unit) if isinstance(node, ast.Assign)
    ]
    changed = True
    while changed:
        changed = False
        for node in assignments:
            roots = _watched_roots(node.value, table, aliases)
            if not roots:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    known = aliases.setdefault(target.id, set())
                    if not roots <= known:
                        known |= roots
                        changed = True
    return aliases


def _watched_roots(
    node: ast.AST,
    table: Mapping[str, GuardGroups],
    aliases: Mapping[str, Set[str]],
) -> Set[str]:
    """Watched attributes ``node`` is a live reference into.

    Peels subscript and attribute chains down to their base: a watched
    attribute name anywhere on the chain (``self._flit_wheel.slots``)
    or an aliased local at its base both resolve to the watched root.
    Anything else (a call, a comprehension, a literal) resolves to
    nothing, so freshly built objects are never confused with the
    watched container they were derived from.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        if node.attr in table:
            return {node.attr}
        return _watched_roots(node.value, table, aliases)
    if isinstance(node, ast.Name) and node.id in aliases:
        return set(aliases[node.id])
    return set()


def _mutation_sites(
    unit: ast.AST,
    table: Mapping[str, GuardGroups],
    aliases: Mapping[str, Set[str]],
):
    """``(line, col, attr)`` for every growth of watched state in ``unit``."""
    sites: List[Tuple[int, int, str]] = []
    for node in ast.walk(unit):
        roots: Set[str] = set()
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _GROW_METHODS:
                roots = _watched_roots(func.value, table, aliases)
            else:
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name in _INSORT_FUNCS and node.args:
                    roots = _watched_roots(node.args[0], table, aliases)
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            roots = _watched_roots(node.target, table, aliases)
        for attr in sorted(roots):
            sites.append((node.lineno, node.col_offset, attr))
    return sites
