"""D-checks: determinism of simulation code.

Simulation results must be a pure function of the configuration (the
seed included).  Three things silently break that:

* iterating a ``set`` (order follows the per-process hash seed) -- D001;
* the ambient ``random`` module (one process-global generator whose
  state depends on unrelated call order) -- D002 -- or constructing an
  OS-seeded generator -- D003;
* wall-clock reads and ``id()`` values -- D004.

The checks are scoped to the simulation packages
(:data:`SIM_MODULE_PREFIXES`); :mod:`repro.engine.rng` is the one module
allowed to touch ``random`` construction, because it is where every
seeded stream comes from.  Plain ``dict`` iteration is deliberately not
flagged: Python dicts iterate in insertion order, which simulation code
is allowed to rely on (insertion order is itself deterministic).

The set detection is syntactic and local to one file: literals, set
comprehensions, ``set(...)``/``frozenset(...)`` calls, set-operator
expressions over those, and names assigned from any of them.  Passing a
set through ``sorted(...)`` is the blessed fix -- ``sorted`` imposes the
missing order, so it never counts as unordered iteration.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.source import PythonSource

__all__ = ["DeterminismChecker", "RNG_MODULE", "SIM_MODULE_PREFIXES"]

#: Packages whose code is simulation-order sensitive (D001/D004 scope):
#: the simulation core plus everything that builds deterministic
#: structures it consumes (routing tables) or aggregates its outputs
#: (statistics, whose float sums are order-sensitive).
SIM_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.network",
    "repro.router",
    "repro.engine",
    "repro.traffic",
    "repro.selection",
    "repro.routing",
    "repro.tables",
    "repro.stats",
)

#: The one module allowed to construct/consume raw ``random`` machinery.
RNG_MODULE = "repro.engine.rng"

#: Set-returning methods of set objects (closed under the inference).
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

#: Set-valued binary operators.
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Builtins that iterate their argument in its own order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "iter", "enumerate"}


def _in_module(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


class DeterminismChecker(Checker):
    """Per-file D-checks (see the module docstring)."""

    rules = ("D001", "D002", "D003", "D004")

    def check_source(self, source: PythonSource) -> List[Finding]:
        module = source.module
        if module == RNG_MODULE or module.startswith(RNG_MODULE + "."):
            return []
        in_sim = _in_module(module, SIM_MODULE_PREFIXES)
        path = str(source.path)
        findings: List[Finding] = []

        random_aliases, time_aliases, from_random, from_time = _import_bindings(
            source.tree
        )

        for node in ast.walk(source.tree):
            if in_sim:
                findings.extend(_check_wallclock(node, time_aliases, from_time, path))
            findings.extend(
                _check_random(node, random_aliases, from_random, path)
            )
        if in_sim:
            # The set inference is scoped per function: a name that holds
            # a set in one method and a tuple parameter in another must
            # not cross-contaminate.
            for nodes in _scopes(source.tree):
                set_names = _set_typed_names(nodes)
                for node in nodes:
                    findings.extend(_check_iteration(node, set_names, path))
        return findings


def _import_bindings(tree: ast.AST):
    """Names bound to the ``random``/``time`` modules and their members."""
    random_aliases: Set[str] = set()
    time_aliases: Set[str] = set()
    from_random: Dict[str, str] = {}
    from_time: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                elif alias.name == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    from_random[alias.asname or alias.name] = alias.name
            elif node.module == "time":
                for alias in node.names:
                    from_time[alias.asname or alias.name] = alias.name
    return random_aliases, time_aliases, from_random, from_time


def _scopes(tree: ast.AST) -> List[List[ast.AST]]:
    """Node lists of each analysis scope of a module.

    One scope per top-level function (nested defs included -- closures
    see their enclosing names) plus one for everything outside the
    functions, so the set inference never leaks a binding from one
    method into an unrelated one.
    """
    from repro.analysis.base import walk_units

    units = list(walk_units(tree))
    unit_ids = {id(unit) for unit in units}
    scopes = [list(ast.walk(unit)) for unit in units]

    rest: List[ast.AST] = []
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        rest.append(node)
        for child in ast.iter_child_nodes(node):
            if id(child) not in unit_ids:
                stack.append(child)
    scopes.append(rest)
    return scopes


def _set_typed_names(nodes: List[ast.AST]) -> Set[str]:
    """Simple names assigned a set-valued expression within one scope.

    Two passes reach the common ``a = set(...); b = a | other`` chains;
    the inference is deliberately conservative (assignment-based only,
    no flow sensitivity) so a name is flagged only when some binding of
    it in this scope is provably a set.
    """
    names: Set[str] = set()
    for _ in range(2):
        before = len(names)
        for node in nodes:
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                value = node.value
            if value is None or not _is_setish(value, names):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        if len(names) == before:
            break
    return names


def _is_setish(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_setish(node.left, set_names) or _is_setish(node.right, set_names)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_setish(func.value, set_names)
        ):
            return True
    return False


def _check_iteration(
    node: ast.AST, set_names: Set[str], path: str
) -> List[Finding]:
    """D001 at every order-sensitive iteration of a set-valued expression."""
    iterated: List[ast.expr] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        iterated.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        iterated.extend(generator.iter for generator in node.generators)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_BUILTINS
            and node.args
        ):
            iterated.append(node.args[0])
    findings = []
    for expr in iterated:
        if _is_setish(expr, set_names):
            findings.append(
                Finding(
                    rule="D001",
                    path=path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    message=(
                        "iteration over a set draws its order from the hash "
                        "seed; wrap the iterable in sorted(...)"
                    ),
                )
            )
    return findings


def _check_random(
    node: ast.AST, aliases: Set[str], from_random: Dict[str, str], path: str
) -> List[Finding]:
    """D002/D003 at ambient-random calls and unseeded constructions."""
    if not isinstance(node, ast.Call):
        return []
    func = node.func
    member = None
    if isinstance(func, ast.Attribute) and (
        isinstance(func.value, ast.Name) and func.value.id in aliases
    ):
        member = func.attr
    elif isinstance(func, ast.Name) and func.id in from_random:
        member = from_random[func.id]
    if member is None:
        return []
    if member == "Random":
        if node.args or node.keywords:
            return []  # seeded construction is the house style
        message = (
            "random.Random() without a seed initialises from OS entropy; "
            "derive the generator from the configuration seed "
            "(repro.engine.rng.SimulationRNG or random.Random(seed))"
        )
        rule = "D003"
    elif member == "SystemRandom":
        message = (
            "random.SystemRandom draws from the OS entropy pool and can "
            "never be seeded; use a stream of repro.engine.rng.SimulationRNG"
        )
        rule = "D003"
    else:
        message = (
            f"random.{member}() uses the process-global ambient generator; "
            "draw from a named repro.engine.rng.SimulationRNG stream instead"
        )
        rule = "D002"
    return [
        Finding(
            rule=rule,
            path=path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )
    ]


def _check_wallclock(
    node: ast.AST, time_aliases: Set[str], from_time: Dict[str, str], path: str
) -> List[Finding]:
    """D004 at wall-clock reads and id() calls in simulation code."""
    if not isinstance(node, ast.Call):
        return []
    func = node.func
    what = None
    if isinstance(func, ast.Attribute) and (
        isinstance(func.value, ast.Name) and func.value.id in time_aliases
    ):
        what = f"time.{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in from_time:
        what = f"time.{from_time[func.id]}()"
    elif isinstance(func, ast.Name) and func.id == "id" and len(node.args) == 1:
        what = "id()"
    if what is None:
        return []
    return [
        Finding(
            rule="D004",
            path=path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what} varies between runs; simulation decisions must "
                "depend only on the simulated clock and stable identifiers"
            ),
        )
    ]
