"""Source loading for the linter: parsing, module names, suppressions.

A :class:`PythonSource` bundles everything the per-file checkers need:
the file's path, its inferred dotted module name (how the scoped rules
decide whether a file is simulation code), the parsed AST and the inline
suppressions.

Suppression syntax
------------------
A comment of the form ::

    # repro: allow=D001
    # repro: allow=W001,D002 -- optional justification

disables the named rules for the line it sits on *and* the following
line (so it can trail the flagged statement or sit on its own line just
above it).  Unknown rule ids in a suppression are ignored; they never
widen the silence.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

__all__ = ["PythonSource", "discover_sources", "parse_suppressions"]

#: Directories never scanned (bytecode caches, VCS internals, hidden dirs).
_SKIPPED_DIR_NAMES = {"__pycache__", ".git", ".hg", ".svn"}

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow=([A-Z0-9, ]+)")


def parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Line -> suppressed rule ids, from ``# repro: allow=...`` comments."""
    allowed: Dict[int, FrozenSet[str]] = {}
    tokens = tokenize.generate_tokens(io.StringIO(text).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if ids:
            line = token.start[0]
            allowed[line] = allowed.get(line, frozenset()) | ids
    return allowed


class PythonSource:
    """One parsed Python file plus the metadata the checkers consume."""

    __slots__ = ("path", "module", "text", "tree", "_allowed")

    def __init__(self, path: Path, text: str, module: str) -> None:
        self.path = path
        self.text = text
        self.module = module
        self.tree = ast.parse(text, filename=str(path))
        self._allowed = parse_suppressions(text)

    @classmethod
    def from_path(cls, path: Path, module: Optional[str] = None) -> "PythonSource":
        """Load and parse ``path``; the module name is inferred from the
        package layout (walking up through ``__init__.py`` parents)
        unless given explicitly (fixtures use the override to land in a
        scoped module without living there)."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if module is None:
            module = _infer_module(path)
        return cls(path=path, text=text, module=module)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is allowed at ``line`` (same or preceding line)."""
        for candidate in (line, line - 1):
            ids = self._allowed.get(candidate)
            if ids and rule in ids:
                return True
        return False

    def suppressed_rules(self) -> Set[str]:
        """Every rule id named by a suppression in this file."""
        rules: Set[str] = set()
        for ids in self._allowed.values():
            rules |= ids
        return rules

    def __repr__(self) -> str:
        return f"PythonSource({str(self.path)!r}, module={self.module!r})"


def _infer_module(path: Path) -> str:
    """Dotted module name from the package layout around ``path``."""
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def discover_sources(paths: Iterable[Path]) -> List[PythonSource]:
    """Load every ``.py`` file under ``paths``, sorted by path.

    Directories are walked recursively, skipping ``__pycache__`` (and
    other generated/VCS directories) so stray build artifacts can never
    contribute findings.  A path that does not exist raises
    ``FileNotFoundError``; a file that does not parse raises
    ``SyntaxError`` -- both are hard errors, not findings.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _SKIPPED_DIR_NAMES.intersection(candidate.parts):
                    continue
                files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    seen: Set[Path] = set()
    sources: List[PythonSource] = []
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        sources.append(PythonSource.from_path(path))
    return sources
