"""Static analysis of the repro house style.

The repo's fast paths (activity kernel, batched switch, batched link,
flat core) stay bit-identical to their reference schedules only while a
handful of conventions hold: seeded RNG streams only, no unordered
iteration in simulation code, a hand-bumped ``CACHE_FORMAT_VERSION``
whenever the cache-key surface moves, and a wake/active-hint guard at
every quiescence-relevant mutation site.  This package enforces those
conventions *statically*, before an expensive campaign can diverge:

=========  =========================================================
family     checks
=========  =========================================================
``D``      determinism: set iteration, ambient ``random``, unseeded
           RNGs, wall-clock/`id()` ordering
           (:mod:`repro.analysis.determinism`)
``C``      cache-key drift against the committed
           ``cache_key.fingerprint`` (:mod:`repro.analysis.cachekey`)
``W``      wake-contract pairing at declared mutation sites
           (:mod:`repro.analysis.wake`)
``R``      registry constructibility, study-spec fields, schedule
           pairs (:mod:`repro.analysis.registry_spec`)
=========  =========================================================

Run it with ``python -m repro.analysis src/repro`` or ``repro.cli
lint``; suppress a finding inline with ``# repro: allow=<RULE>``
(documented in :mod:`repro.analysis.source`).  The exit code is the OR
of the failing families' bits (D=1, C=2, W=4, R=8).
"""

from repro.analysis.cachekey import (
    cache_key_findings,
    current_fingerprint,
    default_fingerprint_path,
    load_fingerprint,
    write_fingerprint,
)
from repro.analysis.findings import FAMILIES, FAMILY_EXIT_BITS, RULES, Finding, Rule
from repro.analysis.runner import LintReport, main, run_lint
from repro.analysis.source import PythonSource, discover_sources
from repro.analysis.wake import WAKE_CONTRACTS

__all__ = [
    "FAMILIES",
    "FAMILY_EXIT_BITS",
    "Finding",
    "LintReport",
    "PythonSource",
    "RULES",
    "Rule",
    "WAKE_CONTRACTS",
    "cache_key_findings",
    "current_fingerprint",
    "default_fingerprint_path",
    "discover_sources",
    "load_fingerprint",
    "main",
    "run_lint",
    "write_fingerprint",
]
