"""R-checks: registry and study-spec consistency.

Three contracts over the live registries and the shipped study specs:

* **R001** -- every registered entry is constructible through its
  documented factory signature (see the table in :mod:`repro.registry`),
  probed against a small 4x4 mesh configuration.  A study naming an
  unconstructible component would otherwise fail only deep inside
  network assembly, possibly mid-campaign.
* **R002** -- every configuration key a builtin study spec can apply
  (``base``, axis ``field``, variant and scenario ``overrides``) is a
  real :class:`~repro.core.config.SimulationConfig` field, checked for
  both the registered study builders and the shipped JSON spec files.
* **R003** -- every two-implementations-one-semantics registry kind
  ships its full schedule pair (``switch``/``link``:
  reference+batched, ``core``: objects+flat), so the sixteen-combination
  equivalence cube keeps covering what users can select.
"""

from __future__ import annotations

import importlib.util
from dataclasses import fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.source import PythonSource

__all__ = [
    "REQUIRED_SCHEDULE_PAIRS",
    "RegistryChecker",
    "probe_registry_entries",
    "schedule_pair_findings",
    "study_spec_findings",
]

#: Mode-style registry kinds and the entries each must ship (R003).
REQUIRED_SCHEDULE_PAIRS: Dict[str, Tuple[str, ...]] = {
    "switch": ("reference", "batched"),
    "link": ("reference", "batched"),
    "core": ("objects", "flat"),
}


def _probe_config():
    from repro.core.config import SimulationConfig

    return SimulationConfig(mesh_dims=(4, 4))


def _probe_rng():
    from repro.engine.rng import SimulationRNG

    return SimulationRNG(seed=0).stream("lint-probe")


def _probes() -> Dict[str, Callable[[object, str], None]]:
    """Per-kind constructibility probes: ``probe(factory, name)`` raises
    on failure.  Instances of the schedule kinds are type-checked against
    their declared base class instead of called."""
    from repro.core.config import SimulationConfig
    from repro.network.flatcore import CoreSchedule
    from repro.network.link import LinkSchedule
    from repro.router.pipeline import PipelineTiming
    from repro.router.switch import SwitchSchedule
    from repro.scenario.spec import Study
    from repro.core.simulator import build_table, build_topology

    base = _probe_config()
    topology = build_topology(base)
    table = build_table(base, topology)
    # A wrapping probe instance: every routing entry must either accept a
    # torus (dateline discipline) or refuse it with a pointed ValueError.
    torus_config = SimulationConfig(mesh_dims=(4, 4), torus=True, num_escape_vcs=2)
    torus = build_topology(torus_config)
    torus_table = build_table(torus_config, torus)

    def _expect_instance(kind_class):
        def probe(factory: object, name: str) -> None:
            if not isinstance(factory, kind_class):
                raise TypeError(
                    f"registered object is {type(factory).__name__}, "
                    f"expected a {kind_class.__name__} instance"
                )

        return probe

    def _probe_topology(factory, name):
        if name == "torus":
            config = torus_config
        elif name == "torus3d":
            config = SimulationConfig(
                mesh_dims=(4, 4, 4), topology="torus3d", num_escape_vcs=2
            )
        else:
            config = base
        factory(config)

    def _probe_routing(factory, name):
        factory(topology, table, base)
        try:
            factory(torus, torus_table, torus_config)
        except ValueError:
            # A pointed refusal of wraparound links (turn models) is a
            # valid answer; any other failure propagates as R001.
            pass

    def _probe_study(factory, name):
        study = factory()
        if not isinstance(study, Study):
            raise TypeError(
                f"study builder returned {type(study).__name__}, expected Study"
            )

    def _expect_callable(factory, name):
        if not callable(factory):
            raise TypeError(f"registered object {factory!r} is not callable")

    def _probe_workload(factory, name):
        from repro.workload import WorkloadDag, example_trace_path

        config = SimulationConfig(
            mesh_dims=(4, 4),
            workload=name,
            workload_trace=str(example_trace_path()),
        )
        dag = factory(config, topology)
        if not isinstance(dag, WorkloadDag):
            raise TypeError(
                f"workload factory returned {type(dag).__name__}, "
                "expected WorkloadDag"
            )

    return {
        "topology": _probe_topology,
        "table": lambda factory, name: factory(topology, base),
        "routing": _probe_routing,
        "selector": lambda factory, name: factory(_probe_rng()),
        "traffic": lambda factory, name: factory(topology),
        "injection": lambda factory, name: factory(base, 0.01),
        "pipeline": _expect_instance(PipelineTiming),
        "switch": _expect_instance(SwitchSchedule),
        "link": _expect_instance(LinkSchedule),
        "core": _expect_instance(CoreSchedule),
        "reporter": _expect_callable,
        "analytic": _expect_callable,
        "study": _probe_study,
        "workload": _probe_workload,
    }


def _entry_anchor(provenance: str) -> Tuple[str, int]:
    """Best-effort (path, line) of a registry entry's defining module."""
    module = provenance.split(":", 1)[0]
    try:
        spec = importlib.util.find_spec(module)
        if spec is not None and spec.origin:
            return spec.origin, 1
    except (ImportError, ValueError):
        pass
    return "src/repro/registry.py", 1


def probe_registry_entries(
    kinds: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """R001 findings for every registered entry that fails its probe."""
    from repro.registry import REGISTRIES

    probes = _probes()
    findings: List[Finding] = []
    for kind in sorted(kinds if kinds is not None else REGISTRIES):
        probe = probes.get(kind)
        if probe is None:
            continue
        registry = REGISTRIES[kind]
        for name in registry.names():
            entry = registry.entry(name)
            try:
                probe(entry.factory, name)
            except Exception as error:
                path, line = _entry_anchor(entry.provenance)
                findings.append(
                    Finding(
                        rule="R001",
                        path=path,
                        line=line,
                        message=(
                            f"registry entry {kind}/{name!r} "
                            f"({entry.provenance}) failed its constructibility "
                            f"probe: {type(error).__name__}: {error}"
                        ),
                    )
                )
    return findings


def study_spec_findings(study, origin: str) -> List[Finding]:
    """R002 findings for every non-``SimulationConfig`` key in ``study``."""
    from repro.core.config import SimulationConfig

    valid = {spec.name for spec in fields(SimulationConfig)}
    findings: List[Finding] = []

    def _bad_key(key: str, where: str) -> None:
        findings.append(
            Finding(
                rule="R002",
                path=origin,
                line=1,
                message=(
                    f"study {study.name!r}: {where} names {key!r}, which is "
                    "not a SimulationConfig field"
                ),
            )
        )

    def _walk(node, label: str) -> None:
        for key in node.base:
            if key not in valid:
                _bad_key(key, f"{label} base")
        for axis in node.axes:
            if axis.is_variant:
                for variant in axis.variants:
                    for key in variant.overrides:
                        if key not in valid:
                            _bad_key(
                                key, f"{label} variant {variant.name!r} overrides"
                            )
            elif axis.field not in valid:
                _bad_key(axis.field, f"{label} axis field")
        for scenario in node.scenarios:
            for key in scenario.overrides:
                if key not in valid:
                    _bad_key(key, f"{label} scenario {scenario.name!r} overrides")
        for member in node.members:
            _walk(member, f"{label} member {member.name!r}")

    _walk(study, "study")
    return findings


def _builtin_spec_files() -> List[Path]:
    """The shipped JSON study specs (next to repro.scenario.builtin)."""
    import repro.scenario.builtin as builtin

    spec_dir = Path(builtin.__file__).parent
    return sorted(spec_dir.glob("*.json"))


def _all_builtin_studies() -> List[Tuple[object, str]]:
    """Every builtin study with its origin: registered builders and the
    shipped JSON spec files (both must stay field-consistent)."""
    from repro.registry import STUDIES
    from repro.scenario.spec import Study

    studies: List[Tuple[object, str]] = []
    for name in STUDIES.names():
        builder = STUDIES.get(name)
        try:
            study = builder()
        except Exception:
            # R001's study probe reports the construction failure.
            continue
        studies.append((study, f"<builtin study {name!r}>"))
    for path in _builtin_spec_files():
        try:
            study = Study.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            studies.append((None, f"{path}: unreadable spec ({error})"))
            continue
        studies.append((study, str(path)))
    return studies


def schedule_pair_findings() -> List[Finding]:
    """R003 findings for mode kinds missing part of their schedule pair."""
    from repro.registry import REGISTRIES

    findings: List[Finding] = []
    for kind, required in sorted(REQUIRED_SCHEDULE_PAIRS.items()):
        registered = set(REGISTRIES[kind].names())
        for name in required:
            if name not in registered:
                findings.append(
                    Finding(
                        rule="R003",
                        path="src/repro/registry.py",
                        line=1,
                        message=(
                            f"registry kind {kind!r} is missing its "
                            f"{name!r} schedule entry; both halves of the "
                            "two-implementations-one-semantics pair must "
                            "be registered"
                        ),
                    )
                )
    return findings


class RegistryChecker(Checker):
    """Project-level R-checks over the live registries and builtin specs."""

    rules = ("R001", "R002", "R003")

    def check_project(self, sources: Sequence[PythonSource]) -> List[Finding]:
        findings = probe_registry_entries()
        for study, origin in _all_builtin_studies():
            if study is None:
                findings.append(
                    Finding(rule="R002", path=origin, line=1, message=origin)
                )
                continue
            findings.extend(study_spec_findings(study, origin))
        findings.extend(schedule_pair_findings())
        return findings
