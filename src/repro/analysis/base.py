"""Checker interface and shared AST helpers.

A checker implements one (or both) of two hooks:

``check_source(source)``
    Per-file pass over one :class:`~repro.analysis.source.PythonSource`;
    findings it returns are subject to that file's inline suppressions.

``check_project(sources)``
    One whole-project pass (cache-key fingerprint, registry probes);
    its findings are not suppressible from source comments -- they
    describe cross-file state, not a line of code.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.source import PythonSource

__all__ = ["Checker", "identifier_names", "walk_units"]


class Checker:
    """Base class: both hooks default to no findings."""

    #: Rule ids this checker can emit (introspection/docs).
    rules: Tuple[str, ...] = ()

    def check_source(self, source: PythonSource) -> List[Finding]:
        return []

    def check_project(self, sources: Sequence[PythonSource]) -> List[Finding]:
        return []


def identifier_names(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr appearing under ``node``.

    The wake checker's notion of "lexically paired": a guard identifier
    merely has to appear somewhere in the same top-level method.
    """
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def walk_units(tree: ast.AST) -> Iterable[ast.AST]:
    """The analysis units of a module: every top-level function.

    A unit is a module-level ``def`` or a direct method of a module-level
    class; functions nested inside a unit (closures, prebound receivers)
    belong to their enclosing unit, because the receiver built by a
    factory method shares that method's guard context.
    """
    assert isinstance(tree, ast.Module)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item
