"""C-checks: the result-cache key surface versus its committed fingerprint.

The content-addressed result cache (:mod:`repro.exec.cache`) keys every
entry by the configuration dictionary plus component provenance, under
``CACHE_FORMAT_VERSION``.  Changing what goes *into* that key -- adding
or removing a :class:`~repro.core.config.SimulationConfig` field,
changing a default, changing which fields contribute provenance --
without bumping the version would let results computed before the change
be served for configurations that no longer mean the same thing.

The guard is a committed fingerprint
(``src/repro/analysis/cache_key.fingerprint``, JSON) of that surface:

* ``config_fields`` -- every ``SimulationConfig`` field name with the
  repr of its default;
* ``provenance_fields`` -- the fields whose component provenance is
  folded into the key (``CONFIG_FIELD_KINDS`` plus ``topology``);
* ``cache_format_version`` -- the ``CACHE_FORMAT_VERSION`` the surface
  was recorded under.

The check (:func:`cache_key_findings`) is a pure function of the current
and recorded fingerprints, so tests can replay any drift scenario:

* surface changed, version unchanged -> **C001** (bump the version);
* surface changed, version bumped -> **C002** (regenerate the
  fingerprint: ``lint --update-fingerprint``);
* surface unchanged, version changed, or no readable fingerprint ->
  **C002** likewise.
"""

from __future__ import annotations

import json
import re
from dataclasses import MISSING, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.source import PythonSource

__all__ = [
    "CacheKeyChecker",
    "cache_key_findings",
    "current_fingerprint",
    "default_fingerprint_path",
    "load_fingerprint",
    "write_fingerprint",
]

#: Keys of the fingerprint that form the cache-key *surface* (everything
#: except the version it was recorded under).
_SURFACE_KEYS = ("config_fields", "provenance_fields")


def default_fingerprint_path() -> Path:
    """The committed fingerprint next to this package."""
    return Path(__file__).with_name("cache_key.fingerprint")


def current_fingerprint() -> Dict[str, object]:
    """The live cache-key surface plus the current format version."""
    from repro.core.config import SimulationConfig
    from repro.exec.cache import CACHE_FORMAT_VERSION
    from repro.registry import CONFIG_FIELD_KINDS

    config_fields: Dict[str, str] = {}
    for spec in fields(SimulationConfig):
        if spec.default is not MISSING:
            default = repr(spec.default)
        elif spec.default_factory is not MISSING:  # type: ignore[misc]
            default = f"<factory {spec.default_factory.__name__}>"  # type: ignore[misc]
        else:
            default = "<required>"
        config_fields[spec.name] = default
    return {
        "cache_format_version": CACHE_FORMAT_VERSION,
        "config_fields": config_fields,
        "provenance_fields": sorted(list(CONFIG_FIELD_KINDS) + ["topology"]),
    }


def load_fingerprint(path: Path) -> Optional[Dict[str, object]]:
    """The recorded fingerprint, or None when missing/unreadable."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_fingerprint(path: Optional[Path] = None) -> Path:
    """Record the current surface at ``path`` (default: the committed one)."""
    path = Path(path) if path is not None else default_fingerprint_path()
    text = json.dumps(current_fingerprint(), indent=2, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def _surface(fingerprint: Dict[str, object]) -> Dict[str, object]:
    return {key: fingerprint.get(key) for key in _SURFACE_KEYS}


def _describe_drift(
    current: Dict[str, object], recorded: Dict[str, object]
) -> str:
    """Human-readable summary of what moved between the two surfaces."""
    parts: List[str] = []
    cur_fields = current.get("config_fields") or {}
    rec_fields = recorded.get("config_fields") or {}
    if isinstance(cur_fields, dict) and isinstance(rec_fields, dict):
        added = sorted(set(cur_fields) - set(rec_fields))
        removed = sorted(set(rec_fields) - set(cur_fields))
        changed = sorted(
            name
            for name in set(cur_fields) & set(rec_fields)
            if cur_fields[name] != rec_fields[name]
        )
        if added:
            parts.append(f"fields added: {', '.join(added)}")
        if removed:
            parts.append(f"fields removed: {', '.join(removed)}")
        if changed:
            parts.append(f"defaults changed: {', '.join(changed)}")
    if current.get("provenance_fields") != recorded.get("provenance_fields"):
        parts.append("provenance field list changed")
    return "; ".join(parts) or "surface changed"


def _version_anchor() -> tuple:
    """(path, line) of the CACHE_FORMAT_VERSION assignment, best effort."""
    try:
        from repro.exec import cache as cache_module

        path = Path(cache_module.__file__)
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if re.match(r"\s*CACHE_FORMAT_VERSION\s*=", line):
                return str(path), number
        return str(path), 1
    except Exception:  # pragma: no cover - introspection fallback
        return "src/repro/exec/cache.py", 1


def cache_key_findings(
    current: Dict[str, object],
    recorded: Optional[Dict[str, object]],
    fingerprint_path: Path,
) -> List[Finding]:
    """C-findings for ``current`` (live) versus ``recorded`` surfaces."""
    fingerprint_name = str(fingerprint_path)
    if recorded is None:
        return [
            Finding(
                rule="C002",
                path=fingerprint_name,
                line=1,
                message=(
                    "cache-key fingerprint is missing or unreadable; "
                    "regenerate it with: lint --update-fingerprint"
                ),
            )
        ]
    findings: List[Finding] = []
    surface_drifted = _surface(current) != _surface(recorded)
    version_changed = current.get("cache_format_version") != recorded.get(
        "cache_format_version"
    )
    if surface_drifted and not version_changed:
        cache_path, cache_line = _version_anchor()
        drift = _describe_drift(current, recorded)
        findings.append(
            Finding(
                rule="C001",
                path=cache_path,
                line=cache_line,
                message=(
                    f"cache-key surface changed ({drift}) but "
                    f"CACHE_FORMAT_VERSION is still "
                    f"{current.get('cache_format_version')}; bump it here, "
                    "then regenerate the fingerprint "
                    "(lint --update-fingerprint)"
                ),
            )
        )
    elif surface_drifted or version_changed:
        findings.append(
            Finding(
                rule="C002",
                path=fingerprint_name,
                line=1,
                message=(
                    "recorded cache-key fingerprint is stale "
                    f"({_describe_drift(current, recorded)}"
                    f"{'; version changed' if version_changed else ''}); "
                    "regenerate it with: lint --update-fingerprint"
                ),
            )
        )
    return findings


class CacheKeyChecker(Checker):
    """Project-level C-checks against a fingerprint file."""

    rules = ("C001", "C002")

    def __init__(self, fingerprint_path: Optional[Path] = None) -> None:
        self._path = (
            Path(fingerprint_path)
            if fingerprint_path is not None
            else default_fingerprint_path()
        )

    def check_project(self, sources: Sequence[PythonSource]) -> List[Finding]:
        return cache_key_findings(
            current_fingerprint(), load_fingerprint(self._path), self._path
        )
