"""Lint orchestration: discovery, checker dispatch, reports, exit codes.

:func:`run_lint` is the library entry point; :func:`main` the CLI one
(shared by ``python -m repro.analysis`` and ``repro.cli lint``).  The
exit code is the OR of the failing families' bits
(:data:`~repro.analysis.findings.FAMILY_EXIT_BITS`): ``0`` clean, bit 0
determinism, bit 1 cache-key, bit 2 wake contract, bit 3 registry/spec.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.cachekey import (
    CacheKeyChecker,
    default_fingerprint_path,
    write_fingerprint,
)
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.findings import FAMILIES, FAMILY_EXIT_BITS, RULES, Finding
from repro.analysis.registry_spec import RegistryChecker
from repro.analysis.source import discover_sources
from repro.analysis.wake import WakeChecker

__all__ = ["LintReport", "add_lint_arguments", "main", "run_lint", "run_from_args"]

#: JSON report schema version (bump on breaking shape changes).
REPORT_FORMAT = 1


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """OR of the failing families' exit bits (0 = clean)."""
        code = 0
        for finding in self.findings:
            code |= FAMILY_EXIT_BITS[finding.family]
        return code

    def counts(self) -> dict:
        """Findings per family, in report order."""
        counts = {family: 0 for family in FAMILIES}
        for finding in self.findings:
            counts[finding.family] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "exit_code": self.exit_code,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        counts = self.counts()
        per_family = " ".join(f"{family}:{counts[family]}" for family in FAMILIES)
        lines.append(
            f"{len(self.findings)} finding(s) ({per_family}) "
            f"across {self.files_checked} file(s)"
            if self.findings
            else f"clean: 0 findings across {self.files_checked} file(s)"
        )
        return "\n".join(lines)


def default_checkers(fingerprint_path: Optional[Path] = None):
    """The four checker families at their committed configuration."""
    return (
        DeterminismChecker(),
        WakeChecker(),
        CacheKeyChecker(fingerprint_path=fingerprint_path),
        RegistryChecker(),
    )


def run_lint(
    paths: Sequence[Path],
    checkers=None,
    fingerprint_path: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with ``checkers`` (default:
    all four families), honouring inline suppressions, and return the
    sorted report."""
    if checkers is None:
        checkers = default_checkers(fingerprint_path=fingerprint_path)
    sources = discover_sources(paths)
    findings: List[Finding] = []
    for source in sources:
        for checker in checkers:
            for finding in checker.check_source(source):
                if not source.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    for checker in checkers:
        findings.extend(checker.check_project(sources))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, files_checked=len(sources))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared with ``repro.cli lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="lint_format",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--fingerprint",
        default=None,
        metavar="FILE",
        help="cache-key fingerprint to check against (default: the "
        "committed src/repro/analysis/cache_key.fingerprint)",
    )
    parser.add_argument(
        "--update-fingerprint",
        action="store_true",
        help="record the current cache-key surface into the fingerprint "
        "file and exit (after bumping CACHE_FORMAT_VERSION)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with its rationale and exit",
    )


def _default_paths() -> List[Path]:
    """Lint the package this linter is installed in."""
    return [Path(__file__).resolve().parents[1]]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            bit = FAMILY_EXIT_BITS[rule.family]
            print(f"{rule.id}  {rule.name}  [exit bit {bit}]")
            print(f"      {rule.rationale}")
        return 0
    fingerprint = Path(args.fingerprint) if args.fingerprint else None
    if args.update_fingerprint:
        path = write_fingerprint(fingerprint or default_fingerprint_path())
        print(f"cache-key fingerprint written: {path}")
        return 0
    paths = [Path(p) for p in args.paths] or _default_paths()
    try:
        report = run_lint(paths, fingerprint_path=fingerprint)
    except FileNotFoundError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 64
    except SyntaxError as error:
        print(f"lint: cannot parse {error.filename}: {error}", file=sys.stderr)
        return 64
    if args.output:
        Path(args.output).write_text(report.to_json(), encoding="utf-8")
    output = (
        report.to_json() if args.lint_format == "json" else report.format_text() + "\n"
    )
    try:
        sys.stdout.write(output)
        sys.stdout.flush()
    except BrokenPipeError:  # a consumer like `head` closed the pipe
        pass
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "House-style linter: determinism (D), cache-key drift (C), "
            "wake contract (W) and registry/spec consistency (R) checks"
        ),
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
