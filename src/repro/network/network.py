"""Network assembly: routers, interfaces and links wired from a topology."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.network.interface import NetworkInterface
from repro.network.link import Link
from repro.network.topology import LOCAL_PORT, Topology, port_direction
from repro.router.config import RouterConfig
from repro.router.router import Router
from repro.routing.base import RoutingAlgorithm
from repro.selection.base import PathSelector
from repro.stats.collector import StatsCollector

__all__ = ["Network"]

#: Factory producing one path selector per router (selector state is per router).
SelectorFactory = Callable[[int], PathSelector]


class Network:
    """A complete simulatable network.

    Parameters
    ----------
    topology:
        Node/link structure to build.
    router_config:
        Microarchitecture shared by all routers.
    routing:
        Routing algorithm shared by all routers (stateless per node).
    selector_factory:
        Called once per node to create that router's path selector.
    stats:
        Statistics collector notified by every network interface.
    sources:
        Optional per-node traffic sources (``sources[node]`` may be None
        for nodes that only sink traffic).
    """

    def __init__(
        self,
        topology: Topology,
        router_config: RouterConfig,
        routing: RoutingAlgorithm,
        selector_factory: SelectorFactory,
        stats: StatsCollector,
        sources: Optional[Sequence[Optional[object]]] = None,
    ) -> None:
        self._topology = topology
        self._router_config = router_config
        self._routing = routing
        self._stats = stats

        self._routers: List[Router] = [
            Router(
                node_id=node,
                topology=topology,
                config=router_config,
                routing=routing,
                selector=selector_factory(node),
            )
            for node in range(topology.num_nodes)
        ]
        self._interfaces: List[NetworkInterface] = [
            NetworkInterface(
                node_id=node,
                router=self._routers[node],
                routing=routing,
                stats=stats,
                source=sources[node] if sources is not None else None,
            )
            for node in range(topology.num_nodes)
        ]
        self._links: List[Link] = []
        self._wire()

    def _wire(self) -> None:
        """Connect router-to-router links and the local interfaces."""
        for node, port, neighbor, neighbor_port in self._topology.links():
            self._routers[node].connect_output(port, self._routers[neighbor], neighbor_port)
            self._routers[neighbor].set_upstream(neighbor_port, self._routers[node], port)
            self._links.append(
                Link(
                    source=node,
                    source_port=port,
                    destination=neighbor,
                    destination_port=neighbor_port,
                    delay=self._router_config.link_delay_for(
                        port_direction(port)[0]
                    ),
                )
            )
        for node in range(self._topology.num_nodes):
            router = self._routers[node]
            interface = self._interfaces[node]
            router.connect_output(LOCAL_PORT, interface, LOCAL_PORT)
            router.set_upstream(LOCAL_PORT, interface, LOCAL_PORT)

    # -- accessors -----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology this network was built from."""
        return self._topology

    @property
    def routers(self) -> List[Router]:
        """All routers, indexed by node id."""
        return self._routers

    @property
    def interfaces(self) -> List[NetworkInterface]:
        """All network interfaces, indexed by node id."""
        return self._interfaces

    @property
    def links(self) -> List[Link]:
        """Descriptors of every unidirectional router-to-router link."""
        return list(self._links)

    def router(self, node: int) -> Router:
        """The router of one node."""
        return self._routers[node]

    def interface(self, node: int) -> NetworkInterface:
        """The network interface of one node."""
        return self._interfaces[node]

    def components(self) -> List[object]:
        """All clocked components in kernel registration order.

        Registration order is the per-cycle phase order *and* the order in
        which interfaces draw from the shared network-wide message budget,
        so it must be deterministic: routers by node id, then interfaces
        by node id.  Every component implements the quiescence hooks
        (``next_event_cycle``/``set_wake``), so this list can be driven by
        either kernel schedule with bit-identical results.
        """
        return list(self._routers) + list(self._interfaces)

    def is_idle(self) -> bool:
        """True when no flit is buffered or in flight anywhere."""
        return all(router.is_idle() for router in self._routers) and all(
            interface.is_idle() for interface in self._interfaces
        )

    def __repr__(self) -> str:
        return (
            f"Network(topology={self._topology!r}, "
            f"pipeline={self._router_config.pipeline.name})"
        )
