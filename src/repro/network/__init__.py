"""Network substrate: topologies, links, interfaces and assembly.

The LAPSES evaluation uses a 16x16 two-dimensional mesh of 5-port routers
(four neighbor ports plus one local port).  This subpackage provides:

* :mod:`repro.network.topology` -- n-dimensional mesh and torus
  topologies with the port-numbering convention shared by the whole
  library.
* :mod:`repro.network.link` -- pipelined unit-delay links carrying flits
  in one direction and credits in the other.
* :mod:`repro.network.interface` -- per-node network interfaces holding
  the source queues and recording delivered messages.
* :mod:`repro.network.network` -- assembly of routers, links and
  interfaces into a simulatable network.
"""

from repro.network.link import Link
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import (
    LOCAL_PORT,
    MeshTopology,
    Topology,
    TorusTopology,
    port_for,
    port_direction,
)

__all__ = [
    "LOCAL_PORT",
    "Link",
    "MeshTopology",
    "Network",
    "NetworkInterface",
    "Topology",
    "TorusTopology",
    "port_direction",
    "port_for",
]
