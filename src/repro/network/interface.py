"""Per-node network interfaces (NIs).

The network interface sits on the router's local port (port 0).  On the
injection side it holds the source queue of messages produced by its
traffic source, breaks each message into flits and feeds them to the
router's local input port under credit-based flow control, mirroring an
upstream router (one message owns one virtual channel until its tail has
been sent).  On the ejection side it consumes flits delivered by the
router's local output port, returns credits, and reports completed
messages to the statistics collector.

For look-ahead routers the NI also performs the first-hop table lookup and
places the resulting route decision in the header flit, as described in
Section 3 of the paper (the header must arrive at the first router with
its valid path options already filled in).

The ejection-side mailboxes follow the link-transport schedule selected
by :attr:`~repro.router.config.RouterConfig.link_mode`: per-flit
``(cycle, vc, flit)`` tuple deques under ``"reference"``, cycle-indexed
:class:`~repro.network.link.ArrivalWheel` lanes drained whole under
``"batched"`` -- see :mod:`repro.network.link`.  Both schedules are
bit-identical for all wired traffic (the quiescence hooks report the
same earliest-arrival cycles); external pushes through the public
``receive_*`` methods follow the reference FIFO/head-blocking semantics
via the wheel's ``far`` path, up to the early-wake approximation noted
in :mod:`repro.network.link`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from repro.engine.kernel import no_wake
from repro.network.link import ArrivalWheel
from repro.network.topology import LOCAL_PORT
from repro.router.router import Router
from repro.routing.base import RoutingAlgorithm
from repro.stats.collector import StatsCollector
from repro.traffic.message import Flit, Message

__all__ = ["NetworkInterface"]


class _InjectionSlot:
    """Book-keeping for one virtual channel of the injection port."""

    __slots__ = ("vc", "credits", "flits", "busy")

    def __init__(self, vc: int, credits: int) -> None:
        self.vc = vc
        self.credits = credits
        self.flits: Deque[Flit] = deque()
        self.busy = False


class NetworkInterface:
    """The injection/ejection endpoint attached to one router's local port."""

    def __init__(
        self,
        node_id: int,
        router: Router,
        routing: RoutingAlgorithm,
        stats: StatsCollector,
        source: Optional[object] = None,
    ) -> None:
        self._node_id = node_id
        self._router = router
        self._routing = routing
        self._decide = routing.decide_cached
        self._stats = stats
        self._source = source
        config = router.config
        self._link_delay = config.link_delay
        self._credit_delay = config.credit_delay
        self._lookahead = config.pipeline.lookahead
        self._slots: List[_InjectionSlot] = [
            _InjectionSlot(vc, config.buffer_depth) for vc in range(config.vcs_per_port)
        ]
        self._injection_queue: Deque[Message] = deque()
        self._next_slot = 0
        # Ejection-side mailboxes: arrival lanes under the batched link
        # schedule, tuple deques under the reference one.
        self._batched_links = config.link_schedule().batched
        if self._batched_links:
            # Eject entries are (vc, flit) pairs, credit entries plain VCs.
            wheel_size = 1 + max(
                config.pipeline.switch_delay, config.credit_delay
            )
            self._eject_mailbox = ArrivalWheel(wheel_size)
            self._credit_mailbox = ArrivalWheel(wheel_size)
            # Skip the class-level dispatch: the kernel calls the batched
            # drain directly.
            self.deliver = self._deliver_batched_links
            # Prebound router receivers for the injection flit and the
            # ejection-side credit return (see Router.make_flit_receiver);
            # wrapped plain methods when the router is a test double.
            from repro.router.router import _credit_receiver_for, _flit_receiver_for

            self._send_router_flit = _flit_receiver_for(router, LOCAL_PORT)
            self._send_router_credit = _credit_receiver_for(router, LOCAL_PORT)
        else:
            self._eject_mailbox = deque()
            self._credit_mailbox = deque()
        #: Wake callback installed by an activity-aware kernel.
        self._wake: Callable[[int], None] = no_wake
        # Kernel active-flag view (see set_active_hint): the default
        # always reads False, so un-registered interfaces wake per event.
        self._kernel_active: Sequence[bool] = (False,)
        self._kernel_index = 0

    # -- identity --------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """Node this interface serves."""
        return self._node_id

    @property
    def source(self) -> Optional[object]:
        """The traffic source feeding this interface (None for sinks)."""
        return self._source

    @property
    def queue_length(self) -> int:
        """Messages waiting in the source queue (not yet being injected)."""
        return len(self._injection_queue)

    def offer(self, message: Message) -> None:
        """Place a message in the source queue (used by tests and sources)."""
        # Deliberately unguarded: components start every run in the
        # active set, so pre-run offers are always picked up, and the
        # interface's own evaluate() offers while it is already active;
        # mid-run offers from *outside* the schedule need an
        # exhaustive-mode kernel (documented in next_event_cycle).
        self._injection_queue.append(message)  # repro: allow=W001
        self._stats.record_created(message)

    # -- mailbox interface (called by the router) --------------------------------

    def receive_flit(self, port: int, vc: int, flit: Flit, arrival_cycle: int) -> None:
        """Accept an ejected flit from the router's local output port."""
        if self._batched_links:
            # No window assumption for the public method: route far.
            self._eject_mailbox.far.append((arrival_cycle, vc, flit))
        else:
            self._eject_mailbox.append((arrival_cycle, vc, flit))
        if not self._kernel_active[self._kernel_index]:
            self._wake(arrival_cycle)

    def receive_credit(self, port: int, vc: int, arrival_cycle: int) -> None:
        """Accept a credit for a freed slot of the router's local input port."""
        if self._batched_links:
            self._credit_mailbox.far.append((arrival_cycle, vc))
        else:
            self._credit_mailbox.append((arrival_cycle, vc))
        if not self._kernel_active[self._kernel_index]:
            self._wake(arrival_cycle)

    def make_flit_receiver(self, port: int) -> Callable[[int, Flit, int], None]:
        """Prebound fast path of :meth:`receive_flit` (batched link
        schedule): the router's per-pass flush calls it without method
        dispatch.  Wraps the plain method under the reference schedule."""
        if not self._batched_links:
            receive = self.receive_flit

            def receiver(vc: int, flit: Flit, arrival_cycle: int) -> None:
                receive(port, vc, flit, arrival_cycle)

            return receiver
        wheel = self._eject_mailbox
        slots = wheel.slots
        size = wheel.size

        def receiver(vc: int, flit: Flit, arrival_cycle: int) -> None:
            slots[arrival_cycle % size].append((vc, flit))
            if not self._kernel_active[self._kernel_index]:
                self._wake(arrival_cycle)

        return receiver

    def make_credit_receiver(self, port: int) -> Callable[[int, int], None]:
        """Prebound fast path of :meth:`receive_credit`; same contract as
        :meth:`make_flit_receiver`."""
        if not self._batched_links:
            receive = self.receive_credit

            def receiver(vc: int, arrival_cycle: int) -> None:
                receive(port, vc, arrival_cycle)

            return receiver
        wheel = self._credit_mailbox
        slots = wheel.slots
        size = wheel.size

        def receiver(vc: int, arrival_cycle: int) -> None:
            slots[arrival_cycle % size].append(vc)
            if not self._kernel_active[self._kernel_index]:
                self._wake(arrival_cycle)

        return receiver

    # -- per-cycle behaviour ------------------------------------------------------

    def deliver(self, cycle: int) -> None:
        """Consume ejected flits and returned credits due this cycle."""
        # Batched instances bind ``self.deliver`` to the wheel drain at
        # construction, so the kernel never reaches this guard; it keeps
        # explicit class-level calls correct.  To instrument the batched
        # drain, patch the class *before* constructing the simulator.
        if self._batched_links:
            self._deliver_batched_links(cycle)
            return
        mailbox = self._eject_mailbox
        while mailbox and mailbox[0][0] <= cycle:
            _, vc, flit = mailbox.popleft()
            # The interface drains the ejection channel immediately and
            # returns the buffer slot to the router's local output port.
            self._router.receive_credit(LOCAL_PORT, vc, cycle + self._credit_delay)
            if flit.is_tail:
                message = flit.message
                message.ejection_cycle = cycle
                self._stats.record_delivered(message, cycle)
        credits = self._credit_mailbox
        while credits and credits[0][0] <= cycle:
            _, vc = credits.popleft()
            self._slots[vc].credits += 1

    def _deliver_batched_links(self, cycle: int) -> None:
        """Wheel version of :meth:`deliver`: consume this cycle's lanes whole.

        Per-flit effects (credit return through the prebound router
        receiver, tail-delivery recording) are identical to the
        reference drain, in the same FIFO order; the wired-window
        contract (see :mod:`repro.network.link`) makes the lane for
        ``cycle`` exact, and external pushes land in the wheels' ``far``
        lists, drained by explicit comparison.
        """
        wheel = self._eject_mailbox
        lane = wheel.slots[cycle % wheel.size]
        if lane:
            send_credit = self._send_router_credit
            credit_arrival = cycle + self._credit_delay
            stats = self._stats
            for vc, flit in lane:
                send_credit(vc, credit_arrival)
                if flit.is_tail:
                    message = flit.message
                    message.ejection_cycle = cycle
                    stats.record_delivered(message, cycle)
            del lane[:]
        if wheel.far:
            self._drain_far_ejects(cycle)
        wheel = self._credit_mailbox
        lane = wheel.slots[cycle % wheel.size]
        if lane:
            slots = self._slots
            for vc in lane:
                slots[vc].credits += 1
            del lane[:]
        if wheel.far:
            self._drain_far_credits(cycle)

    def _drain_far_ejects(self, cycle: int) -> None:
        """Consume due ``far`` ejections (external pushes), FIFO order."""
        for _, vc, flit in self._eject_mailbox.drain_far_due(cycle):
            self._send_router_credit(vc, cycle + self._credit_delay)
            if flit.is_tail:
                message = flit.message
                message.ejection_cycle = cycle
                self._stats.record_delivered(message, cycle)

    def _drain_far_credits(self, cycle: int) -> None:
        """Apply due ``far`` injection credits (external pushes)."""
        for _, vc in self._credit_mailbox.drain_far_due(cycle):
            self._slots[vc].credits += 1

    def evaluate(self, cycle: int) -> None:
        """Generate new messages, start injections and send one flit."""
        if self._source is not None:
            for message in self._source.messages_due(cycle):
                self.offer(message)
        self._start_new_injections(cycle)
        self._inject_one_flit(cycle)

    # -- injection machinery -------------------------------------------------------

    def _start_new_injections(self, cycle: int) -> None:
        """Assign queued messages to free injection virtual channels."""
        if not self._injection_queue:
            return
        for slot in self._slots:
            if not self._injection_queue:
                break
            if slot.busy or slot.flits:
                continue
            message = self._injection_queue.popleft()
            slot.busy = True
            slot.flits.extend(message.make_flits())
            header = slot.flits[0]
            if self._lookahead:
                # First-hop lookup performed by the interface so the header
                # arrives at the source router ready for arbitration.
                header.lookahead_node = self._node_id
                header.lookahead_decision = self._decide(
                    self._node_id, message.destination
                )

    def _inject_one_flit(self, cycle: int) -> None:
        """Send at most one flit over the injection channel this cycle."""
        num_slots = len(self._slots)
        for offset in range(num_slots):
            index = (self._next_slot + offset) % num_slots
            slot = self._slots[index]
            if not slot.flits or slot.credits <= 0:
                continue
            flit = slot.flits.popleft()
            slot.credits -= 1
            if flit.is_head:
                flit.message.injection_cycle = cycle
                self._stats.record_injected(flit.message, cycle)
            if self._batched_links:
                self._send_router_flit(slot.vc, flit, cycle + self._link_delay)
            else:
                self._router.receive_flit(
                    LOCAL_PORT, slot.vc, flit, cycle + self._link_delay
                )
            if flit.is_tail:
                slot.busy = False
            self._next_slot = (index + 1) % num_slots
            return

    # -- quiescence (activity-aware kernel) ----------------------------------------

    def set_wake(self, callback: Callable[[int], None]) -> None:
        """Install the kernel callback invoked when an event is scheduled
        for this interface (an ejected flit or a returned credit)."""
        self._wake = callback

    def set_active_hint(self, flags: Sequence[bool], index: int) -> None:
        """Install the kernel's live active-flag view of this interface;
        send paths read ``flags[index]`` and skip the wake callback when
        the interface is already active (see ``Router.set_active_hint``)."""
        self._kernel_active = flags
        self._kernel_index = index

    def wake_source(self, cycle: int) -> None:
        """Wake this interface for a source event scheduled at ``cycle``.

        Closed-loop sources (:mod:`repro.workload`) queue new work from
        *outside* the interface's own evaluation -- a delivery elsewhere
        releases a DAG successor here -- so they call this to re-arm an
        interface the activity kernel may have put to sleep on a ``None``
        forecast.  The released work is always strictly future
        (``cycle`` is after the current one), matching the kernel's
        wake contract.
        """
        if not self._kernel_active[self._kernel_index]:
            self._wake(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle (``>= cycle``) at which this interface has work.

        Returns ``cycle`` when a flit can be injected (a slot with flits
        and credits) or a queued message can claim a free slot; otherwise
        the earliest of the pending mailbox arrivals and the source's next
        due cycle (credit-blocked slots are unblocked by a credit arrival,
        which wakes the interface); and ``None`` when the source is
        exhausted and nothing is queued or in flight.  Components start
        every run in the active set, so messages placed with :meth:`offer`
        before the run begins are always picked up; mid-run external
        offers require an exhaustive-schedule kernel.
        """
        free_slot = False
        for slot in self._slots:
            if slot.flits:
                if slot.credits > 0:
                    # A flit can be injected this cycle.
                    return cycle
                # Credit-blocked: the returning credit wakes us.
            elif not slot.busy:
                free_slot = True
        if self._injection_queue and free_slot:
            # A queued message can claim a free virtual channel now.
            return cycle
        upcoming: Optional[int] = None
        if self._batched_links:
            upcoming = self._eject_mailbox.earliest_pending(cycle)
            arrival = self._credit_mailbox.earliest_pending(cycle)
            if arrival is not None and (upcoming is None or arrival < upcoming):
                upcoming = arrival
        else:
            if self._eject_mailbox:
                upcoming = self._eject_mailbox[0][0]
            if self._credit_mailbox:
                arrival = self._credit_mailbox[0][0]
                if upcoming is None or arrival < upcoming:
                    upcoming = arrival
        source = self._source
        if source is not None:
            next_due = getattr(source, "next_due_cycle", None)
            if next_due is None:
                # Sources without a due-cycle forecast must be polled
                # every cycle for new messages.
                return cycle
            due = next_due()
            if due is not None:
                due = max(due, cycle)
                if upcoming is None or due < upcoming:
                    upcoming = due
        return upcoming

    # -- introspection ---------------------------------------------------------------

    def is_idle(self) -> bool:
        """True when nothing is queued, in flight or awaiting ejection."""
        if self._injection_queue or self._eject_mailbox:
            return False
        return all(not slot.flits for slot in self._slots)

    def __repr__(self) -> str:
        return f"NetworkInterface(node={self._node_id}, queued={len(self._injection_queue)})"
