"""Link descriptors.

Flit transport itself is implemented by the routers' scheduled mailboxes
(a flit granted the switch at cycle ``s`` is scheduled to appear in the
downstream buffer at ``s + switch_delay + link_delay``), which avoids a
per-link object in the simulation's inner loop.  Because every link and
credit delay is at least one cycle (enforced here and in
:class:`~repro.router.config.RouterConfig`), a scheduled arrival always
lies strictly in the future -- the invariant that lets the activity-aware
kernel sleep a component until its next mailbox arrival without ever
missing a same-cycle event.  :class:`Link` is the descriptive record the
network assembly keeps for each unidirectional connection so that wiring
can be inspected, validated and reported.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """One unidirectional router-to-router connection.

    Attributes
    ----------
    source, source_port:
        Upstream router (node id) and its output port.
    destination, destination_port:
        Downstream router (node id) and its input port.
    delay:
        Link traversal time in cycles (1 in the paper).
    """

    source: int
    source_port: int
    destination: int
    destination_port: int
    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ValueError("links need at least one cycle of delay")
        if self.source == self.destination:
            raise ValueError("links connect distinct routers")

    def reversed(self) -> "Link":
        """The link carrying traffic in the opposite direction."""
        return Link(
            source=self.destination,
            source_port=self.destination_port,
            destination=self.source,
            destination_port=self.source_port,
            delay=self.delay,
        )
