"""Link descriptors and link-level flit transport schedules.

Flit transport itself is implemented by the routers' scheduled mailboxes
(a flit granted the switch at cycle ``s`` is scheduled to appear in the
downstream buffer at ``s + switch_delay + link_delay``), which avoids a
per-link object in the simulation's inner loop.  Because every link and
credit delay is at least one cycle (enforced here and in
:class:`~repro.router.config.RouterConfig`), a scheduled arrival always
lies strictly in the future -- the invariant that lets the activity-aware
kernel sleep a component until its next mailbox arrival without ever
missing a same-cycle event.  :class:`Link` is the descriptive record the
network assembly keeps for each unidirectional connection so that wiring
can be inspected, validated and reported.

Link-transport schedules
------------------------
*How* the in-flight flits and credits of one link are stored and drained
has two implementations over one semantics, selected by
:attr:`~repro.core.config.SimulationConfig.link_mode` (mirroring the
kernel's exhaustive/activity split and the router's ``switch_mode``):

``"reference"``
    One ``deque`` of ``(cycle, vc, payload)`` tuples per upstream link,
    drained tuple-at-a-time by comparing the head's arrival cycle.
    Simple, obviously correct, and kept as the executable specification.

``"batched"``
    The default.  Each component's inbound flits and credits live in an
    :class:`ArrivalWheel`: a cycle-indexed ring of arrival lanes (one
    bucket per cycle modulo the wheel size), exploiting that every
    per-hop delay is a small configuration constant.  A sender appends
    its payload to the lane ``slots[arrival % size]`` through a prebound
    receiver closure built at wiring time, so ``_forward`` issues no
    per-flit downstream method dispatch; the drain consumes the current
    cycle's whole lane in one slice -- no arrival-cycle comparisons, no
    tuple-at-a-time popleft loop -- and resets it.

    Lane membership is exact because (1) every wired send satisfies
    ``arrival - send_cycle <= max_delay < size``, (2) the activity
    kernel's wake contract guarantees the receiving component drains at
    exactly the arrival cycle, and (3) an earlier drain of the same lane
    at ``arrival - size`` would predate the send.  Arrivals outside that
    contract -- tests and plugin components calling the plain
    ``receive_flit``/``receive_credit`` methods with arbitrary cycles --
    go to the wheel's ``far`` overflow list, checked (one boolean) per
    drain and processed by explicit due-cycle comparison with the
    reference's per-lane FIFO head-blocking.  (One deliberate far-path
    approximation: ``next_event_cycle`` reports the minimum over *all*
    pending far arrivals, where a reference deque reports only its head
    -- for out-of-order external pushes the batched component may wake
    one cycle early and no-op, which is always safe; the wired path
    keeps ``far`` empty, so simulations are bit-identical.)

Both schedules must produce bit-identical
:class:`~repro.core.results.SimulationResult`\\ s; the quiescence hooks
(``next_event_cycle``, wake callbacks) report identical values because
the wheel's earliest pending arrival equals the reference deques'
minimum head.  ``tests/test_link_equivalence.py`` enforces this across
the full kernel x switch x link schedule cube, and
``tests/test_router_properties.py`` checks the wheel invariants
(slot-exact lane membership, emptiness after drain).

The schedules are registered under the ``"link"`` registry kind so
:class:`~repro.core.config.SimulationConfig.link_mode` is validated
eagerly and the schedule's provenance is folded into result-cache keys
like every other pluggable component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.registry import register

__all__ = [
    "ArrivalWheel",
    "BATCHED",
    "Link",
    "LinkSchedule",
    "REFERENCE",
    "link_schedule_by_name",
]

@dataclass(frozen=True)
class Link:
    """One unidirectional router-to-router connection.

    Attributes
    ----------
    source, source_port:
        Upstream router (node id) and its output port.
    destination, destination_port:
        Downstream router (node id) and its input port.
    delay:
        Link traversal time in cycles (1 in the paper).
    """

    source: int
    source_port: int
    destination: int
    destination_port: int
    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ValueError("links need at least one cycle of delay")
        if self.source == self.destination:
            raise ValueError("links connect distinct routers")

    def reversed(self) -> "Link":
        """The link carrying traffic in the opposite direction."""
        return Link(
            source=self.destination,
            source_port=self.destination_port,
            destination=self.source,
            destination_port=self.source_port,
            delay=self.delay,
        )


class ArrivalWheel:
    """Cycle-indexed ring of arrival lanes for one component's inbound
    flits or credits (the batched link-transport schedule).

    ``slots[c % size]`` is the lane of payloads arriving at cycle ``c``;
    the wheel size exceeds the largest configured per-hop delay, so the
    lane for one cycle can never hold another cycle's wired traffic (see
    the module docstring for the exactness argument).  Payload shape is
    the owner's choice -- the router stores ``(flat_channel, flit)``
    pairs and flat channel indices, the interface ``(vc, flit)`` pairs
    and plain VCs -- the wheel itself never inspects entries.

    ``far`` is the overflow list for arrivals pushed outside the wired
    window (tests, plugin components): ``(arrival, *payload)`` tuples
    processed by explicit due-cycle comparison on every drain where it
    is non-empty.

    Truthiness and ``len`` cover everything pending, so introspection
    (``is_idle``, tests) treats a wheel like the reference deques.
    """

    __slots__ = ("size", "slots", "far")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("arrival wheels need at least one lane")
        self.size = size
        self.slots: List[List[object]] = [[] for _ in range(size)]
        self.far: List[Tuple] = []

    def drain_far_due(self, cycle: int, lane_key=None) -> List[Tuple]:
        """Remove and return the ``far`` entries due at ``cycle``.

        Entries are ``(arrival, *payload)`` tuples pushed by the owner's
        plain ``receive_*`` methods; the due ones (``arrival <= cycle``)
        are returned in FIFO order for the owner to apply its per-entry
        effects, the rest stay queued.  A due entry queued *behind* a
        not-yet-due entry of the same lane stays queued too, exactly as
        it would sit head-blocked behind that entry in a reference
        mailbox deque; ``lane_key(entry)`` identifies the lane (None =
        the whole wheel is one lane, as for a network interface's single
        local port).  Cold path: the wired simulation traffic never
        touches ``far``.
        """
        far = self.far
        due = []
        keep = []
        blocked = set()
        for entry in far:
            key = lane_key(entry) if lane_key is not None else None
            if entry[0] <= cycle and key not in blocked:
                due.append(entry)
            else:
                blocked.add(key)
                keep.append(entry)
        if due:
            far[:] = keep
        return due

    def earliest_pending(self, cycle: int) -> Optional[int]:
        """Earliest arrival at or after ``cycle`` among the lanes, plus
        any ``far`` entry's raw arrival (which may lie in the past, as a
        reference deque's head may); None when the wheel is empty.

        The emptiness gate is a C-level ``any`` over the handful of
        lanes, so senders pay no per-push bookkeeping for it.
        """
        upcoming: Optional[int] = None
        slots = self.slots
        if any(slots):
            size = self.size
            for offset in range(size):
                if slots[(cycle + offset) % size]:
                    upcoming = cycle + offset
                    break
        for entry in self.far:
            arrival = entry[0]
            if upcoming is None or arrival < upcoming:
                upcoming = arrival
        return upcoming

    def __bool__(self) -> bool:
        return bool(self.far) or any(self.slots)

    def __len__(self) -> int:
        return sum(len(lane) for lane in self.slots) + len(self.far)

    def __repr__(self) -> str:
        return f"ArrivalWheel(size={self.size}, pending={len(self)})"


# -- the registered schedules --------------------------------------------------------


@dataclass(frozen=True)
class LinkSchedule:
    """One named implementation of link-level flit/credit transport.

    Parameters
    ----------
    name:
        Report name ("reference" or "batched").
    batched:
        Whether routers and interfaces should store in-flight flits in
        cycle-indexed arrival wheels (lanes drained whole, sends through
        prebound receivers) instead of per-flit mailbox tuple deques.
    """

    name: str
    batched: bool


#: The per-flit tuple-deque reference implementation.
REFERENCE = LinkSchedule(name="reference", batched=False)

#: The per-link arrival-lane transport (default).
BATCHED = LinkSchedule(name="batched", batched=True)

register("link", REFERENCE.name, obj=REFERENCE, provenance=f"{__name__}:REFERENCE")
register("link", BATCHED.name, obj=BATCHED, provenance=f"{__name__}:BATCHED")

def link_schedule_by_name(name: str) -> LinkSchedule:
    """Look up a registered link-transport schedule by its report name."""
    from repro.registry import LINK_MODES

    schedule = LINK_MODES.get(name)
    if not isinstance(schedule, LinkSchedule):
        raise ValueError(
            f"link mode {name!r} is registered but is not a LinkSchedule: "
            f"{schedule!r}"
        )
    return schedule
