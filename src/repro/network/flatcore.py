"""Core schedules: the object network vs. the flat struct-of-arrays core.

The simulator's fourth two-implementations-one-semantics axis, selected
by :attr:`~repro.core.config.SimulationConfig.core_mode`:

``"objects"``
    The default.  The network's routers and interfaces are registered
    with the kernel as individual components, exactly as in every prior
    release; all per-cycle behaviour lives in
    :class:`~repro.router.router.Router` and
    :class:`~repro.network.interface.NetworkInterface`.

``"flat"``
    The whole network is lowered into one kernel component,
    :class:`FlatNetworkCore`, holding the hot state in flat preallocated
    parallel arrays -- one global virtual-channel table indexed by
    ``(router, port, vc)`` with arrays for buffer occupancy, credits,
    routing decisions (allocated output channel/port) and the two-stage
    round-robin arbiter pointers -- plus four global cycle-indexed
    arrival wheels replacing the per-component mailboxes.  Per cycle it
    drains the wheels once, then runs virtual-channel allocation, switch
    allocation and forwarding as a single pass over the per-router
    active index lists, then the injection pass over the due network
    interfaces.  This removes the per-component kernel dispatch, the
    per-event wake callbacks and the per-router mailbox scans that bound
    the busy path at 16x16/32x32 saturation (see ``BENCH_core.json``).

Both schedules are bit-identical: the flat core replays the object
core's per-cycle phase order exactly (all routers deliver, interfaces
deliver, routers evaluate in node order, interfaces evaluate in node
order), keeps every RNG consultation site (path selectors, traffic
sources, the shared message budget) in the same order, and reports the
same quiescence cycles to the activity kernel.
``tests/test_link_equivalence.py`` enforces this across the full
sixteen-combination kernel x switch x link x core cube.

A note on numpy: the busy path is dominated by irregular, data-dependent
control flow (per-port round-robin groups, head/tail transitions,
selector consultations) over a few dozen live channels per cycle, so
vectorizing it wholesale would replace cheap short Python loops with
per-cycle array-build overhead.  The flat core therefore stays in plain
index arithmetic over preallocated lists, which profiling shows is where
the win is; numpy remains an option for future whole-array passes.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.engine.kernel import no_wake
from repro.network.topology import LOCAL_PORT, port_direction
from repro.registry import CORE_MODES, register
from repro.selection.base import OutputPortStatus, PathSelector

__all__ = [
    "CORE_MODE_NAMES",
    "CoreSchedule",
    "FLAT",
    "FlatNetworkCore",
    "OBJECTS",
    "core_schedule_by_name",
]


@dataclass(frozen=True)
class CoreSchedule:
    """One named implementation of the whole-network core.

    Parameters
    ----------
    name:
        Report name ("objects" or "flat").
    flat:
        Whether the simulator should lower the network into a
        :class:`FlatNetworkCore` instead of registering the object
        components individually.
    """

    name: str
    flat: bool


#: The per-component object network (default).
OBJECTS = CoreSchedule(name="objects", flat=False)

#: The flat struct-of-arrays whole-network core.
FLAT = CoreSchedule(name="flat", flat=True)

register("core", OBJECTS.name, obj=OBJECTS, provenance=f"{__name__}:OBJECTS")
register("core", FLAT.name, obj=FLAT, provenance=f"{__name__}:FLAT")

#: Built-in schedule names.
CORE_MODE_NAMES = (OBJECTS.name, FLAT.name)


def core_schedule_by_name(name: str) -> CoreSchedule:
    """Look up a registered core schedule by its report name."""
    schedule = CORE_MODES.get(name)
    if not isinstance(schedule, CoreSchedule):
        raise ValueError(
            f"core mode {name!r} is registered but is not a CoreSchedule: "
            f"{schedule!r}"
        )
    return schedule


# Input virtual-channel states as plain ints (VCState without the enum
# dispatch): IDLE -> 0, ROUTING -> 1, ACTIVE -> 2.
_IDLE = 0
_ROUTING = 1
_ACTIVE = 2

#: ``ni_wake`` sentinel for "idle until an external credit arrival".
_NEVER = math.inf


def _membership_remove(members: List[int], flat: int) -> None:
    """Remove ``flat`` from a sorted membership array if present."""
    index = bisect_left(members, flat)
    if index < len(members) and members[index] == flat:
        del members[index]


class FlatNetworkCore:
    """The whole network as one flat-array kernel component.

    Built from an assembled :class:`~repro.network.network.Network` --
    which supplies the wiring, the per-router path selectors (created in
    node order, so RNG stream creation order matches the object core
    exactly) and the per-node traffic sources -- and the simulation's
    :class:`~repro.stats.collector.StatsCollector`.

    Address spaces
    --------------
    * global input/output virtual channel: ``(node * radix + port) * vcs + vc``
    * global port: ``node * radix + port``
    * injection slot: ``node * vcs + vc``

    The four arrival wheels (router flits, router output credits, NI
    ejections, NI injection credits) are cycle-indexed lanes shared by
    the whole network; every push carries a strictly future arrival
    cycle bounded by the wheel size, so the lane for the current cycle
    is always exact.  Ejections are pushed in ascending node order and
    each node's local output port forwards at most one flit per cycle,
    so the eject drain reports deliveries to the statistics collector in
    the same node order as the object interfaces -- keeping even the
    floating-point accumulation order of the latency statistics
    identical.
    """

    def __init__(self, network, stats) -> None:
        topology = network.topology
        routers = network.routers
        interfaces = network.interfaces
        config = routers[0].config
        routing = routers[0].routing

        self._topology = topology
        self._stats = stats
        self._decide = routing.decide_cached

        num_nodes = topology.num_nodes
        radix = topology.radix
        vcs = config.vcs_per_port
        self._num_nodes = num_nodes
        self._radix = radix
        self._vcs = vcs
        self._channels_per_node = radix * vcs

        vc_classes = routing.vc_classes(vcs)
        self._adaptive_vcs = vc_classes.adaptive_vcs
        self._escape_vcs = vc_classes.escape_vcs
        # Per-port escape pools indexed by the header's dateline class for
        # that port's dimension (Router._escape_pools).  The ejection port
        # and every mesh port offer the full escape set in both classes,
        # so the class read is a harmless constant off datelines.
        if vc_classes.escape_classes is not None:
            _pools = vc_classes.escape_classes
        else:
            _pools = (vc_classes.escape_vcs, vc_classes.escape_vcs)
        self._escape_pools: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
            (vc_classes.escape_vcs, vc_classes.escape_vcs)
            if port == LOCAL_PORT
            else _pools
            for port in range(radix)
        ]
        self._port_dimension: List[int] = [
            0 if port == LOCAL_PORT else port_direction(port)[0]
            for port in range(radix)
        ]

        self._selectors: List[PathSelector] = [router.selector for router in routers]
        self._selector_records = (
            getattr(type(self._selectors[0]), "record_use", None)
            is not PathSelector.record_use
        )
        self._sources = [interface.source for interface in interfaces]

        # Hot timing constants (identical to the Router's).
        pipeline = config.pipeline
        self._selection_offset = pipeline.selection_offset
        self._lookahead = pipeline.lookahead
        self._local_delay = pipeline.switch_delay
        self._link_delay = config.link_delay
        self._credit_delay = config.credit_delay
        self._capacity = config.buffer_depth
        #: Atomic VC allocation on wrapping topologies: required credit
        #: level (the full downstream buffer) before a header may claim
        #: an output VC, 0 (disabled) on meshes (Router._atomic_credits).
        self._atomic_credits = config.buffer_depth if topology.wraps else 0
        # Per-output-port forward delay (Router._port_delays): ejection at
        # the local switch delay, each link port at switch delay plus its
        # dimension's link traversal time.
        switch_delay = pipeline.switch_delay
        self._port_hop_delay: List[int] = [self._local_delay] * radix
        for port in range(1, radix):
            dimension = port_direction(port)[0]
            self._port_hop_delay[port] = switch_delay + config.link_delay_for(
                dimension
            )
        # Dateline bits contributed by each global output port's link
        # (Router._dateline_bits, flattened over the whole network).
        self._dateline_bits: List[int] = [0] * (num_nodes * radix)
        for node in range(num_nodes):
            for port in range(1, radix):
                self._dateline_bits[node * radix + port] = topology.dateline_bits(
                    node, port
                )

        # -- flat state arrays ------------------------------------------------
        num_channels = num_nodes * radix * vcs
        num_ports = num_nodes * radix
        from collections import deque

        #: Input VC buffers / state machine / pipeline-ready cycle.
        self._in_buf = [deque() for _ in range(num_channels)]
        self._in_state = [_IDLE] * num_channels
        self._in_ready = [0] * num_channels
        #: Allocated global output channel and output port (-1 when idle).
        self._in_out_g = [-1] * num_channels
        self._in_out_port = [-1] * num_channels
        #: Output VC credits and owning global input channel (-1 free).
        self._out_credits = [config.buffer_depth] * num_channels
        self._out_owner = [-1] * num_channels
        #: Per-port connectivity and path-selection usage metadata.
        self._out_connected = [False] * num_ports
        self._out_usage = [0] * num_ports
        self._out_last_used = [-1] * num_ports
        #: Two-stage round-robin arbiter pointers (mirror RoundRobinArbiter:
        #: start at slot 0, advance to one past the winner on every grant).
        self._in_prio = [0] * num_ports
        self._out_prio = [0] * num_ports
        #: Per-router sorted membership arrays of local ``port*vcs+vc``
        #: indices in the ROUTING / ACTIVE states.
        self._routing_members: List[List[int]] = [[] for _ in range(num_nodes)]
        self._active_members: List[List[int]] = [[] for _ in range(num_nodes)]
        #: Whether this cycle's switch stage released an output VC (per router).
        self._released = [False] * num_nodes
        #: Per-router statistics (parity with Router.flits_forwarded/.headers_routed).
        self.flits_forwarded = [0] * num_nodes
        self.headers_routed = [0] * num_nodes

        # -- wiring -----------------------------------------------------------
        #: Downstream global input-channel base per output port (-1 = the
        #: local interface or unconnected) and upstream global output-channel
        #: base per input port (-1 = the local interface / unconnected).
        self._dest_base = [-1] * num_ports
        self._up_base = [-1] * num_ports
        for node, port, neighbor, neighbor_port in topology.links():
            self._dest_base[node * radix + port] = (
                neighbor * radix + neighbor_port
            ) * vcs
            self._out_connected[node * radix + port] = True
            self._up_base[neighbor * radix + neighbor_port] = (
                node * radix + port
            ) * vcs
        for node in range(num_nodes):
            self._out_connected[node * radix + LOCAL_PORT] = True

        # Per-channel destination maps hoisted out of the forward path:
        # the flit destination of each *output* channel (the downstream
        # global input channel, or -1 for the local ejection lane) and
        # the credit destination of each *input* channel (the upstream
        # global output channel, or ``-(injection slot) - 1`` when the
        # local interface feeds the port).
        self._go_flit_dest = [-1] * num_channels
        self._g_credit_dest = [0] * num_channels
        for node in range(num_nodes):
            for port in range(radix):
                pidx = node * radix + port
                dest = self._dest_base[pidx]
                up = self._up_base[pidx]
                for vc in range(vcs):
                    g = pidx * vcs + vc
                    self._go_flit_dest[g] = dest + vc if dest >= 0 else -1
                    self._g_credit_dest[g] = (
                        up + vc if up >= 0 else -(node * vcs + vc) - 1
                    )

        # -- injection / ejection interfaces ----------------------------------
        num_slots = num_nodes * vcs
        self._ni_credits = [config.buffer_depth] * num_slots
        self._ni_busy = [False] * num_slots
        self._ni_flits = [deque() for _ in range(num_slots)]
        self._ni_queue = [deque() for _ in range(num_nodes)]
        self._ni_next_slot = [0] * num_nodes
        #: Earliest cycle each interface must be evaluated; every node
        #: starts active (cycle 0), exactly like kernel registration.
        self._ni_wake: List[float] = [0] * num_nodes

        # -- global arrival wheels --------------------------------------------
        self._wheel_size = 1 + max(
            switch_delay + config.max_link_delay,
            self._link_delay,
            self._local_delay,
            self._credit_delay,
        )
        size = self._wheel_size
        #: (global input channel, flit) entries.
        self._flit_lanes: List[list] = [[] for _ in range(size)]
        #: Global output-channel indices (credit returns between routers
        #: and from the ejection side).
        self._credit_lanes: List[list] = [[] for _ in range(size)]
        #: (local output global channel, flit) ejections toward the NIs,
        #: pushed in ascending node order within each cycle.
        self._eject_lanes: List[list] = [[] for _ in range(size)]
        #: Injection-slot indices (credits returned to the NIs).
        self._ni_credit_lanes: List[list] = [[] for _ in range(size)]
        self._flit_pending = 0
        self._credit_pending = 0
        self._eject_pending = 0
        self._ni_credit_pending = 0

        #: Wake callback installed by an activity-aware kernel (unused:
        #: all events are internal, reported via ``next_event_cycle``).
        self._wake: Callable[[int], None] = no_wake

    # -- per-cycle behaviour ---------------------------------------------------

    def deliver(self, cycle: int) -> None:
        """Drain the four global wheels for this cycle.

        Mirrors the object phase order: router flit/credit absorption,
        then the interfaces' ejection and injection-credit drains (the
        eject lane in ascending node order, matching the object
        interfaces' node-ordered delivery reporting).
        """
        slot = cycle % self._wheel_size
        if self._flit_pending:
            lane = self._flit_lanes[slot]
            if lane:
                self._flit_pending -= len(lane)
                in_buf = self._in_buf
                in_state = self._in_state
                in_ready = self._in_ready
                routing_members = self._routing_members
                capacity = self._capacity
                ready = cycle + self._selection_offset
                per_node = self._channels_per_node
                for g, flit in lane:
                    flit.arrival_cycle = cycle
                    buffer = in_buf[g]
                    if len(buffer) >= capacity:
                        raise OverflowError(
                            f"input VC {g} overflow: credit protocol violated"
                        )
                    buffer.append(flit)
                    if flit.is_head and in_state[g] == _IDLE and len(buffer) == 1:
                        in_state[g] = _ROUTING
                        in_ready[g] = ready
                        node = g // per_node
                        insort(routing_members[node], g - node * per_node)
                del lane[:]
        if self._credit_pending:
            lane = self._credit_lanes[slot]
            if lane:
                self._credit_pending -= len(lane)
                out_credits = self._out_credits
                for go in lane:
                    out_credits[go] += 1
                del lane[:]
        if self._eject_pending:
            lane = self._eject_lanes[slot]
            if lane:
                self._eject_pending -= len(lane)
                credit_arrival = cycle + self._credit_delay
                credit_lane = self._credit_lanes[credit_arrival % self._wheel_size]
                stats = self._stats
                for go, flit in lane:
                    credit_lane.append(go)
                    self._credit_pending += 1
                    if flit.is_tail:
                        message = flit.message
                        message.ejection_cycle = cycle
                        stats.record_delivered(message, cycle)
                del lane[:]
        if self._ni_credit_pending:
            lane = self._ni_credit_lanes[slot]
            if lane:
                self._ni_credit_pending -= len(lane)
                ni_credits = self._ni_credits
                ni_wake = self._ni_wake
                vcs = self._vcs
                for s in lane:
                    ni_credits[s] += 1
                    node = s // vcs
                    if ni_wake[node] > cycle:
                        ni_wake[node] = cycle
                del lane[:]

    def evaluate(self, cycle: int) -> None:
        """Run the routers' allocation/forwarding pass, then injection.

        This is the busy path the flat core exists for, so the router
        loop is written as one flat function: every hot array is bound
        to a local exactly once per cycle and the two-stage switch
        allocation plus crossbar forwarding (the flat analogue of
        ``Router._allocate_switch_batched`` and ``Router._forward``) are
        inlined into the per-router body instead of paying a method call
        and attribute-binding prologue per busy router per cycle.
        """
        routing_members = self._routing_members
        active_members = self._active_members
        released = self._released
        in_buf = self._in_buf
        in_ready = self._in_ready
        in_state = self._in_state
        in_out_g = self._in_out_g
        in_out_port = self._in_out_port
        out_credits = self._out_credits
        out_owner = self._out_owner
        out_usage = self._out_usage
        out_last_used = self._out_last_used
        in_prio = self._in_prio
        out_prio = self._out_prio
        go_flit_dest = self._go_flit_dest
        g_credit_dest = self._g_credit_dest
        flit_lanes = self._flit_lanes
        credit_lanes = self._credit_lanes
        eject_lanes = self._eject_lanes
        ni_credit_lanes = self._ni_credit_lanes
        flits_forwarded = self.flits_forwarded
        vcs = self._vcs
        radix = self._radix
        per_node = self._channels_per_node
        wheel = self._wheel_size
        selection_offset = self._selection_offset
        lookahead = self._lookahead
        selector_records = self._selector_records
        selectors = self._selectors
        decide = self._decide
        neighbor = self._topology.neighbor
        credit_slot = (cycle + self._credit_delay) % wheel
        eject_slot = (cycle + self._local_delay) % wheel
        port_hop_delay = self._port_hop_delay
        dateline_bits = self._dateline_bits
        flit_pushed = 0
        credit_pushed = 0
        eject_pushed = 0
        ni_credit_pushed = 0
        next_cycle = cycle + 1
        for node in range(self._num_nodes):
            rmembers = routing_members[node]
            amembers = active_members[node]
            if not rmembers and not amembers:
                continue
            released[node] = False
            base = node * per_node

            # ---- virtual-channel allocation over the ROUTING channels ----
            # (snapshot: success moves the channel to the ACTIVE array).
            if rmembers:
                for local in tuple(rmembers):
                    g = base + local
                    if in_ready[g] > cycle:
                        continue
                    buffer = in_buf[g]
                    if not buffer:
                        continue
                    head = buffer[0]
                    if not head.is_head:
                        raise AssertionError(
                            "non-header flit at the head of a ROUTING "
                            f"channel: {head!r}"
                        )
                    self._try_allocate(node, g, local, head, cycle)
                if not amembers:
                    continue

            pbase = node * radix

            # ---- switch stage 1: nominate one sendable VC per input port.
            # One walk of the sorted ACTIVE array; groups are the per-port
            # contiguous runs, flushed on every group change.  ``nominated``
            # holds (out_port, winner local) pairs in first-nomination
            # order of the output ports.
            nominated = None
            group_base = -1
            priority = 0
            first_local = -1
            first_at_or_after = -1
            for local in amembers:
                gbase = local - local % vcs
                if gbase != group_base:
                    if first_local >= 0:
                        winner = (
                            first_at_or_after
                            if first_at_or_after >= 0
                            else first_local
                        )
                        in_prio[pbase + group_base // vcs] = (
                            winner - group_base + 1
                        ) % vcs
                        if nominated is None:
                            nominated = [(in_out_port[base + winner], winner)]
                        else:
                            nominated.append((in_out_port[base + winner], winner))
                        first_local = -1
                        first_at_or_after = -1
                    group_base = gbase
                    priority = gbase + in_prio[pbase + gbase // vcs]
                g = base + local
                if in_buf[g] and out_credits[in_out_g[g]] > 0:
                    if first_local < 0:
                        first_local = local
                        if local >= priority:
                            first_at_or_after = local
                    elif first_at_or_after < 0 and local >= priority:
                        first_at_or_after = local
            if first_local >= 0:
                winner = (
                    first_at_or_after if first_at_or_after >= 0 else first_local
                )
                in_prio[pbase + group_base // vcs] = (
                    winner - group_base + 1
                ) % vcs
                if nominated is None:
                    nominated = [(in_out_port[base + winner], winner)]
                else:
                    nominated.append((in_out_port[base + winner], winner))
            if nominated is None:
                continue

            # ---- switch stage 2 + crossbar forwarding: grant one
            # nominating input port per requested output (first-nomination
            # order; first nominator at or after the output's round-robin
            # pointer, wrapping to the lowest) and move the winner's flit.
            forwarded = 0
            granted_outputs = None
            for out_port, _nominee in nominated:
                if granted_outputs is None:
                    granted_outputs = [out_port]
                elif out_port in granted_outputs:
                    continue
                else:
                    granted_outputs.append(out_port)
                priority = out_prio[pbase + out_port]
                winner = -1
                fallback = -1
                for other_port, local in nominated:
                    if other_port != out_port:
                        continue
                    if fallback < 0:
                        fallback = local
                    if local // vcs >= priority:
                        winner = local
                        break
                if winner < 0:
                    winner = fallback
                out_prio[pbase + out_port] = (winner // vcs + 1) % radix

                # ---- forward the winner's head-of-buffer flit ----
                g = base + winner
                buffer = in_buf[g]
                flit = buffer.popleft()
                go = in_out_g[g]
                pidx = pbase + out_port
                out_credits[go] -= 1
                out_usage[pidx] += 1
                out_last_used[pidx] = cycle
                if selector_records:
                    selectors[node].record_use(out_port, cycle)
                # Return a credit for the input buffer slot just freed.
                up = g_credit_dest[g]
                if up >= 0:
                    credit_lanes[credit_slot].append(up)
                    credit_pushed += 1
                else:
                    ni_credit_lanes[credit_slot].append(-up - 1)
                    ni_credit_pushed += 1
                if flit.is_head:
                    flit.hops += 1
                    flit.message.hops = flit.hops
                    bits = dateline_bits[pidx]
                    if bits:
                        flit.dateline_mask |= bits
                    if lookahead and out_port != LOCAL_PORT:
                        next_node = neighbor(node, out_port)
                        flit.lookahead_node = next_node
                        flit.lookahead_decision = decide(
                            next_node, flit.destination
                        )
                dest = go_flit_dest[go]
                if dest >= 0:
                    flit_lanes[
                        (cycle + port_hop_delay[out_port]) % wheel
                    ].append((dest, flit))
                    flit_pushed += 1
                else:
                    eject_lanes[eject_slot].append((go, flit))
                    eject_pushed += 1
                if flit.is_tail:
                    out_owner[go] = -1
                    released[node] = True
                    in_state[g] = _IDLE
                    in_out_g[g] = -1
                    in_out_port[g] = -1
                    _membership_remove(amembers, winner)
                    if buffer:
                        head = buffer[0]
                        if not head.is_head:
                            raise AssertionError(
                                "expected a header after a tail on channel "
                                f"{g}, found {head!r}"
                            )
                        in_state[g] = _ROUTING
                        ready = head.arrival_cycle + selection_offset
                        in_ready[g] = ready if ready > cycle else next_cycle
                        insort(rmembers, winner)
                forwarded += 1
            flits_forwarded[node] += forwarded
        self._flit_pending += flit_pushed
        self._credit_pending += credit_pushed
        self._eject_pending += eject_pushed
        self._ni_credit_pending += ni_credit_pushed

        ni_wake = self._ni_wake
        for node in range(self._num_nodes):
            if ni_wake[node] <= cycle:
                self._evaluate_interface(node, cycle)

    def _try_allocate(self, node: int, g: int, local: int, head, cycle: int) -> bool:
        """Attempt to allocate an output virtual channel for a routed header.

        Candidate construction, selector consultation and the escape
        fallback replicate ``Router._try_allocate`` exactly: the selector
        is consulted only when at least two candidate ports have a free
        adaptive-class VC (in which case allocation always succeeds), so
        failed attempts draw no RNG and mutate no state.
        """
        if (
            self._lookahead
            and head.lookahead_node == node
            and head.lookahead_decision is not None
        ):
            decision = head.lookahead_decision
        else:
            decision = self._decide(node, head.destination)

        vcs = self._vcs
        pbase = node * self._radix
        out_connected = self._out_connected
        out_owner = self._out_owner
        out_credits = self._out_credits
        atomic = self._atomic_credits
        adaptive_vcs = self._adaptive_vcs
        candidate_ports: List[int] = []
        candidate_free: List[List[int]] = []
        for port in decision.adaptive_ports:
            if not out_connected[pbase + port]:
                continue
            obase = (pbase + port) * vcs
            if atomic:
                free = [
                    vc
                    for vc in adaptive_vcs
                    if out_owner[obase + vc] < 0 and out_credits[obase + vc] == atomic
                ]
            else:
                free = [vc for vc in adaptive_vcs if out_owner[obase + vc] < 0]
            if free:
                candidate_ports.append(port)
                candidate_free.append(free)

        selected_port = -1
        selected_vc = -1
        if candidate_ports:
            if len(candidate_ports) == 1:
                selected_port = candidate_ports[0]
                selected_vc = candidate_free[0][0]
            else:
                statuses = [
                    self._port_status(pbase, port, len(free))
                    for port, free in zip(candidate_ports, candidate_free)
                ]
                selected_port = self._selectors[node].select(statuses)
                try:
                    index = candidate_ports.index(selected_port)
                except ValueError:
                    raise AssertionError(
                        f"path selector chose port {selected_port} outside the "
                        f"candidate set {sorted(candidate_ports)}"
                    ) from None
                selected_vc = candidate_free[index][0]
        else:
            escape_port = decision.escape_port
            if self._escape_vcs and out_connected[pbase + escape_port]:
                pool = self._escape_pools[escape_port][
                    (head.dateline_mask >> self._port_dimension[escape_port]) & 1
                ]
                obase = (pbase + escape_port) * vcs
                if atomic:
                    free = [
                        vc
                        for vc in pool
                        if out_owner[obase + vc] < 0
                        and out_credits[obase + vc] == atomic
                    ]
                else:
                    free = [vc for vc in pool if out_owner[obase + vc] < 0]
                if free:
                    selected_port = escape_port
                    selected_vc = free[0]

        if selected_port < 0:
            return False

        go = (pbase + selected_port) * vcs + selected_vc
        if out_owner[go] >= 0:
            raise ValueError(f"output VC {go} already owned by {out_owner[go]}")
        out_owner[go] = g
        self._in_out_g[g] = go
        self._in_out_port[g] = selected_port
        self._in_state[g] = _ACTIVE
        _membership_remove(self._routing_members[node], local)
        insort(self._active_members[node], local)
        self.headers_routed[node] += 1
        return True

    def _port_status(self, pbase: int, port: int, num_free: int) -> OutputPortStatus:
        """Selector-facing status of one output port (see Router._port_status)."""
        vcs = self._vcs
        pidx = pbase + port
        obase = pidx * vcs
        out_credits = self._out_credits
        out_owner = self._out_owner
        total_credits = 0
        busy = 0
        for vc in range(vcs):
            total_credits += out_credits[obase + vc]
            if out_owner[obase + vc] >= 0:
                busy += 1
        dimension = -1 if port == LOCAL_PORT else port_direction(port)[0]
        return OutputPortStatus(
            port=port,
            dimension=dimension,
            usage_count=self._out_usage[pidx],
            last_used_cycle=self._out_last_used[pidx],
            total_credits=total_credits,
            busy_vcs=busy,
            free_vcs=num_free,
        )

    # -- injection (network interfaces) ------------------------------------------

    def _evaluate_interface(self, node: int, cycle: int) -> None:
        """One interface's evaluate: generate, start injections, send one
        flit; then recompute its wake cycle (the quiescence the kernel
        would perform per component)."""
        source = self._sources[node]
        queue = self._ni_queue[node]
        stats = self._stats
        if source is not None:
            for message in source.messages_due(cycle):
                queue.append(message)
                stats.record_created(message)

        vcs = self._vcs
        sbase = node * vcs
        ni_busy = self._ni_busy
        ni_flits = self._ni_flits
        if queue:
            for vc in range(vcs):
                if not queue:
                    break
                s = sbase + vc
                if ni_busy[s] or ni_flits[s]:
                    continue
                message = queue.popleft()
                ni_busy[s] = True
                flits = ni_flits[s]
                flits.extend(message.make_flits())
                if self._lookahead:
                    header = flits[0]
                    header.lookahead_node = node
                    header.lookahead_decision = self._decide(
                        node, message.destination
                    )

        ni_credits = self._ni_credits
        next_slot = self._ni_next_slot[node]
        for offset in range(vcs):
            vc = (next_slot + offset) % vcs
            s = sbase + vc
            flits = ni_flits[s]
            if not flits or ni_credits[s] <= 0:
                continue
            flit = flits.popleft()
            ni_credits[s] -= 1
            if flit.is_head:
                flit.message.injection_cycle = cycle
                stats.record_injected(flit.message, cycle)
            self._flit_lanes[
                (cycle + self._link_delay) % self._wheel_size
            ].append((node * self._channels_per_node + vc, flit))
            self._flit_pending += 1
            if flit.is_tail:
                ni_busy[s] = False
            self._ni_next_slot[node] = (vc + 1) % vcs
            break

        self._ni_wake[node] = self._interface_next_event(node, cycle + 1)

    def _interface_next_event(self, node: int, cycle: int) -> float:
        """Earliest cycle this interface must be evaluated again.

        Mirrors ``NetworkInterface.next_event_cycle`` minus the mailbox
        terms: ejection arrivals need no evaluation (the global eject
        drain performs the whole delivery) and injection-credit arrivals
        re-arm the wake at drain time.
        """
        vcs = self._vcs
        sbase = node * vcs
        ni_flits = self._ni_flits
        ni_credits = self._ni_credits
        ni_busy = self._ni_busy
        free_slot = False
        for vc in range(vcs):
            s = sbase + vc
            if ni_flits[s]:
                if ni_credits[s] > 0:
                    return cycle
            elif not ni_busy[s]:
                free_slot = True
        if free_slot and self._ni_queue[node]:
            return cycle
        source = self._sources[node]
        if source is not None:
            next_due = getattr(source, "next_due_cycle", None)
            if next_due is None:
                # Sources without a due-cycle forecast are polled every cycle.
                return cycle
            due = next_due()
            if due is not None:
                return due if due > cycle else cycle
        return _NEVER

    # -- quiescence (activity-aware kernel) ----------------------------------------

    def set_wake(self, callback: Callable[[int], None]) -> None:
        """Install the kernel wake callback (kept for protocol parity;
        every event is internal to the core, so it is never invoked)."""
        self._wake = callback

    def wake_interface(self, node: int, cycle: int) -> None:
        """Re-arm one interface's wake cycle for a source event at ``cycle``.

        The flat-core counterpart of ``NetworkInterface.wake_source``:
        closed-loop sources (:mod:`repro.workload`) queue new work at a
        node from outside its own evaluation, so they lower the node's
        scheduler wake here.  Safe against the end-of-evaluate recompute
        in ``_evaluate_interface`` because the source's ``next_due_cycle``
        forecast covers the same pending entry; released work is always
        strictly future, matching the kernel's wake contract.
        """
        if cycle < self._ni_wake[node]:
            self._ni_wake[node] = cycle

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle (``>= cycle``) at which anything has work.

        The minimum over every object component's ``next_event_cycle``:
        per-router sendable/ready conditions, the interfaces' wake
        cycles, and the earliest pending arrival of the four wheels.
        """
        upcoming: Optional[int] = None
        in_buf = self._in_buf
        in_ready = self._in_ready
        in_out_g = self._in_out_g
        out_credits = self._out_credits
        released = self._released
        per_node = self._channels_per_node
        routing_members = self._routing_members
        for node, active in enumerate(self._active_members):
            base = node * per_node
            for local in active:
                g = base + local
                if in_buf[g] and out_credits[in_out_g[g]] > 0:
                    return cycle
            members = routing_members[node]
            if members:
                rel = released[node]
                for local in members:
                    ready = in_ready[base + local]
                    if ready >= cycle:
                        if upcoming is None or ready < upcoming:
                            upcoming = ready
                    elif rel:
                        return cycle
        wake = min(self._ni_wake)
        if wake <= cycle:
            return cycle
        if wake is not _NEVER and (upcoming is None or wake < upcoming):
            upcoming = int(wake)
        for pending, lanes in (
            (self._flit_pending, self._flit_lanes),
            (self._credit_pending, self._credit_lanes),
            (self._eject_pending, self._eject_lanes),
            (self._ni_credit_pending, self._ni_credit_lanes),
        ):
            if not pending:
                continue
            size = self._wheel_size
            for offset in range(size):
                if lanes[(cycle + offset) % size]:
                    arrival = cycle + offset
                    if arrival <= cycle:
                        return cycle
                    if upcoming is None or arrival < upcoming:
                        upcoming = arrival
                    break
        return upcoming

    # -- introspection -----------------------------------------------------------

    def is_idle(self) -> bool:
        """True when no flit is buffered, queued or in flight anywhere."""
        if (
            self._flit_pending
            or self._eject_pending
            or any(self._ni_queue)
            or any(self._ni_flits)
        ):
            return False
        if any(self._in_buf):
            return False
        return all(state == _IDLE for state in self._in_state)

    def input_state(self, node: int, port: int, vc: int) -> Tuple[int, int]:
        """(state, buffered flits) of one input VC (tests, introspection)."""
        g = (node * self._radix + port) * self._vcs + vc
        return self._in_state[g], len(self._in_buf[g])

    def output_credits(self, node: int, port: int, vc: int) -> int:
        """Current credit count of one output VC (tests, introspection)."""
        return self._out_credits[(node * self._radix + port) * self._vcs + vc]

    def output_owner(self, node: int, port: int, vc: int) -> int:
        """Owning global input channel of one output VC (-1 when free)."""
        return self._out_owner[(node * self._radix + port) * self._vcs + vc]

    def in_flight_credits(self, node: int) -> List[Tuple[int, int]]:
        """``(port, vc)`` of every credit in flight toward ``node``'s
        output VCs (conservation tests and debugging)."""
        vcs = self._vcs
        lo = node * self._channels_per_node
        hi = lo + self._channels_per_node
        pairs = []
        for lane in self._credit_lanes:
            for go in lane:
                if lo <= go < hi:
                    local = go - lo
                    pairs.append((local // vcs, local % vcs))
        return pairs

    def __repr__(self) -> str:
        return (
            f"FlatNetworkCore(nodes={self._num_nodes}, radix={self._radix}, "
            f"vcs={self._vcs})"
        )
