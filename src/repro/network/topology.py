"""n-dimensional mesh and torus topologies.

Port-numbering convention (used by every other module in the library):

* port ``0`` is the **local** port connecting the router to its node's
  network interface (the paper's "exit port 0");
* for dimension ``d`` (dimension 0 is X, dimension 1 is Y, ...), the port
  toward the **positive** direction is ``1 + 2*d`` and the port toward the
  **negative** direction is ``2 + 2*d``.

For a 2-D mesh this yields the paper's five-port router: 0 = local,
1 = +X (East), 2 = -X (West), 3 = +Y (North), 4 = -Y (South).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "LOCAL_PORT",
    "MeshTopology",
    "Topology",
    "Torus3D",
    "TorusTopology",
    "port_direction",
    "port_for",
]

#: The router port connected to the local network interface.
LOCAL_PORT = 0


def port_for(dimension: int, positive: bool) -> int:
    """Return the output-port index for travelling along ``dimension``.

    ``positive`` selects the +direction port (East/North/Up...), otherwise
    the -direction port is returned.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be non-negative, got {dimension}")
    return 1 + 2 * dimension + (0 if positive else 1)


def port_direction(port: int) -> Tuple[int, int]:
    """Inverse of :func:`port_for`: return ``(dimension, sign)`` for a port.

    ``sign`` is +1 for the positive-direction port and -1 for the negative
    one.  Raises ``ValueError`` for the local port, which has no direction.
    """
    if port == LOCAL_PORT:
        raise ValueError("the local port has no direction")
    if port < 0:
        raise ValueError(f"invalid port {port}")
    dimension, offset = divmod(port - 1, 2)
    return dimension, (1 if offset == 0 else -1)


#: (concrete topology class, dims) -> average distance; see
#: :meth:`Topology.average_distance`.
_AVERAGE_DISTANCE_CACHE: dict = {}


class Topology:
    """Base class for regular point-to-point topologies.

    Nodes are numbered 0..N-1.  Coordinates are tuples with the dimension-0
    coordinate varying fastest (node 1 is the +X neighbor of node 0).
    """

    #: Subclasses set this to True when links wrap around (tori).
    wraps = False

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims:
            raise ValueError("topology needs at least one dimension")
        if any(k < 2 for k in dims):
            raise ValueError(f"every dimension must have at least 2 nodes, got {dims}")
        self._dims = dims
        self._num_nodes = 1
        for k in dims:
            self._num_nodes *= k
        # Pre-compute the coordinate <-> id maps once; they are consulted in
        # the routers' inner loops.
        self._coords: List[Tuple[int, ...]] = [
            self._id_to_coords(node) for node in range(self._num_nodes)
        ]
        self._neighbor_table: List[List[Optional[int]]] = [
            [None] * self.radix for _ in range(self._num_nodes)
        ]
        for node in range(self._num_nodes):
            for port in range(1, self.radix):
                self._neighbor_table[node][port] = self._compute_neighbor(node, port)

    # -- geometry ----------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """Extent of each dimension, e.g. ``(16, 16)`` for the paper's mesh."""
        return self._dims

    @property
    def n_dims(self) -> int:
        """Number of dimensions."""
        return len(self._dims)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return self._num_nodes

    @property
    def radix(self) -> int:
        """Number of router ports: one local port plus two per dimension."""
        return 1 + 2 * self.n_dims

    def coordinates(self, node: int) -> Tuple[int, ...]:
        """Cartesian coordinates of ``node``."""
        return self._coords[node]

    def node_id(self, coords: Sequence[int]) -> int:
        """Node identifier for a coordinate tuple."""
        if len(coords) != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} coordinates, got {len(coords)}"
            )
        node = 0
        stride = 1
        for coordinate, extent in zip(coords, self._dims):
            if not 0 <= coordinate < extent:
                raise ValueError(f"coordinate {coords} outside mesh {self._dims}")
            node += coordinate * stride
            stride *= extent
        return node

    def _id_to_coords(self, node: int) -> Tuple[int, ...]:
        coords = []
        remainder = node
        for extent in self._dims:
            remainder, coordinate = divmod(remainder, extent)
            coords.append(coordinate)
        # note: divmod order -- coordinate is remainder % extent
        return tuple(coords)

    # -- connectivity ------------------------------------------------------

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Node reached by leaving ``node`` through ``port`` (None at edges)."""
        if port == LOCAL_PORT:
            return None
        return self._neighbor_table[node][port]

    def _compute_neighbor(self, node: int, port: int) -> Optional[int]:
        raise NotImplementedError

    def reverse_port(self, port: int) -> int:
        """The input port at the neighbor that a link through ``port`` feeds."""
        dimension, sign = port_direction(port)
        return port_for(dimension, positive=(sign < 0))

    def links(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate over unidirectional links.

        Yields ``(node, out_port, neighbor, neighbor_in_port)`` for every
        connected non-local port of every node.
        """
        for node in range(self._num_nodes):
            for port in range(1, self.radix):
                neighbor = self.neighbor(node, port)
                if neighbor is not None:
                    yield node, port, neighbor, self.reverse_port(port)

    def dateline_bits(self, node: int, port: int) -> int:
        """Dateline-crossing mask contribution of forwarding through ``port``.

        Non-zero only on wrapping topologies, where the dateline of
        dimension ``d`` sits on the wraparound links (coordinate ``k-1 ->
        0`` in the positive direction, ``0 -> k-1`` in the negative one);
        crossing either sets bit ``1 << d`` in a message's accumulated
        dateline mask.  The dateline virtual-channel discipline (see
        :mod:`repro.routing.duato`) reads the mask to pick the escape
        class; meshes have no datelines, so the base implementation
        returns 0 for every link.
        """
        return 0

    # -- routing geometry ---------------------------------------------------

    def relative_signs(self, current: int, destination: int) -> Tuple[int, ...]:
        """Sign of the minimal travel direction per dimension.

        This is the (s_x, s_y, ...) tuple the economical-storage table is
        indexed by (Section 5.2.1 of the paper): +1, -1 or 0 per dimension.
        """
        raise NotImplementedError

    def minimal_ports(self, current: int, destination: int) -> Tuple[int, ...]:
        """Productive (minimal-path) output ports from ``current`` toward
        ``destination``.

        Returns ``(LOCAL_PORT,)`` when ``current`` is the destination.
        """
        if current == destination:
            return (LOCAL_PORT,)
        ports = []
        for dimension, sign in enumerate(self.relative_signs(current, destination)):
            if sign > 0:
                ports.append(port_for(dimension, positive=True))
            elif sign < 0:
                ports.append(port_for(dimension, positive=False))
        return tuple(ports)

    def dimension_order_port(self, current: int, destination: int) -> int:
        """Deterministic dimension-order (XY) routing decision.

        Corrects the lowest dimension whose offset is non-zero first; this
        is the escape-channel route used by Duato's algorithm and the
        STATIC-XY preference order.
        """
        if current == destination:
            return LOCAL_PORT
        for dimension, sign in enumerate(self.relative_signs(current, destination)):
            if sign > 0:
                return port_for(dimension, positive=True)
            if sign < 0:
                return port_for(dimension, positive=False)
        raise AssertionError("no productive dimension found for distinct nodes")

    def distance(self, source: int, destination: int) -> int:
        """Minimal hop count between two nodes."""
        raise NotImplementedError

    def average_distance(self) -> float:
        """Average minimal hop count over all ordered source/dest pairs.

        The O(nodes^2) pair walk is memoized per instance *and* in a
        class-keyed table shared across instances: topologies are
        immutable after construction, the result is a pure function of
        (concrete class, dims), and the simulator consults this for the
        cycle budget and zero-load latency of every run -- at 32x32 and
        above the pair walk would otherwise rival small simulations.
        """
        cached = getattr(self, "_average_distance", None)
        if cached is not None:
            return cached
        key = (type(self), self._dims)
        average = _AVERAGE_DISTANCE_CACHE.get(key)
        if average is None:
            total = 0
            count = 0
            for source in range(self._num_nodes):
                for destination in range(self._num_nodes):
                    if source == destination:
                        continue
                    total += self.distance(source, destination)
                    count += 1
            average = total / count if count else 0.0
            _AVERAGE_DISTANCE_CACHE[key] = average
        self._average_distance = average
        return average

    # -- capacity ----------------------------------------------------------

    def bisection_channels(self) -> int:
        """Unidirectional channels crossing the worst-case mid bisection."""
        raise NotImplementedError

    def saturation_flit_rate(self) -> float:
        """Per-node flit injection rate that saturates the bisection under
        node-uniform traffic.

        Normalized load 1.0 in the paper corresponds to this rate (Section
        2.2): the injection rate at which uniform traffic fully loads the
        network bisection.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        kind = type(self).__name__
        dims = "x".join(str(k) for k in self._dims)
        return f"{kind}({dims}, nodes={self._num_nodes})"


class MeshTopology(Topology):
    """k-ary n-dimensional mesh (no wraparound links)."""

    wraps = False

    def _compute_neighbor(self, node: int, port: int) -> Optional[int]:
        dimension, sign = port_direction(port)
        coords = list(self.coordinates(node))
        coords[dimension] += sign
        if not 0 <= coords[dimension] < self._dims[dimension]:
            return None
        return self.node_id(coords)

    def relative_signs(self, current: int, destination: int) -> Tuple[int, ...]:
        current_coords = self.coordinates(current)
        destination_coords = self.coordinates(destination)
        signs = []
        for here, there in zip(current_coords, destination_coords):
            offset = there - here
            signs.append(0 if offset == 0 else (1 if offset > 0 else -1))
        return tuple(signs)

    def distance(self, source: int, destination: int) -> int:
        source_coords = self.coordinates(source)
        destination_coords = self.coordinates(destination)
        return sum(abs(a - b) for a, b in zip(source_coords, destination_coords))

    def bisection_channels(self) -> int:
        # Cutting the largest dimension in half severs one bidirectional
        # link per node in the cut plane; the cut plane has N / k_max nodes.
        k_max = max(self._dims)
        return 2 * (self._num_nodes // k_max)

    def saturation_flit_rate(self) -> float:
        # Under uniform traffic a quarter of all injected flits cross the
        # mid bisection in each direction, so the per-node rate that loads
        # the (N / k_max) same-direction crossing channels to capacity is
        # 4 / k_max flits per cycle per node.
        return 4.0 / max(self._dims)


class TorusTopology(Topology):
    """k-ary n-dimensional torus (wraparound links in every dimension)."""

    wraps = True

    def _compute_neighbor(self, node: int, port: int) -> Optional[int]:
        dimension, sign = port_direction(port)
        coords = list(self.coordinates(node))
        coords[dimension] = (coords[dimension] + sign) % self._dims[dimension]
        return self.node_id(coords)

    def relative_signs(self, current: int, destination: int) -> Tuple[int, ...]:
        current_coords = self.coordinates(current)
        destination_coords = self.coordinates(destination)
        signs = []
        for here, there, extent in zip(current_coords, destination_coords, self._dims):
            offset = (there - here) % extent
            if offset == 0:
                signs.append(0)
            elif offset <= extent - offset:
                # Going in the positive direction is minimal (ties break
                # toward the positive direction for determinism).
                signs.append(1)
            else:
                signs.append(-1)
        return tuple(signs)

    def distance(self, source: int, destination: int) -> int:
        source_coords = self.coordinates(source)
        destination_coords = self.coordinates(destination)
        total = 0
        for here, there, extent in zip(source_coords, destination_coords, self._dims):
            offset = abs(there - here)
            total += min(offset, extent - offset)
        return total

    def bisection_channels(self) -> int:
        # The wrap links double the number of channels crossing the cut.
        k_max = max(self._dims)
        return 4 * (self._num_nodes // k_max)

    def saturation_flit_rate(self) -> float:
        return 8.0 / max(self._dims)

    def dateline_bits(self, node: int, port: int) -> int:
        if port == LOCAL_PORT:
            return 0
        dimension, sign = port_direction(port)
        coordinate = self.coordinates(node)[dimension]
        extent = self._dims[dimension]
        if sign > 0:
            crosses = coordinate == extent - 1
        else:
            crosses = coordinate == 0
        return (1 << dimension) if crosses else 0


class Torus3D(TorusTopology):
    """3-ary torus with (optionally) heterogeneous per-dimension links.

    Geometry and routing are exactly the n-dimensional torus restricted
    to three dimensions; what the class adds is the stacked-die shape
    (gem5-Garnet's ``Torus3D``), where the Z dimension is typically built
    from slower through-silicon vias.  The per-dimension latencies
    themselves live in :attr:`SimulationConfig.link_delays` and are
    plumbed through :class:`~repro.router.config.RouterConfig` into both
    network cores; the topology only pins the 3-D shape.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        if len(dims) != 3:
            raise ValueError(
                f"Torus3D needs exactly 3 dimensions, got mesh_dims={tuple(dims)}"
            )
        super().__init__(dims)


# -- registry factories --------------------------------------------------------------

from repro.registry import register as _register  # noqa: E402  (leaf import)


@_register("topology", "mesh")
def _make_mesh(config) -> MeshTopology:
    """n-dimensional mesh (no wraparound links)."""
    return MeshTopology(config.mesh_dims)


_make_mesh.wraps = False


@_register("topology", "torus")
def _make_torus(config) -> TorusTopology:
    """n-dimensional torus (wraparound links in every dimension)."""
    return TorusTopology(config.mesh_dims)


_make_torus.wraps = True


@_register("topology", "torus3d")
def _make_torus3d(config) -> Torus3D:
    """3-D torus (stacked-die shape; pair with ``link_delays`` for slow
    TSV Z-links)."""
    return Torus3D(config.mesh_dims)


_make_torus3d.wraps = True


def _validate_torus3d_config(config) -> None:
    if len(config.mesh_dims) != 3:
        raise ValueError(
            "SimulationConfig.topology='torus3d' needs exactly 3 mesh "
            f"dimensions, got mesh_dims={config.mesh_dims}"
        )


_make_torus3d.validate_config = _validate_torus3d_config
