"""Cycle-driven simulation engine primitives.

The LAPSES study is carried out with a cycle-level network simulator
(called PROUD in the paper).  This subpackage provides the small, generic
pieces of such a simulator that are independent of routers and networks:

* :class:`~repro.engine.clock.Clock` -- the global cycle counter shared by
  every component of a simulation.
* :class:`~repro.engine.rng.SimulationRNG` -- a seeded random-number
  facility that hands out independent, reproducible streams to the
  different stochastic components (traffic pattern, injection process,
  arbitration tie-breaking).
* :class:`~repro.engine.kernel.SimulationKernel` -- the per-cycle driver
  that advances a collection of :class:`~repro.engine.kernel.Clocked`
  components in a fixed phase order and supports stop conditions.  It
  offers two schedules over the same two-phase semantics: the exhaustive
  reference schedule and a bit-identical activity-aware one that skips
  quiescent components and fast-forwards over idle spans.
"""

from repro.engine.clock import Clock
from repro.engine.kernel import KERNEL_MODES, Clocked, SimulationKernel, StopCondition
from repro.engine.rng import SimulationRNG

__all__ = [
    "Clock",
    "Clocked",
    "KERNEL_MODES",
    "SimulationKernel",
    "SimulationRNG",
    "StopCondition",
]
