"""Reproducible random-number streams for simulation components.

A network simulation has several independent sources of randomness: the
traffic pattern (destination selection), the injection process
(inter-arrival times), arbitration tie-breaking inside routers and the
random path-selection heuristic.  Seeding them from a single master seed,
through named sub-streams, makes every experiment reproducible while
keeping the streams statistically independent of one another.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

__all__ = ["SimulationRNG"]


class SimulationRNG:
    """A factory of named, independently seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`SimulationRNG` objects created with the
        same seed hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if needed.

        The stream's seed is derived deterministically from the master seed
        and the name, so the order in which streams are requested does not
        affect their contents.
        """
        if name not in self._streams:
            # zlib.crc32 is stable across processes, unlike the built-in
            # ``hash`` of strings which is randomized per interpreter run.
            derived = zlib.crc32(f"{self._seed}:{name}".encode("utf-8"))
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, salt: int) -> "SimulationRNG":
        """Create a child factory whose seed is derived from this one.

        Useful for running several replications of the same experiment with
        statistically independent randomness (``salt`` is the replication
        index).
        """
        return SimulationRNG(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def __repr__(self) -> str:
        return f"SimulationRNG(seed={self._seed}, streams={sorted(self._streams)})"
