"""The per-cycle simulation driver.

The PROUD simulator is cycle driven: every cycle, each component performs
its work for that cycle in a fixed phase order.  :class:`SimulationKernel`
owns the global clock, the ordered list of clocked components and the stop
conditions, and exposes :meth:`SimulationKernel.run` to advance the whole
system.

The phase order matters.  Within a cycle the kernel first lets every
component *deliver* state produced in earlier cycles (flits arriving over
links, credits returning), then lets every component *evaluate* its
decisions for the current cycle (routing, virtual-channel allocation,
switch allocation), so no component can observe another component's
same-cycle decisions.  This mirrors the two-phase (read/compute) update of
hardware simulators and keeps the simulation independent of component
iteration order.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Protocol, runtime_checkable

from repro.engine.clock import Clock

__all__ = ["Clocked", "SimulationKernel", "StopCondition"]


#: A stop condition receives the current cycle and returns True to halt.
StopCondition = Callable[[int], bool]


@runtime_checkable
class Clocked(Protocol):
    """Protocol implemented by every component driven by the kernel.

    ``deliver`` consumes state that was produced in previous cycles and is
    scheduled to arrive now (e.g. flits finishing their link traversal).
    ``evaluate`` performs this cycle's decision making (e.g. arbitration)
    using only state visible after all components delivered.
    """

    def deliver(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...

    def evaluate(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class SimulationKernel:
    """Drives a set of :class:`Clocked` components cycle by cycle."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock if clock is not None else Clock()
        self._components: List[Clocked] = []
        self._stop_conditions: List[StopCondition] = []

    @property
    def clock(self) -> Clock:
        """The global clock owned by this kernel."""
        return self._clock

    @property
    def components(self) -> List[Clocked]:
        """The registered components, in registration (phase) order."""
        return list(self._components)

    def register(self, component: Clocked) -> None:
        """Add a component to the per-cycle schedule."""
        self._components.append(component)

    def register_all(self, components: Iterable[Clocked]) -> None:
        """Add several components, preserving their iteration order."""
        for component in components:
            self.register(component)

    def add_stop_condition(self, condition: StopCondition) -> None:
        """Halt the run as soon as ``condition(cycle)`` returns True."""
        self._stop_conditions.append(condition)

    def step(self) -> int:
        """Execute exactly one cycle and return the cycle that was executed."""
        cycle = self._clock.now
        for component in self._components:
            component.deliver(cycle)
        for component in self._components:
            component.evaluate(cycle)
        self._clock.tick()
        return cycle

    def run(self, max_cycles: int) -> int:
        """Run until a stop condition fires or ``max_cycles`` cycles elapse.

        Returns the number of cycles actually executed in this call.
        """
        if max_cycles < 0:
            raise ValueError(f"max_cycles must be non-negative, got {max_cycles}")
        executed = 0
        while executed < max_cycles:
            if self._should_stop(self._clock.now):
                break
            self.step()
            executed += 1
        return executed

    def _should_stop(self, cycle: int) -> bool:
        return any(condition(cycle) for condition in self._stop_conditions)

    def __repr__(self) -> str:
        return (
            f"SimulationKernel(cycle={self._clock.now}, "
            f"components={len(self._components)})"
        )
