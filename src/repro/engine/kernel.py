"""The per-cycle simulation driver.

The PROUD simulator is cycle driven: every cycle, each component performs
its work for that cycle in a fixed phase order.  :class:`SimulationKernel`
owns the global clock, the ordered list of clocked components and the stop
conditions, and exposes :meth:`SimulationKernel.run` to advance the whole
system.

The phase order matters.  Within a cycle the kernel first lets every
component *deliver* state produced in earlier cycles (flits arriving over
links, credits returning), then lets every component *evaluate* its
decisions for the current cycle (routing, virtual-channel allocation,
switch allocation), so no component can observe another component's
same-cycle decisions.  This mirrors the two-phase (read/compute) update of
hardware simulators and keeps the simulation independent of component
iteration order.

Scheduling modes
----------------
The kernel supports two schedules over the same two-phase semantics:

``"exhaustive"``
    Every registered component runs both phases every cycle.  This is the
    reference schedule: simple, obviously correct, and what the original
    simulator did.

``"activity"``
    Components that declare themselves quiescent (via the optional
    :meth:`Clocked.next_event_cycle` hook) are skipped until either their
    self-reported next event cycle arrives or another component wakes them
    (via the callback installed with ``set_wake`` -- called by the mailbox
    ``receive_flit``/``receive_credit`` methods when a flit or credit is
    scheduled to arrive).  When *no* component is runnable, the kernel
    fast-forwards the clock straight to the next scheduled event instead
    of burning empty cycles.

    The activity schedule is bit-identical to the exhaustive one as long
    as two contracts hold:

    * a component's ``next_event_cycle`` never reports a cycle later than
      its earliest possible state change, and every externally scheduled
      event triggers a wake -- both guaranteed by the router, interface
      and traffic-source implementations in this package; and
    * stop conditions are monotone functions of simulation *progress*
      (for example "all measured messages delivered"), not of the raw
      cycle number, because in activity mode they are only evaluated at
      the cycles the kernel actually visits.

    Components that do not implement the quiescence hooks (plain
    ``deliver``/``evaluate`` objects) are simply run every cycle, so the
    activity schedule degrades gracefully to the exhaustive one.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Callable, Iterable, List, Optional, Protocol, runtime_checkable

from repro.engine.clock import Clock

__all__ = ["Clocked", "KERNEL_MODES", "SimulationKernel", "StopCondition", "no_wake"]


#: A stop condition receives the current cycle and returns True to halt.
StopCondition = Callable[[int], bool]

#: Scheduling modes accepted by :class:`SimulationKernel`.
KERNEL_MODES = ("exhaustive", "activity")


def no_wake(cycle: int) -> None:
    """Default wake callback for quiescence-aware components.

    Exhaustive kernels never sleep components, so nothing listens; an
    activity kernel replaces this via ``set_wake`` at registration.
    """


@runtime_checkable
class Clocked(Protocol):
    """Protocol implemented by every component driven by the kernel.

    ``deliver`` consumes state that was produced in previous cycles and is
    scheduled to arrive now (e.g. flits finishing their link traversal).
    ``evaluate`` performs this cycle's decision making (e.g. arbitration)
    using only state visible after all components delivered.

    Components may additionally implement the *quiescence* hooks used by
    the activity-aware schedule:

    ``next_event_cycle(cycle)``
        The earliest cycle (``>= cycle``) at which the component could
        have work to do, or ``None`` when it is idle until an external
        event wakes it.  Returning ``cycle`` itself keeps the component
        in the active set.

    ``set_wake(callback)``
        Store ``callback`` and invoke it as ``callback(event_cycle)``
        whenever an event (flit or credit arrival) is scheduled for this
        component, so the kernel can re-activate it in time.
    """

    def deliver(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...

    def evaluate(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class SimulationKernel:
    """Drives a set of :class:`Clocked` components cycle by cycle.

    Parameters
    ----------
    clock:
        Global clock to use (a fresh one is created when omitted).
    mode:
        ``"exhaustive"`` (default) runs every component every cycle;
        ``"activity"`` skips quiescent components and fast-forwards over
        fully idle spans.  Both modes execute the same two-phase
        semantics; see the module docstring for the equivalence contract.
    """

    def __init__(self, clock: Optional[Clock] = None, mode: str = "exhaustive") -> None:
        if mode not in KERNEL_MODES:
            raise ValueError(f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}")
        self._clock = clock if clock is not None else Clock()
        self._mode = mode
        self._components: List[Clocked] = []
        self._stop_conditions: List[StopCondition] = []
        # Activity-schedule bookkeeping (indexed like self._components).
        self._active: List[bool] = []
        self._aware: List[bool] = []
        self._active_count = 0
        #: Earliest scheduled wake per sleeping component (None = none).
        self._pending_wake: List[Optional[int]] = []
        #: Min-heap of (cycle, index) wake events, with lazy deletion:
        #: an entry is stale unless it matches ``_pending_wake[index]``.
        self._wake_heap: List[tuple] = []

    @property
    def clock(self) -> Clock:
        """The global clock owned by this kernel."""
        return self._clock

    @property
    def mode(self) -> str:
        """The scheduling mode ("exhaustive" or "activity")."""
        return self._mode

    @property
    def components(self) -> List[Clocked]:
        """The registered components, in registration (phase) order."""
        return list(self._components)

    def register(self, component: Clocked) -> None:
        """Add a component to the per-cycle schedule."""
        index = len(self._components)
        self._components.append(component)
        self._active.append(True)
        self._active_count += 1
        self._pending_wake.append(None)
        aware = callable(getattr(component, "next_event_cycle", None))
        self._aware.append(aware)
        if self._mode == "activity" and aware:
            set_wake = getattr(component, "set_wake", None)
            if callable(set_wake):
                set_wake(partial(self._wake, index))
        # Expose the live active-flag list so the component's send paths
        # can skip the wake callback with one boolean read when the
        # receiver is already active -- the common case at saturation.
        # Installed in *both* modes: the exhaustive schedule keeps every
        # flag True forever, so senders skip the (no-op) callback too.
        set_active_hint = getattr(component, "set_active_hint", None)
        if callable(set_active_hint):
            set_active_hint(self._active, index)

    def register_all(self, components: Iterable[Clocked]) -> None:
        """Add several components, preserving their iteration order."""
        for component in components:
            self.register(component)

    def add_stop_condition(self, condition: StopCondition) -> None:
        """Halt the run as soon as ``condition(cycle)`` returns True."""
        self._stop_conditions.append(condition)

    # -- activity bookkeeping ----------------------------------------------------

    def _wake(self, index: int, cycle: int) -> None:
        """Schedule component ``index`` to re-activate at ``cycle``."""
        if self._active[index]:
            return
        pending = self._pending_wake[index]
        if pending is not None and pending <= cycle:
            return
        self._pending_wake[index] = cycle
        heapq.heappush(self._wake_heap, (cycle, index))

    def _activate_due(self, cycle: int) -> None:
        """Move every component whose wake time has arrived to the active set."""
        heap = self._wake_heap
        while heap and heap[0][0] <= cycle:
            when, index = heapq.heappop(heap)
            if self._pending_wake[index] == when and not self._active[index]:
                self._active[index] = True
                self._active_count += 1
                self._pending_wake[index] = None

    def _next_scheduled(self) -> Optional[int]:
        """The earliest pending wake cycle, discarding stale heap entries."""
        heap = self._wake_heap
        while heap:
            when, index = heap[0]
            if self._pending_wake[index] == when and not self._active[index]:
                return when
            heapq.heappop(heap)
        return None

    def _quiesce(self, indices: List[int], next_cycle: int) -> None:
        """Let the just-run activity-aware components report their next
        event and put the quiescent ones to sleep."""
        for index in indices:
            if not self._aware[index]:
                continue
            upcoming = self._components[index].next_event_cycle(next_cycle)
            if upcoming is not None and upcoming <= next_cycle:
                continue
            self._active[index] = False
            self._active_count -= 1
            if upcoming is not None:
                self._pending_wake[index] = upcoming
                heapq.heappush(self._wake_heap, (upcoming, index))

    # -- execution ---------------------------------------------------------------

    def _run_cycle(self, cycle: int) -> None:
        """Run both phases of one cycle over the runnable component set."""
        if self._mode == "activity":
            self._activate_due(cycle)
            components = self._components
            active = self._active
            indices = [index for index in range(len(components)) if active[index]]
            runnable = [components[index] for index in indices]
            for component in runnable:
                component.deliver(cycle)
            for component in runnable:
                component.evaluate(cycle)
            self._quiesce(indices, cycle + 1)
        else:
            for component in self._components:
                component.deliver(cycle)
            for component in self._components:
                component.evaluate(cycle)

    def step(self) -> int:
        """Execute exactly one cycle and return the cycle that was executed."""
        cycle = self._clock.now
        self._run_cycle(cycle)
        self._clock.tick()
        return cycle

    def run(self, max_cycles: int) -> int:
        """Run until a stop condition fires or ``max_cycles`` cycles elapse.

        Returns the number of cycles that elapsed in this call.  In
        activity mode, cycles skipped by fast-forwarding over a fully idle
        system count as elapsed, so the clock advances exactly as it would
        under the exhaustive schedule.
        """
        if max_cycles < 0:
            raise ValueError(f"max_cycles must be non-negative, got {max_cycles}")
        if self._mode == "activity":
            return self._run_activity(max_cycles)
        executed = 0
        while executed < max_cycles:
            if self._should_stop(self._clock.now):
                break
            self.step()
            executed += 1
        return executed

    def _run_activity(self, max_cycles: int) -> int:
        executed = 0
        while executed < max_cycles:
            now = self._clock.now
            if self._should_stop(now):
                break
            self._activate_due(now)
            if self._active_count == 0:
                remaining = max_cycles - executed
                target = self._next_scheduled()
                if target is None:
                    # Nothing will ever happen again: burn the rest of the
                    # budget in one jump, as the exhaustive schedule would
                    # burn it one empty cycle at a time.
                    self._clock.tick(remaining)
                    executed = max_cycles
                    break
                skip = min(target - now, remaining)
                if skip > 0:
                    self._clock.tick(skip)
                    executed += skip
                    continue
            self._run_cycle(now)
            self._clock.tick()
            executed += 1
        return executed

    def _should_stop(self, cycle: int) -> bool:
        return any(condition(cycle) for condition in self._stop_conditions)

    def __repr__(self) -> str:
        return (
            f"SimulationKernel(cycle={self._clock.now}, mode={self._mode!r}, "
            f"components={len(self._components)})"
        )
