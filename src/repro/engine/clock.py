"""Global simulation clock.

Every component of the simulated network (routers, links, network
interfaces, statistics collectors) shares a single :class:`Clock`
instance.  The clock only ever moves forward, one cycle at a time, under
the control of the simulation kernel.
"""

from __future__ import annotations

__all__ = ["Clock"]


class Clock:
    """A monotonically increasing cycle counter.

    The clock starts at cycle 0.  Components read :attr:`now` freely; only
    the simulation kernel should call :meth:`tick`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at a negative cycle: {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """The current simulation cycle."""
        return self._now

    def tick(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new time.

        The activity-aware kernel passes ``cycles > 1`` to fast-forward
        over spans in which every component is quiescent.

        Parameters
        ----------
        cycles:
            Number of cycles to advance.  Must be positive; the clock can
            never move backwards.
        """
        if cycles <= 0:
            raise ValueError(f"clock can only advance forward, got {cycles}")
        self._now += int(cycles)
        return self._now

    def reset(self) -> None:
        """Reset the clock to cycle 0 (used when re-running a simulation)."""
        self._now = 0

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
