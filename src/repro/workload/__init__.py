"""Closed-loop, dependency-driven workloads (registry kind ``"workload"``).

Where :mod:`repro.traffic` generates open-loop stochastic traffic, this
package executes a happens-before DAG of transfers and compute steps
over the network: a step injects only after its predecessors complete,
so the traffic self-throttles the way production accelerator fabrics do
(request-reply protocols, collectives, tensor-parallel model decode).
The primary result of a closed-loop run is the *time to drain* the DAG,
reported through ``SimulationResult.drain``.

See :mod:`repro.workload.dag` for the program model,
:mod:`repro.workload.engine` for the execution engine and its
determinism/quiescence contracts, and :mod:`repro.workload.builtin` for
the shipped generators (``request-reply``, ``allreduce``, ``alltoall``,
``llm-decode``, ``trace``).
"""

from repro.workload.builtin import TraceWorkload, example_trace_path
from repro.workload.dag import COMPUTE, TRANSFER, WorkloadDag, WorkloadNode
from repro.workload.engine import WorkloadEngine, WorkloadSource

__all__ = [
    "COMPUTE",
    "TRANSFER",
    "TraceWorkload",
    "WorkloadDag",
    "WorkloadEngine",
    "WorkloadNode",
    "WorkloadSource",
    "example_trace_path",
]
