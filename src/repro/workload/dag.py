"""Dependency-DAG model for closed-loop workloads.

A :class:`WorkloadDag` is the plain-data program a closed-loop workload
executes on the network: each node is either a *transfer* (a message of
``flits`` flits from ``src`` to ``dst``) or a *compute* step (a fixed
``delay`` in cycles at one node), and each edge is a happens-before
constraint.  A node becomes *ready* only after every predecessor has
completed -- a transfer completes when its tail flit is ejected at the
destination, a compute step when its delay elapses -- and barriers are
ordinary fan-in nodes (a zero-delay compute step depending on a whole
phase).

The DAG is validated eagerly: malformed node records, out-of-range edge
endpoints and cycles all raise ``ValueError`` with a message naming the
offending entry, so a bad trace file surfaces as a clean configuration
error rather than a deep traceback.  :meth:`WorkloadDag.from_trace_dict`
parses the JSON edge-list format replayed by the ``trace`` workload (see
:mod:`repro.workload.builtin`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["COMPUTE", "TRANSFER", "WorkloadDag", "WorkloadNode"]

#: Node kinds.
TRANSFER = "transfer"
COMPUTE = "compute"


@dataclass(frozen=True)
class WorkloadNode:
    """One step of a workload DAG.

    Transfers carry ``flits`` flits from ``src`` to ``dst``; compute
    steps occupy their home node (``src == dst``) for ``delay`` cycles
    without touching the network.  ``phase`` groups nodes for the
    per-phase completion metrics (iterations, collective steps, model
    layers -- whatever the generator sweeps).
    """

    kind: str
    src: int
    dst: int
    flits: int = 0
    delay: int = 0
    phase: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (TRANSFER, COMPUTE):
            raise ValueError(
                f"workload node kind must be {TRANSFER!r} or {COMPUTE!r}, "
                f"got {self.kind!r}"
            )
        if self.src < 0 or self.dst < 0:
            raise ValueError("workload node endpoints must be non-negative node ids")
        if self.phase < 0:
            raise ValueError("workload node phase must be non-negative")
        if self.kind == TRANSFER:
            if self.src == self.dst:
                raise ValueError(
                    f"transfer {self.src}->{self.dst} sends to itself; "
                    "self-transfers never cross the network and would deadlock "
                    "the workload"
                )
            if self.flits < 1:
                raise ValueError(
                    f"transfer {self.src}->{self.dst} must carry at least one "
                    f"flit, got {self.flits}"
                )
            if self.delay != 0:
                raise ValueError("transfers carry no compute delay")
        else:
            if self.src != self.dst:
                raise ValueError(
                    "compute steps occupy one home node (src == dst), got "
                    f"{self.src} != {self.dst}"
                )
            if self.delay < 0:
                raise ValueError(f"compute delay must be >= 0, got {self.delay}")
            if self.flits != 0:
                raise ValueError("compute steps carry no flits")

    @property
    def home(self) -> int:
        """The node this step occupies (source for transfers)."""
        return self.src


class WorkloadDag:
    """A validated happens-before DAG of transfers and compute steps."""

    def __init__(
        self,
        nodes: Sequence[WorkloadNode],
        edges: Sequence[Tuple[int, int]] = (),
    ) -> None:
        if not nodes:
            raise ValueError("a workload DAG needs at least one node")
        self._nodes: Tuple[WorkloadNode, ...] = tuple(nodes)
        count = len(self._nodes)
        successors: List[List[int]] = [[] for _ in range(count)]
        indegree = [0] * count
        seen = set()
        for position, edge in enumerate(edges):
            try:
                pred, succ = edge
            except (TypeError, ValueError):
                raise ValueError(
                    f"workload DAG edge #{position} must be a [pred, succ] "
                    f"pair, got {edge!r}"
                ) from None
            if not isinstance(pred, int) or not isinstance(succ, int):
                raise ValueError(
                    f"workload DAG edge #{position} must hold integer node "
                    f"indices, got {edge!r}"
                )
            if not (0 <= pred < count and 0 <= succ < count):
                raise ValueError(
                    f"workload DAG edge #{position} ({pred} -> {succ}) points "
                    f"outside the {count}-node DAG"
                )
            if pred == succ:
                raise ValueError(
                    f"workload DAG edge #{position} is a self-loop on node {pred}"
                )
            if (pred, succ) in seen:
                continue
            seen.add((pred, succ))
            successors[pred].append(succ)
            indegree[succ] += 1
        self._successors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(out)) for out in successors
        )
        self._indegree: Tuple[int, ...] = tuple(indegree)
        self._check_acyclic()
        self._phase_count = max(node.phase for node in self._nodes) + 1

    def _check_acyclic(self) -> None:
        remaining = list(self._indegree)
        frontier = [idx for idx, degree in enumerate(remaining) if degree == 0]
        visited = 0
        while frontier:
            idx = frontier.pop()
            visited += 1
            for succ in self._successors[idx]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    frontier.append(succ)
        if visited != len(self._nodes):
            stuck = sorted(idx for idx, degree in enumerate(remaining) if degree > 0)
            raise ValueError(
                f"workload DAG has a dependency cycle through nodes {stuck}; "
                "every workload must be able to drain"
            )

    # -- introspection ------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[WorkloadNode, ...]:
        """Every step, indexed by DAG position."""
        return self._nodes

    @property
    def successors(self) -> Tuple[Tuple[int, ...], ...]:
        """Outgoing happens-before edges per node index."""
        return self._successors

    @property
    def indegree(self) -> Tuple[int, ...]:
        """Incoming edge count per node index (0 = root, ready at cycle 0)."""
        return self._indegree

    @property
    def phase_count(self) -> int:
        """Number of phases (``max(node.phase) + 1``)."""
        return self._phase_count

    @property
    def num_transfers(self) -> int:
        """How many nodes are network transfers (messages injected)."""
        return sum(1 for node in self._nodes if node.kind == TRANSFER)

    @property
    def total_flits(self) -> int:
        """Total flits carried by every transfer."""
        return sum(node.flits for node in self._nodes if node.kind == TRANSFER)

    def phase_node_counts(self) -> List[int]:
        """Node count per phase (transfers and compute steps alike)."""
        counts = [0] * self._phase_count
        for node in self._nodes:
            counts[node.phase] += 1
        return counts

    def check_nodes_in_range(self, num_nodes: int) -> None:
        """Raise ``ValueError`` if any endpoint exceeds the topology."""
        for idx, node in enumerate(self._nodes):
            if node.src >= num_nodes or node.dst >= num_nodes:
                raise ValueError(
                    f"workload DAG node #{idx} ({node.kind} "
                    f"{node.src}->{node.dst}) names a node id beyond the "
                    f"{num_nodes}-node topology"
                )

    def critical_path_cycles(self, transfer_cycles) -> int:
        """Static lower bound on the drain time (cycles).

        Longest path through the DAG, costing each transfer with
        ``transfer_cycles(node)`` (the caller supplies the contention-free
        message latency), each compute step with its delay, and each
        happens-before edge with the one-cycle release latency of the
        engine (a successor becomes injectable the cycle *after* its last
        predecessor completes).
        """
        count = len(self._nodes)
        cost = [
            transfer_cycles(node) if node.kind == TRANSFER else node.delay
            for node in self._nodes
        ]
        finish = [0] * count
        remaining = list(self._indegree)
        frontier = [idx for idx in range(count) if remaining[idx] == 0]
        ready = [0] * count
        while frontier:
            next_frontier: List[int] = []
            for idx in frontier:
                finish[idx] = ready[idx] + cost[idx]
                for succ in self._successors[idx]:
                    ready[succ] = max(ready[succ], finish[idx] + 1)
                    remaining[succ] -= 1
                    if remaining[succ] == 0:
                        next_frontier.append(succ)
            frontier = next_frontier
        return max(finish)

    # -- trace parsing ------------------------------------------------------------

    @classmethod
    def from_trace_dict(cls, data: object) -> "WorkloadDag":
        """Build a DAG from the JSON edge-list trace format.

        The document is ``{"nodes": [...], "edges": [[pred, succ], ...]}``
        where each node record is either
        ``{"kind": "transfer", "src": S, "dst": D, "flits": F}`` or
        ``{"kind": "compute", "node": N, "delay": K}`` (both accept an
        optional ``"phase"``).  Every malformed record raises
        ``ValueError`` naming the entry.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"workload trace must be a JSON object with 'nodes' and "
                f"'edges', got {type(data).__name__}"
            )
        raw_nodes = data.get("nodes")
        if not isinstance(raw_nodes, list) or not raw_nodes:
            raise ValueError("workload trace needs a non-empty 'nodes' list")
        nodes: List[WorkloadNode] = []
        for position, record in enumerate(raw_nodes):
            nodes.append(cls._parse_trace_node(position, record))
        raw_edges = data.get("edges", [])
        if not isinstance(raw_edges, list):
            raise ValueError("workload trace 'edges' must be a list of [pred, succ] pairs")
        return cls(nodes, [tuple(edge) if isinstance(edge, list) else edge
                           for edge in raw_edges])

    @staticmethod
    def _parse_trace_node(position: int, record: object) -> WorkloadNode:
        if not isinstance(record, dict):
            raise ValueError(
                f"workload trace node #{position} must be a JSON object, "
                f"got {record!r}"
            )
        kind = record.get("kind", TRANSFER)
        phase = record.get("phase", 0)
        if not isinstance(phase, int):
            raise ValueError(
                f"workload trace node #{position}: 'phase' must be an "
                f"integer, got {phase!r}"
            )

        def _field(name: str, default: object = None) -> int:
            value = record.get(name, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"workload trace node #{position} ({kind}): missing or "
                    f"non-integer {name!r} field (got {value!r})"
                )
            return value

        if kind == TRANSFER:
            src, dst, flits = _field("src"), _field("dst"), _field("flits", 1)
            try:
                return WorkloadNode(
                    kind=TRANSFER, src=src, dst=dst, flits=flits, phase=phase
                )
            except ValueError as error:
                raise ValueError(
                    f"workload trace node #{position}: {error}"
                ) from None
        if kind == COMPUTE:
            home, delay = _field("node"), _field("delay", 0)
            try:
                return WorkloadNode(
                    kind=COMPUTE, src=home, dst=home, delay=delay, phase=phase
                )
            except ValueError as error:
                raise ValueError(
                    f"workload trace node #{position}: {error}"
                ) from None
        raise ValueError(
            f"workload trace node #{position}: unknown kind {kind!r} "
            f"(expected {TRANSFER!r} or {COMPUTE!r})"
        )

    @classmethod
    def from_trace_json(cls, text: str) -> "WorkloadDag":
        """Parse a JSON trace document (see :meth:`from_trace_dict`)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"workload trace is not valid JSON: {error}") from None
        return cls.from_trace_dict(data)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"WorkloadDag(nodes={len(self._nodes)}, "
            f"transfers={self.num_transfers}, phases={self._phase_count})"
        )
