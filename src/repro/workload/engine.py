"""Closed-loop execution of a workload DAG over the network.

The :class:`WorkloadEngine` holds the run-time state of one
:class:`~repro.workload.dag.WorkloadDag`: which steps are still blocked,
which are pending at their home node, and which messages are in flight.
One :class:`WorkloadSource` per node exposes the same duck-typed source
protocol the open-loop :class:`~repro.traffic.generator.TrafficSource`
implements (``messages_due(cycle)`` plus the ``next_due_cycle()``
quiescence forecast), so both network cores consume closed-loop traffic
through exactly the machinery they already have.

Release semantics (the one rule everything else follows): a step whose
last predecessor completes at cycle ``c`` becomes *ready* at ``c + 1`` --
strictly in the future.  Deliveries are observed during the kernel's
deliver phase, after the activity schedule has already fixed the current
cycle's runnable set, so a same-cycle release would be picked up this
cycle by the exhaustive schedule but only next cycle by the activity
schedule; deferring every release by one cycle keeps all sixteen
kernel x switch x link x core combinations bit-identical.  A ready
transfer is injected at its ready cycle; a ready compute step completes
``delay`` cycles later without touching the network.

Completions arrive through two paths: transfer tails via the
delivery callback :meth:`WorkloadEngine.on_delivered` (hooked on
:meth:`repro.stats.collector.StatsCollector.record_delivered`, the single
ejection point shared by the object interfaces and the flat core), and
compute steps via the owning source's ``messages_due`` poll at their
completion cycle.  Every release wakes the successor's home node through
a per-node wake callback (:meth:`WorkloadEngine.attach_wakes`), so the
activity kernel never sleeps through newly unblocked work; the pending
lists back ``next_due_cycle`` exactly, which keeps the forecast safe
under the flat core's end-of-evaluate wake recomputation.

All retained state is O(DAG + in-flight): pending entries and the
in-flight map shrink as the workload drains, and the drain metrics
(time to drain, per-phase completion cycles) are streaming counters --
no per-message history is ever kept.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional

from repro.traffic.message import Message
from repro.workload.dag import COMPUTE, WorkloadDag

__all__ = ["WorkloadEngine", "WorkloadSource"]


class WorkloadEngine:
    """Run-time state of one workload DAG (shared by every node's source)."""

    def __init__(self, dag: WorkloadDag, num_nodes: int) -> None:
        dag.check_nodes_in_range(num_nodes)
        self._dag = dag
        self._num_nodes = num_nodes
        #: Unsatisfied predecessor count per DAG index.
        self._blocked: List[int] = list(dag.indegree)
        #: Per-node sorted pending lists of ``(due_cycle, dag_index)``:
        #: transfers awaiting injection and compute steps awaiting their
        #: completion cycle.  ``(due, idx)`` keys are unique (each step is
        #: released exactly once), so the list order -- and therefore the
        #: message creation order -- is canonical regardless of the order
        #: same-cycle completions were observed in.
        self._pending: List[List[tuple]] = [[] for _ in range(num_nodes)]
        #: Per-node wake callbacks into the executing core (attached by
        #: the simulator once the network exists).
        self._wakes: List[Optional[Callable[[int], None]]] = [None] * num_nodes
        #: In-flight transfer messages: message_id -> DAG index.  Entries
        #: are popped on delivery; the map is never iterated, so the
        #: process-global message ids cannot influence behaviour.
        self._inflight: Dict[int, int] = {}
        self._nodes_remaining = len(dag)
        self._phase_remaining = dag.phase_node_counts()
        self._phase_cycles: List[Optional[int]] = [None] * dag.phase_count
        self._drain_cycle: Optional[int] = None
        for idx, blocked_by in enumerate(self._blocked):
            if blocked_by == 0:
                self._release(idx, ready_cycle=0)

    # -- wiring --------------------------------------------------------------------

    def sources(self) -> List["WorkloadSource"]:
        """One source per node, in node-id order (feeds ``Network``)."""
        return [WorkloadSource(self, node) for node in range(self._num_nodes)]

    def attach_wakes(self, wakes: List[Callable[[int], None]]) -> None:
        """Install the per-node wake callbacks of the executing core.

        ``wakes[node](cycle)`` must wake node ``node``'s interface for
        ``cycle``: :meth:`NetworkInterface.wake_source` on the object
        core, :meth:`FlatNetworkCore.wake_interface` on the flat core.
        """
        if len(wakes) != self._num_nodes:
            raise ValueError(
                f"expected {self._num_nodes} wake callbacks, got {len(wakes)}"
            )
        self._wakes = list(wakes)

    # -- the source protocol (per node) -------------------------------------------

    def next_due_cycle(self, node: int) -> Optional[int]:
        """Earliest pending due cycle at ``node``, or None when idle.

        None does *not* mean "never again": a later release re-arms the
        node through its wake callback, so the activity kernel may sleep
        the interface until then.
        """
        pending = self._pending[node]
        return pending[0][0] if pending else None

    def messages_due(self, node: int, cycle: int) -> List[Message]:
        """Transfers of ``node`` falling due at ``cycle``.

        Pending compute steps whose completion cycle arrives are retired
        here too (their successors release at ``cycle + 1``, so the loop
        never chases its own insertions into the current cycle).
        """
        pending = self._pending[node]
        due: List[Message] = []
        while pending and pending[0][0] < cycle + 1:
            _, idx = pending.pop(0)
            step = self._dag.nodes[idx]
            if step.kind == COMPUTE:
                self._complete(idx, cycle)
                continue
            message = Message(
                source=step.src,
                destination=step.dst,
                length=step.flits,
                creation_cycle=cycle,
            )
            self._inflight[message.message_id] = idx
            due.append(message)
        return due

    # -- completions ---------------------------------------------------------------

    def on_delivered(self, message: Message, cycle: int) -> None:
        """Delivery callback: a transfer's tail flit was ejected.

        Hooked on the stats collector, so both cores report through the
        single existing ejection path; non-workload messages (none exist
        in a closed-loop run, but plugin sources could mix) are ignored.
        """
        idx = self._inflight.pop(message.message_id, None)
        if idx is not None:
            self._complete(idx, cycle)

    def _complete(self, idx: int, cycle: int) -> None:
        step = self._dag.nodes[idx]
        self._nodes_remaining -= 1
        self._phase_remaining[step.phase] -= 1
        if self._phase_remaining[step.phase] == 0:
            self._phase_cycles[step.phase] = cycle
        if self._nodes_remaining == 0:
            self._drain_cycle = cycle
        for succ in self._dag.successors[idx]:
            self._blocked[succ] -= 1
            if self._blocked[succ] == 0:
                self._release(succ, cycle + 1)

    def _release(self, idx: int, ready_cycle: int) -> None:
        """Queue a now-unblocked step at its home node and wake it."""
        step = self._dag.nodes[idx]
        due = ready_cycle + step.delay
        insort(self._pending[step.home], (due, idx))
        self._wake_home(step.home, due)

    def _wake_home(self, node: int, cycle: int) -> None:
        wake = self._wakes[node]
        if wake is not None:
            wake(cycle)

    # -- drain metrics -------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """Whether every DAG step has completed."""
        return self._nodes_remaining == 0

    @property
    def inflight_count(self) -> int:
        """Transfers currently in the network (exposed for tests)."""
        return len(self._inflight)

    def drain_metrics(self, cycles: int, critical_path_cycles: int) -> Dict[str, object]:
        """The closed-loop result record (folded into ``SimulationResult``).

        ``time_to_drain`` is the completion cycle of the last DAG step,
        or the simulated cycle count when the run hit its budget first
        (``drained`` says which).  ``critical_path_utilization`` compares
        the static dependency-chain lower bound against the achieved
        drain time: 1.0 means the network added no contention at all.
        """
        drained = self._drain_cycle is not None
        time_to_drain = self._drain_cycle if drained else cycles
        utilization = (
            float(critical_path_cycles) / float(time_to_drain)
            if time_to_drain > 0
            else 1.0
        )
        return {
            "drained": drained,
            "time_to_drain": int(time_to_drain),
            "phase_cycles": list(self._phase_cycles),
            "critical_path_cycles": int(critical_path_cycles),
            "critical_path_utilization": utilization,
            "transfers": self._dag.num_transfers,
            "total_flits": self._dag.total_flits,
        }

    def __repr__(self) -> str:
        return (
            f"WorkloadEngine(steps={len(self._dag)}, "
            f"remaining={self._nodes_remaining}, inflight={len(self._inflight)})"
        )


class WorkloadSource:
    """One node's view of the engine (the duck-typed source protocol)."""

    __slots__ = ("_engine", "_node")

    def __init__(self, engine: WorkloadEngine, node: int) -> None:
        self._engine = engine
        self._node = node

    @property
    def node(self) -> int:
        """Node this source injects at."""
        return self._node

    def next_due_cycle(self) -> Optional[int]:
        """Earliest pending due cycle, or None while nothing is queued."""
        return self._engine.next_due_cycle(self._node)

    def messages_due(self, cycle: int) -> List[Message]:
        """Transfers of this node falling due at ``cycle``."""
        return self._engine.messages_due(self._node, cycle)

    def __repr__(self) -> str:
        return f"WorkloadSource(node={self._node})"
