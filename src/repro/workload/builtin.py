"""Built-in closed-loop workload generators (registry kind ``"workload"``).

Each factory is called as ``factory(config, topology)`` and returns the
:class:`~repro.workload.dag.WorkloadDag` the engine executes:

``request-reply``
    An open client loop: every client node sends ``workload_iters``
    requests to its mirror server, each answered by a reply, with at most
    ``workload_window`` request/reply exchanges outstanding per client
    (request *i* waits for reply *i - window*).  Transfer sizes follow
    ``message_length`` (requests) and half of it (replies).
``allreduce``
    Ring all-reduce over the first ``workload_group`` nodes (0 = every
    node): ``2*(g-1)`` steps of neighbour-to-neighbour chunk transfers of
    ``max(1, workload_hidden // g)`` flits, each step chained on the
    previous step's arrival, repeated ``workload_iters`` times (one phase
    per iteration).
``alltoall``
    Phased all-to-all over the same group: in phase *k* every member
    sends to the member ``k+1`` positions ahead, and a zero-delay barrier
    (fan-in compute step at the group lead) separates consecutive phases.
``llm-decode``
    Tensor-parallel LLM decode: the mesh is split into consecutive
    TP groups of ``workload_group`` nodes; each of ``workload_layers``
    layers runs on group ``layer % num_groups`` as a per-member compute
    step (``workload_compute`` cycles) followed by a ring all-reduce of
    the hidden activations, then passes activations member-to-member into
    the next layer's group (one phase per layer).
``trace``
    :class:`TraceWorkload` -- replays the JSON edge-list DAG named by
    ``workload_trace`` (see :meth:`WorkloadDag.from_trace_dict`).

All generators are pure functions of the configuration and topology:
no randomness, so the DAG -- and with the engine's canonical release
order, the whole run -- is deterministic given the config.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

from repro.registry import register
from repro.workload.dag import COMPUTE, TRANSFER, WorkloadDag, WorkloadNode

__all__ = [
    "TraceWorkload",
    "example_trace_path",
    "llm_decode_workload",
    "phased_alltoall_workload",
    "request_reply_workload",
    "ring_allreduce_workload",
]


def _group_nodes(config, topology, minimum: int = 2) -> List[int]:
    """The collective's node group: the first ``workload_group`` node ids
    (0 = all nodes), validated against the topology and ``minimum``."""
    size = config.workload_group or topology.num_nodes
    if size > topology.num_nodes:
        raise ValueError(
            f"workload_group={size} exceeds the {topology.num_nodes}-node "
            "topology"
        )
    if size < minimum:
        raise ValueError(
            f"workload {config.workload!r} needs a group of at least "
            f"{minimum} nodes, got workload_group={size}"
        )
    return list(range(size))


def _transfer(src: int, dst: int, flits: int, phase: int) -> WorkloadNode:
    return WorkloadNode(kind=TRANSFER, src=src, dst=dst, flits=flits, phase=phase)


def _compute(home: int, delay: int, phase: int) -> WorkloadNode:
    return WorkloadNode(kind=COMPUTE, src=home, dst=home, delay=delay, phase=phase)


def _ring_allreduce_steps(
    nodes: List[WorkloadNode],
    edges: List[Tuple[int, int]],
    members: List[int],
    flits: int,
    phase: int,
    entry_deps: List[int],
) -> List[int]:
    """Append one ring all-reduce over ``members`` to the DAG.

    ``entry_deps[m]`` (or -1 for none) gates member ``m``'s first send;
    returns per-member indices of the final-step transfer *received* at
    each member (the completion the next stage depends on).
    """
    group = len(members)
    received = list(entry_deps)
    for _ in range(2 * (group - 1)):
        sends: List[int] = []
        for position, member in enumerate(members):
            dst = members[(position + 1) % group]
            idx = len(nodes)
            nodes.append(_transfer(member, dst, flits, phase))
            # A member forwards once its own inbound chunk of the
            # previous step (or its entry dependency) has arrived.
            if received[position] >= 0:
                edges.append((received[position], idx))
            sends.append(idx)
        # The transfer received at member m came from its ring predecessor.
        received = [sends[(position - 1) % group] for position in range(group)]
    return received


@register("workload", "request-reply")
def request_reply_workload(config, topology) -> WorkloadDag:
    """Windowed request-reply pairs between mirror client/server nodes."""
    num_nodes = topology.num_nodes
    if num_nodes < 2:
        raise ValueError("the request-reply workload needs at least two nodes")
    iters = config.workload_iters
    window = config.workload_window
    request_flits = config.message_length
    reply_flits = max(1, config.message_length // 2)
    nodes: List[WorkloadNode] = []
    edges: List[Tuple[int, int]] = []
    for client in range(num_nodes // 2):
        server = num_nodes - 1 - client
        replies: List[int] = []
        for iteration in range(iters):
            request = len(nodes)
            nodes.append(_transfer(client, server, request_flits, iteration))
            reply = len(nodes)
            nodes.append(_transfer(server, client, reply_flits, iteration))
            edges.append((request, reply))
            if iteration >= window:
                # The bounded outstanding window: request i waits for
                # reply i - window.
                edges.append((replies[iteration - window], request))
            replies.append(reply)
    return WorkloadDag(nodes, edges)


@register("workload", "allreduce")
def ring_allreduce_workload(config, topology) -> WorkloadDag:
    """Iterated ring all-reduce over the configured node group."""
    members = _group_nodes(config, topology)
    flits = max(1, config.workload_hidden // len(members))
    nodes: List[WorkloadNode] = []
    edges: List[Tuple[int, int]] = []
    entry = [-1] * len(members)
    for iteration in range(config.workload_iters):
        entry = _ring_allreduce_steps(
            nodes, edges, members, flits, phase=iteration, entry_deps=entry
        )
    return WorkloadDag(nodes, edges)


@register("workload", "alltoall")
def phased_alltoall_workload(config, topology) -> WorkloadDag:
    """Phased all-to-all with a barrier between consecutive phases."""
    members = _group_nodes(config, topology)
    group = len(members)
    flits = max(1, config.workload_hidden // group)
    nodes: List[WorkloadNode] = []
    edges: List[Tuple[int, int]] = []
    barrier = -1
    phase = 0
    for _ in range(config.workload_iters):
        for offset in range(1, group):
            sends: List[int] = []
            for position, member in enumerate(members):
                idx = len(nodes)
                nodes.append(
                    _transfer(member, members[(position + offset) % group], flits, phase)
                )
                if barrier >= 0:
                    edges.append((barrier, idx))
                sends.append(idx)
            # The barrier is a fan-in compute step at the group lead: the
            # next phase starts only after every transfer of this phase
            # has delivered.
            barrier = len(nodes)
            nodes.append(_compute(members[0], 0, phase))
            for idx in sends:
                edges.append((idx, barrier))
            phase += 1
    return WorkloadDag(nodes, edges)


@register("workload", "llm-decode")
def llm_decode_workload(config, topology) -> WorkloadDag:
    """Tensor-parallel decode: per-layer all-reduce plus activation passing."""
    group = config.workload_group or min(4, topology.num_nodes)
    if group < 2:
        raise ValueError(
            "the llm-decode workload needs a TP group of at least 2 nodes, "
            f"got workload_group={group}"
        )
    if group > topology.num_nodes:
        raise ValueError(
            f"workload_group={group} exceeds the {topology.num_nodes}-node "
            "topology"
        )
    num_groups = topology.num_nodes // group
    activation_flits = max(1, config.workload_hidden // group)
    nodes: List[WorkloadNode] = []
    edges: List[Tuple[int, int]] = []
    # Per-member dependency carried into the next layer (-1 = root).
    carried = [-1] * group
    for layer in range(config.workload_layers):
        members = [(layer % num_groups) * group + position for position in range(group)]
        computes: List[int] = []
        for position, member in enumerate(members):
            idx = len(nodes)
            nodes.append(_compute(member, config.workload_compute, layer))
            if carried[position] >= 0:
                edges.append((carried[position], idx))
            computes.append(idx)
        reduced = _ring_allreduce_steps(
            nodes, edges, members, activation_flits, phase=layer, entry_deps=computes
        )
        if layer + 1 < config.workload_layers:
            next_members = [
                (((layer + 1) % num_groups) * group) + position
                for position in range(group)
            ]
            if next_members == members:
                # Single pipeline stage: the next layer runs on the same
                # group, gated directly on the all-reduce completion.
                carried = reduced
            else:
                carried = []
                for position, member in enumerate(members):
                    idx = len(nodes)
                    nodes.append(
                        _transfer(
                            member, next_members[position], activation_flits, layer
                        )
                    )
                    edges.append((reduced[position], idx))
                    carried.append(idx)
    return WorkloadDag(nodes, edges)


class TraceWorkload:
    """Replays a JSON edge-list DAG from ``config.workload_trace``.

    The trace format is documented by
    :meth:`repro.workload.dag.WorkloadDag.from_trace_dict`; a shipped
    example lives at :func:`example_trace_path`.  Every failure mode --
    missing path, unreadable file, invalid JSON, malformed records,
    cycles, endpoints beyond the topology -- raises ``ValueError`` with a
    message naming the problem.
    """

    name = "trace"

    def __call__(self, config, topology) -> WorkloadDag:
        path = config.workload_trace
        if not path:
            raise ValueError(
                "the trace workload needs workload_trace=PATH pointing at a "
                "JSON DAG (see repro/workload/example_trace.json)"
            )
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ValueError(
                f"cannot read workload trace {path!r}: {error}"
            ) from None
        dag = WorkloadDag.from_trace_json(text)
        dag.check_nodes_in_range(topology.num_nodes)
        return dag


register("workload", "trace", obj=TraceWorkload())


def example_trace_path() -> Path:
    """The shipped example trace (used by docs, tests and the R-checks)."""
    return Path(__file__).resolve().parent / "example_trace.json"
