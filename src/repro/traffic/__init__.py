"""Synthetic workload generation.

This subpackage contains everything needed to offer load to the simulated
network the way the LAPSES paper does (Section 2.2):

* :mod:`repro.traffic.message` -- messages and flits, the units of
  transfer in a wormhole network.
* :mod:`repro.traffic.patterns` -- the synthetic destination patterns
  (uniform, transpose, bit-reversal, perfect-shuffle, and a few extras).
* :mod:`repro.traffic.injection` -- injection processes (exponential and
  Bernoulli inter-arrival times) and the normalized-load calibration
  against the network's bisection bandwidth.
* :mod:`repro.traffic.generator` -- the per-node traffic source that ties
  a pattern and an injection process together and feeds the network
  interfaces.
"""

from repro.traffic.injection import (
    BernoulliInjection,
    ExponentialInjection,
    InjectionProcess,
    saturation_flit_rate,
    saturation_message_rate,
)
from repro.traffic.message import Flit, FlitType, Message
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    HotspotPattern,
    NearestNeighborPattern,
    PerfectShufflePattern,
    TornadoPattern,
    TrafficPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)
from repro.traffic.generator import TrafficGenerator, TrafficSource

__all__ = [
    "BernoulliInjection",
    "BitComplementPattern",
    "BitReversalPattern",
    "ExponentialInjection",
    "Flit",
    "FlitType",
    "HotspotPattern",
    "InjectionProcess",
    "Message",
    "NearestNeighborPattern",
    "PerfectShufflePattern",
    "TornadoPattern",
    "TrafficGenerator",
    "TrafficPattern",
    "TrafficSource",
    "TransposePattern",
    "UniformPattern",
    "make_pattern",
    "saturation_flit_rate",
    "saturation_message_rate",
]
