"""Synthetic traffic patterns (Section 2.2 of the paper).

The paper evaluates four patterns -- uniform, transpose, bit-reversal and
perfect shuffle -- "consistent with standard definitions for synthetic
traffic patterns used in interconnection network studies" (Fulgham &
Snyder).  Bit-complement, tornado, nearest-neighbour and hotspot patterns
are provided as well for the extension benchmarks.

The bit-oriented permutations operate on the binary node address (which
requires a power-of-two node count); transpose swaps the X and Y
coordinates (which requires a square 2-D network).  A permutation source
whose image equals itself does not inject traffic, following common
practice for these benchmarks.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from repro.network.topology import Topology
from repro.registry import TRAFFIC_PATTERNS, register

__all__ = [
    "BitComplementPattern",
    "BitReversalPattern",
    "HotspotPattern",
    "NearestNeighborPattern",
    "PerfectShufflePattern",
    "TornadoPattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformPattern",
    "make_pattern",
]


class TrafficPattern(ABC):
    """Maps a source node to a destination node for each generated message."""

    #: Report name ("uniform", "transpose", ...).
    name: str = "pattern"

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """Topology the pattern addresses."""
        return self._topology

    @abstractmethod
    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        """Destination for a message injected at ``source``.

        Returns ``None`` when the source does not inject under this pattern
        (permutation fixed points).
        """

    def _require_power_of_two(self) -> int:
        """Number of address bits; raises if the node count is not 2^k."""
        num_nodes = self._topology.num_nodes
        if num_nodes & (num_nodes - 1):
            raise ValueError(
                f"{self.name} traffic needs a power-of-two node count, got {num_nodes}"
            )
        return num_nodes.bit_length() - 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}(topology={self._topology!r})"


@register("traffic")
class UniformPattern(TrafficPattern):
    """Every message picks a destination uniformly at random (excluding self)."""

    name = "uniform"

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        num_nodes = self._topology.num_nodes
        if num_nodes < 2:
            # A single-node network has no destination other than the
            # source; treat every injection slot as a fixed point instead
            # of crashing in randrange(0).
            return None
        destination = rng.randrange(num_nodes - 1)
        # Skip over the source so all other nodes are equally likely.
        if destination >= source:
            destination += 1
        return destination


@register("traffic")
class TransposePattern(TrafficPattern):
    """Matrix-transpose permutation: node (x, y) sends to node (y, x)."""

    name = "transpose"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        if topology.n_dims != 2 or topology.dims[0] != topology.dims[1]:
            raise ValueError("transpose traffic needs a square 2-D network")

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        x, y = self._topology.coordinates(source)
        destination = self._topology.node_id((y, x))
        return None if destination == source else destination


@register("traffic")
class BitReversalPattern(TrafficPattern):
    """Bit-reversal permutation of the binary node address."""

    name = "bit-reversal"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._bits = self._require_power_of_two()

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        destination = 0
        for bit in range(self._bits):
            if source & (1 << bit):
                destination |= 1 << (self._bits - 1 - bit)
        return None if destination == source else destination


@register("traffic")
class PerfectShufflePattern(TrafficPattern):
    """Perfect-shuffle permutation: rotate the address left by one bit."""

    name = "shuffle"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._bits = self._require_power_of_two()

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        mask = (1 << self._bits) - 1
        destination = ((source << 1) | (source >> (self._bits - 1))) & mask
        return None if destination == source else destination


@register("traffic")
class BitComplementPattern(TrafficPattern):
    """Bit-complement permutation: invert every address bit."""

    name = "bit-complement"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._bits = self._require_power_of_two()

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        mask = (1 << self._bits) - 1
        destination = (~source) & mask
        return None if destination == source else destination


@register("traffic")
class TornadoPattern(TrafficPattern):
    """Tornado traffic: move half-way around every dimension.

    On a torus the classic definition applies: every node sends to the
    node ``extent // 2`` hops further along each wrapping dimension.  A
    mesh has no wrap-around channels, so "half-way around" is undefined
    there; the ``% extent`` arithmetic previously produced wrap-around
    destinations that turned edge sources into *short* backward trips
    instead of long ones.  On meshes the offset (``extent // 2 - 1``, the
    longest hop that keeps the center-to-center spirit without crossing
    the missing wrap link) is therefore *clamped* at the mesh edge:
    sources near the high edge send shorter distances, and the far corner
    becomes a fixed point that does not inject -- mirroring how the
    permutation patterns treat their fixed points.  Raising instead (as
    the bit patterns do for non-power-of-two networks) was rejected so
    tornado sweeps stay runnable on the paper's mesh topologies.
    """

    name = "tornado"

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        coords = self._topology.coordinates(source)
        dims = self._topology.dims
        if self._topology.wraps:
            target = tuple(
                (coordinate + extent // 2) % extent if extent > 1 else coordinate
                for coordinate, extent in zip(coords, dims)
            )
        else:
            target = tuple(
                min(coordinate + extent // 2 - 1, extent - 1)
                if extent > 1
                else coordinate
                for coordinate, extent in zip(coords, dims)
            )
        destination = self._topology.node_id(target)
        return None if destination == source else destination


@register("traffic")
class NearestNeighborPattern(TrafficPattern):
    """Each node sends to its +X neighbour (wrapping at the mesh edge)."""

    name = "neighbor"

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        coords = list(self._topology.coordinates(source))
        coords[0] = (coords[0] + 1) % self._topology.dims[0]
        destination = self._topology.node_id(coords)
        return None if destination == source else destination


@register("traffic")
class HotspotPattern(TrafficPattern):
    """Uniform traffic with an extra fraction directed at one hotspot node."""

    name = "hotspot"

    def __init__(
        self, topology: Topology, hotspot: Optional[int] = None, fraction: float = 0.1
    ) -> None:
        super().__init__(topology)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"hotspot fraction must be in [0, 1], got {fraction}")
        center = tuple(extent // 2 for extent in topology.dims)
        self._hotspot = hotspot if hotspot is not None else topology.node_id(center)
        self._fraction = fraction
        self._uniform = UniformPattern(topology)

    @property
    def hotspot(self) -> int:
        """The node receiving the extra traffic."""
        return self._hotspot

    def destination(self, source: int, rng: random.Random) -> Optional[int]:
        if source != self._hotspot and rng.random() < self._fraction:
            return self._hotspot
        return self._uniform.destination(source, rng)


#: Built-in pattern names (plugins registered later do not appear here; use
#: :meth:`repro.registry.TRAFFIC_PATTERNS.names` for the live list).
PATTERN_NAMES = tuple(sorted(TRAFFIC_PATTERNS.names()))


def make_pattern(name: str, topology: Topology, **kwargs) -> TrafficPattern:
    """Instantiate a traffic pattern by its report name.

    Looks ``name`` up in :data:`repro.registry.TRAFFIC_PATTERNS`, so
    user-registered patterns are constructed exactly like the built-ins.
    """
    factory = TRAFFIC_PATTERNS.get(name)
    return factory(topology, **kwargs)
