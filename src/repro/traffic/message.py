"""Messages and flits.

In a wormhole-switched network a message is broken into flow-control
digits (*flits*).  The header flit carries the routing information and
establishes the path hop by hop; body flits and the tail flit follow the
header through the reserved virtual channels; the tail flit releases the
path as it passes.

The LAPSES look-ahead technique additionally stores, in the header flit,
the candidate output ports to use at the *next* router (Section 3.2 of the
paper).  That per-hop route information is modelled by the
``route_candidates`` field of :class:`Flit`, which look-ahead routers
overwrite at every hop while non-look-ahead routers ignore it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

__all__ = ["FlitType", "Flit", "Message"]


class FlitType(Enum):
    """Role of a flit within its message."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit messages carry routing info and release the path at once.
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        """True for flits that carry routing information."""
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        """True for flits that release the wormhole path behind them."""
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_message_ids = itertools.count()


@dataclass
class Message:
    """A message offered to the network by a traffic source.

    Parameters
    ----------
    source, destination:
        Node identifiers.
    length:
        Message length in flits (the paper's default is 20 flits).
    creation_cycle:
        Cycle at which the source generated the message.  Source queueing
        time (creation to injection of the header flit) is part of the
        reported average latency, as is standard for latency/load curves.
    """

    source: int
    destination: int
    length: int
    creation_cycle: int
    message_id: int = field(default_factory=lambda: next(_message_ids))

    #: Cycle the header flit entered the injection port of the source router.
    injection_cycle: Optional[int] = None
    #: Cycle the tail flit was ejected at the destination network interface.
    ejection_cycle: Optional[int] = None
    #: Number of routers traversed by the header flit.
    hops: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"message length must be >= 1 flit, got {self.length}")
        if self.source < 0 or self.destination < 0:
            raise ValueError("source and destination must be non-negative node ids")

    def make_flits(self) -> List["Flit"]:
        """Break the message into its flit sequence (head, bodies, tail)."""
        flits: List[Flit] = []
        if self.length == 1:
            flits.append(Flit(message=self, sequence=0, flit_type=FlitType.HEAD_TAIL))
            return flits
        flits.append(Flit(message=self, sequence=0, flit_type=FlitType.HEAD))
        for sequence in range(1, self.length - 1):
            flits.append(Flit(message=self, sequence=sequence, flit_type=FlitType.BODY))
        flits.append(
            Flit(message=self, sequence=self.length - 1, flit_type=FlitType.TAIL)
        )
        return flits

    @property
    def is_delivered(self) -> bool:
        """True once the tail flit has been ejected at the destination."""
        return self.ejection_cycle is not None

    @property
    def total_latency(self) -> int:
        """Creation-to-ejection latency (includes source queueing)."""
        if self.ejection_cycle is None:
            raise ValueError("message has not been delivered yet")
        return self.ejection_cycle - self.creation_cycle

    @property
    def network_latency(self) -> int:
        """Injection-to-ejection latency (excludes source queueing)."""
        if self.ejection_cycle is None or self.injection_cycle is None:
            raise ValueError("message has not been delivered yet")
        return self.ejection_cycle - self.injection_cycle

    def __repr__(self) -> str:
        return (
            f"Message(id={self.message_id}, {self.source}->{self.destination}, "
            f"len={self.length}, created={self.creation_cycle})"
        )


@dataclass
class Flit:
    """A flow-control digit of a message.

    Only header flits carry routing state.  ``lookahead_node`` and
    ``lookahead_decision`` hold the look-ahead payload: the routing
    decision for the *next* router along the path, computed by the current
    router concurrently with its own arbitration (Fig. 4(b) in the paper).
    Non-look-ahead routers leave them ``None`` and perform a table lookup
    on arrival instead.
    """

    message: Message
    sequence: int
    flit_type: FlitType

    #: Node the carried look-ahead decision was computed for (the next
    #: router along the path).  ``None`` when no decision is carried.
    lookahead_node: Optional[int] = None
    #: The carried :class:`~repro.routing.base.RouteDecision` for
    #: ``lookahead_node``; typed loosely to avoid a package cycle.
    lookahead_decision: Optional[object] = None

    #: Per-dimension dateline-crossing mask (header flits on tori): bit
    #: ``d`` is set once the route has traversed dimension ``d``'s
    #: dateline (wraparound) link, switching the message's escape
    #: requests in that dimension from dateline class 0 to class 1.
    #: Always 0 on meshes (their links contribute no dateline bits).
    dateline_mask: int = 0

    #: Bookkeeping used by the simulator, not part of the architectural state.
    hops: int = 0
    #: Cycle this flit was written into the current router's input buffer.
    arrival_cycle: int = 0

    #: Role flags, precomputed from ``flit_type``: the router's busy path
    #: reads them once per flit per hop, where a property chained through
    #: the :class:`FlitType` enum is measurable overhead.
    is_head: bool = field(init=False, repr=False, compare=False)
    is_tail: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.is_head = self.flit_type.is_head
        self.is_tail = self.flit_type.is_tail

    @property
    def destination(self) -> int:
        """Destination node of the owning message."""
        return self.message.destination

    @property
    def source(self) -> int:
        """Source node of the owning message."""
        return self.message.source

    def __repr__(self) -> str:
        return (
            f"Flit(msg={self.message.message_id}, seq={self.sequence}, "
            f"type={self.flit_type.value})"
        )
