"""Injection processes and normalized-load calibration.

The paper injects messages with exponentially distributed inter-arrival
times and reports results against *normalized load*: the ratio of the
per-node injection rate to the rate at which node-uniform traffic
saturates the network bisection (Section 2.2).  The helpers here convert a
normalized load into the per-node message rate for a given topology and
message length.
"""

from __future__ import annotations

import random
import warnings
from abc import ABC, abstractmethod

from repro.network.topology import Topology
from repro.registry import register

__all__ = [
    "BernoulliInjection",
    "ExponentialInjection",
    "InjectionProcess",
    "saturation_flit_rate",
    "saturation_message_rate",
    "message_rate_for_load",
]


def saturation_flit_rate(topology: Topology) -> float:
    """Per-node flit injection rate (flits/cycle) saturating the bisection
    under node-uniform traffic -- the denominator of normalized load."""
    return topology.saturation_flit_rate()


def saturation_message_rate(topology: Topology, message_length: int) -> float:
    """Per-node message injection rate (messages/cycle) at normalized load 1.0."""
    if message_length < 1:
        raise ValueError("messages are at least one flit long")
    return saturation_flit_rate(topology) / message_length


def message_rate_for_load(
    topology: Topology, message_length: int, normalized_load: float
) -> float:
    """Per-node message rate corresponding to a normalized load."""
    if normalized_load < 0:
        raise ValueError("normalized load cannot be negative")
    return normalized_load * saturation_message_rate(topology, message_length)


class InjectionProcess(ABC):
    """Generates inter-arrival times (in cycles) between messages of one node."""

    #: Report name ("exponential" or "bernoulli").
    name: str = "injection"

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"injection rate cannot be negative, got {rate}")
        self._rate = rate

    @property
    def rate(self) -> float:
        """Mean messages per cycle."""
        return self._rate

    @abstractmethod
    def next_interval(self, rng: random.Random) -> float:
        """Cycles until the next message (may be fractional)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self._rate})"


class ExponentialInjection(InjectionProcess):
    """Poisson arrivals: exponentially distributed inter-arrival times.

    This is the paper's injection process (Table 2).
    """

    name = "exponential"

    def next_interval(self, rng: random.Random) -> float:
        if self._rate == 0:
            return float("inf")
        return rng.expovariate(self._rate)


class BernoulliInjection(InjectionProcess):
    """Slotted Bernoulli arrivals: geometric inter-arrival times in cycles."""

    name = "bernoulli"

    def __init__(self, rate: float) -> None:
        if rate > 1.0:
            raise ValueError("a Bernoulli process cannot exceed one message per cycle")
        super().__init__(rate)

    def next_interval(self, rng: random.Random) -> float:
        if self._rate == 0:
            return float("inf")
        interval = 1
        while rng.random() >= self._rate:
            interval += 1
        return float(interval)


# -- registry factories --------------------------------------------------------------
#
# The simulator builds injection processes through the "injection" registry;
# each factory receives the full configuration plus the calibrated per-node
# message rate, so plugins can honour any configuration field they like.

@register("injection", "exponential")
def _make_exponential(config, rate: float) -> ExponentialInjection:
    """Poisson arrivals (the paper's injection process)."""
    return ExponentialInjection(rate)


@register("injection", "bernoulli")
def _make_bernoulli(config, rate: float) -> BernoulliInjection:
    """Slotted Bernoulli arrivals, clamped (loudly) at one message/cycle."""
    if rate > 1.0:
        # A slotted Bernoulli process cannot offer more than one message
        # per node per cycle; silently clamping would distort the load
        # axis, so make the distortion loud and record the effective rate
        # in the result (see SimulationResult).
        warnings.warn(
            f"normalized load {config.normalized_load} asks for "
            f"{rate:.4f} messages/node/cycle, beyond the Bernoulli "
            "limit of one message per cycle; injecting at the clamped "
            "rate 1.0 (the result records the effective rate)",
            RuntimeWarning,
            stacklevel=4,
        )
    return BernoulliInjection(min(rate, 1.0))
