"""Per-node traffic sources and the network-wide traffic generator.

The :class:`TrafficGenerator` creates one :class:`TrafficSource` per node.
Each source draws destinations from the configured traffic pattern and
inter-arrival times from the configured injection process, and stops
producing once the network-wide message budget (warm-up plus measured
messages) has been generated -- mirroring the paper's methodology of
injecting 10,000 warm-up messages and measuring over the next 400,000.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.engine.rng import SimulationRNG
from repro.network.topology import Topology
from repro.traffic.injection import InjectionProcess
from repro.traffic.message import Message
from repro.traffic.patterns import TrafficPattern

__all__ = ["TrafficGenerator", "TrafficSource"]


class TrafficGenerator:
    """Factory and budget keeper for all per-node traffic sources.

    Parameters
    ----------
    topology:
        Network being loaded.
    pattern:
        Destination pattern shared by all sources.
    process:
        Injection process (its rate is the per-node message rate).
    message_length:
        Message length in flits.
    rng:
        Master random-number factory; each source receives its own streams.
    max_messages:
        Total messages to generate across all nodes (None = unlimited).
    """

    def __init__(
        self,
        topology: Topology,
        pattern: TrafficPattern,
        process: InjectionProcess,
        message_length: int,
        rng: SimulationRNG,
        max_messages: Optional[int] = None,
    ) -> None:
        if message_length < 1:
            raise ValueError("messages are at least one flit long")
        self._topology = topology
        self._pattern = pattern
        self._process = process
        self._message_length = message_length
        self._rng = rng
        self._max_messages = max_messages
        self._generated = 0

    @property
    def generated(self) -> int:
        """Messages generated so far across every source."""
        return self._generated

    @property
    def max_messages(self) -> Optional[int]:
        """The network-wide generation budget (None = unlimited)."""
        return self._max_messages

    @property
    def message_length(self) -> int:
        """Message length in flits."""
        return self._message_length

    @property
    def pattern(self) -> TrafficPattern:
        """The destination pattern shared by all sources."""
        return self._pattern

    @property
    def exhausted(self) -> bool:
        """True once the generation budget has been spent."""
        return self._max_messages is not None and self._generated >= self._max_messages

    def allow(self) -> bool:
        """Reserve one message from the budget; False when exhausted."""
        if self.exhausted:
            return False
        self._generated += 1
        return True

    def source_for(self, node: int) -> "TrafficSource":
        """Create the traffic source of one node."""
        return TrafficSource(
            node=node,
            generator=self,
            pattern=self._pattern,
            process=self._process,
            message_length=self._message_length,
            destination_rng=self._rng.stream(f"pattern-{node}"),
            arrival_rng=self._rng.stream(f"arrival-{node}"),
        )

    def sources(self) -> List["TrafficSource"]:
        """Create the sources for every node of the topology."""
        return [self.source_for(node) for node in range(self._topology.num_nodes)]


class TrafficSource:
    """Generates the message stream of a single node."""

    def __init__(
        self,
        node: int,
        generator: TrafficGenerator,
        pattern: TrafficPattern,
        process: InjectionProcess,
        message_length: int,
        destination_rng: random.Random,
        arrival_rng: random.Random,
    ) -> None:
        self._node = node
        self._generator = generator
        self._pattern = pattern
        self._process = process
        self._message_length = message_length
        self._destination_rng = destination_rng
        self._arrival_rng = arrival_rng
        self._next_arrival = process.next_interval(arrival_rng)

    @property
    def node(self) -> int:
        """Node this source injects at."""
        return self._node

    def next_due_cycle(self) -> Optional[int]:
        """The cycle at which the next message (or permutation fixed point)
        falls due, or ``None`` when this source will never produce again.

        An arrival at continuous time ``t`` is created by the
        :meth:`messages_due` call of cycle ``floor(t)`` (the first cycle
        with ``t < cycle + 1``).  Once the network-wide budget is
        exhausted no source creates messages any more, so an
        activity-aware kernel may stop polling it; the remaining
        inter-arrival draws it skips feed nothing observable (each node's
        arrival stream is private to that node).
        """
        if self._generator.exhausted:
            return None
        if math.isinf(self._next_arrival):
            return None
        return math.floor(self._next_arrival)

    def messages_due(self, cycle: int) -> List[Message]:
        """Messages whose arrival time falls within ``cycle``.

        Arrival times are continuous; a message arriving in
        ``[cycle, cycle + 1)`` is created at ``cycle``.  Permutation fixed
        points consume their arrival slot without creating a message.
        """
        due: List[Message] = []
        while self._next_arrival < cycle + 1:
            self._next_arrival += self._process.next_interval(self._arrival_rng)
            if self._generator.exhausted:
                continue
            destination = self._pattern.destination(self._node, self._destination_rng)
            if destination is None:
                continue
            if not self._generator.allow():
                continue
            due.append(
                Message(
                    source=self._node,
                    destination=destination,
                    length=self._message_length,
                    creation_cycle=cycle,
                )
            )
        return due

    def __repr__(self) -> str:
        return f"TrafficSource(node={self._node}, pattern={self._pattern.name})"
