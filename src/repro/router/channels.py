"""Input and output virtual-channel state.

An input virtual channel owns a flit FIFO and a small state machine:

* ``IDLE`` -- no message occupies the channel;
* ``ROUTING`` -- a header flit is traversing the routing stages of the
  pipeline (decode, table lookup, selection/arbitration eligibility);
* ``WAITING`` -- the header is ready but no suitable output virtual
  channel could be allocated yet;
* ``ACTIVE`` -- an output virtual channel has been allocated and flits of
  the message flow through the crossbar as credits permit.

An output virtual channel tracks its allocation (which input VC currently
owns it) and the credit counter for the downstream buffer it feeds.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, List, Optional, Tuple

from repro.traffic.message import Flit

__all__ = ["InputVirtualChannel", "OutputPort", "OutputVirtualChannel", "VCState"]


class VCState(Enum):
    """State machine of an input virtual channel."""

    IDLE = "idle"
    ROUTING = "routing"
    WAITING = "waiting"
    ACTIVE = "active"


class InputVirtualChannel:
    """One virtual channel of a router input port."""

    __slots__ = (
        "port",
        "vc",
        "buffer",
        "capacity",
        "state",
        "ready_cycle",
        "out_port",
        "out_vc",
        "out_channel",
    )

    def __init__(self, port: int, vc: int, capacity: int) -> None:
        self.port = port
        self.vc = vc
        self.buffer: Deque[Flit] = deque()
        self.capacity = capacity
        self.state = VCState.IDLE
        #: Cycle at which the buffered header becomes eligible for
        #: selection/arbitration (set when entering ROUTING).
        self.ready_cycle = 0
        #: Allocated output port / virtual channel (valid when ACTIVE).
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None
        #: The allocated :class:`OutputVirtualChannel` object itself,
        #: cached so the switch-allocation inner loop reads the credit
        #: counter without re-indexing through the output port each cycle.
        self.out_channel: Optional["OutputVirtualChannel"] = None

    @property
    def occupancy(self) -> int:
        """Number of buffered flits."""
        return len(self.buffer)

    @property
    def has_space(self) -> bool:
        """True when another flit can be buffered."""
        return len(self.buffer) < self.capacity

    def head_flit(self) -> Optional[Flit]:
        """The flit at the head of the FIFO, if any."""
        return self.buffer[0] if self.buffer else None

    def push(self, flit: Flit) -> None:
        """Append an arriving flit; credit flow control must prevent overflow."""
        if len(self.buffer) >= self.capacity:
            raise OverflowError(
                f"input VC ({self.port},{self.vc}) overflow: credit protocol violated"
            )
        self.buffer.append(flit)

    def pop(self) -> Flit:
        """Remove and return the head flit (on a switch-allocation grant)."""
        return self.buffer.popleft()

    def release(self) -> None:
        """Return to IDLE after the tail flit has left."""
        self.state = VCState.IDLE
        self.out_port = None
        self.out_vc = None
        self.out_channel = None

    def __repr__(self) -> str:
        return (
            f"InputVC(port={self.port}, vc={self.vc}, state={self.state.value}, "
            f"occupancy={len(self.buffer)}/{self.capacity})"
        )


class OutputVirtualChannel:
    """One virtual channel of a router output port."""

    __slots__ = ("port", "vc", "credits", "owner")

    def __init__(self, port: int, vc: int, credits: int) -> None:
        self.port = port
        self.vc = vc
        #: Free buffer slots at the downstream input virtual channel.
        self.credits = credits
        #: (input port, input vc) of the message currently holding this
        #: channel, or None when free.
        self.owner: Optional[Tuple[int, int]] = None

    @property
    def is_free(self) -> bool:
        """True when no message holds this virtual channel."""
        return self.owner is None

    def allocate(self, in_port: int, in_vc: int) -> None:
        """Reserve the channel for one message."""
        if self.owner is not None:
            raise ValueError(
                f"output VC ({self.port},{self.vc}) already owned by {self.owner}"
            )
        self.owner = (in_port, in_vc)

    def release(self) -> None:
        """Free the channel after the owning message's tail passed."""
        self.owner = None

    def __repr__(self) -> str:
        return (
            f"OutputVC(port={self.port}, vc={self.vc}, credits={self.credits}, "
            f"owner={self.owner})"
        )


class OutputPort:
    """A router output port: its virtual channels plus selection metadata."""

    __slots__ = ("port", "vcs", "usage_count", "last_used_cycle", "connected")

    def __init__(self, port: int, num_vcs: int, credits_per_vc: int) -> None:
        self.port = port
        self.vcs: List[OutputVirtualChannel] = [
            OutputVirtualChannel(port, vc, credits_per_vc) for vc in range(num_vcs)
        ]
        #: Cumulative flits forwarded through this port (LFU metric).
        self.usage_count = 0
        #: Cycle of the most recent forwarded flit (LRU metric), -1 if never.
        self.last_used_cycle = -1
        #: False for mesh-edge ports with no link attached.
        self.connected = False

    def free_vcs(self, among: Tuple[int, ...]) -> List[int]:
        """Indices of free virtual channels, restricted to ``among``."""
        return [vc for vc in among if self.vcs[vc].is_free]

    def empty_vcs(self, among: Tuple[int, ...], capacity: int) -> List[int]:
        """Free virtual channels whose downstream buffer is empty.

        Atomic allocation (wrapping topologies): a header may claim a
        virtual channel only when every downstream buffer slot is
        credited back, so a channel queue never holds flits of two
        messages.  Duato's wormhole deadlock-freedom argument assumes
        exactly this -- with FIFO chaining a header can be buried behind
        a foreign blocked message inside an escape buffer, re-coupling
        the escape subnetwork to adaptive-channel cycles.
        """
        return [
            vc
            for vc in among
            if self.vcs[vc].is_free and self.vcs[vc].credits == capacity
        ]

    def busy_vc_count(self) -> int:
        """Number of allocated virtual channels (MIN-MUX metric)."""
        return sum(1 for vc in self.vcs if not vc.is_free)

    def total_credits(self) -> int:
        """Total credits over all virtual channels (MAX-CREDIT metric)."""
        return sum(vc.credits for vc in self.vcs)

    def record_use(self, cycle: int) -> None:
        """Update the usage metadata when a flit is forwarded."""
        self.usage_count += 1
        self.last_used_cycle = cycle

    def __repr__(self) -> str:
        return (
            f"OutputPort(port={self.port}, vcs={len(self.vcs)}, "
            f"connected={self.connected}, used={self.usage_count})"
        )
