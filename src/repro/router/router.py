"""The pipelined wormhole router (PROUD / LA-PROUD).

One :class:`Router` models a single node's switch: input virtual-channel
buffers, the routing decision block (routing algorithm + table + path
selection), virtual-channel allocation, the crossbar with two-stage
round-robin switch allocation, credit-based flow control and the output
virtual-channel multiplexers.

Timing model
------------
* A header flit written into an input buffer at cycle ``t`` becomes
  eligible for selection/arbitration at ``t + pipeline.selection_offset``
  (3 cycles for the 5-stage PROUD pipe, 2 for the 4-stage LA-PROUD pipe).
* Body and tail flits use the bypass path and are eligible immediately.
* A flit granted the switch at cycle ``s`` reaches the next router's input
  buffer at ``s + pipeline.switch_delay + link_delay`` (crossbar traversal,
  VC multiplexing, then the link), or ``s + switch_delay`` for the local
  ejection port.

Under no contention a header therefore spends ``depth + link_delay``
cycles per hop -- 6 for PROUD and 5 for LA-PROUD with the paper's
unit-delay links -- which is exactly the contention-free router latency of
Table 2.

Switch-allocation schedules
---------------------------
The per-cycle busy path (virtual-channel allocation plus the two-stage
switch allocation) has two implementations over one semantics, selected
by :attr:`RouterConfig.switch_mode` (see :mod:`repro.router.switch`):

``"reference"``
    Visits every input virtual channel of every port each cycle and
    arbitrates through :meth:`RoundRobinArbiter.grant`.  Kept as the
    executable specification.

``"batched"``
    The default.  The router maintains two sorted membership arrays of
    flat ``port * vcs + vc`` indices -- channels in the ROUTING state and
    channels in the ACTIVE state -- updated incrementally at the three
    state-transition sites (header arrival, output-VC allocation, tail
    departure; the same events the kernel's quiescence hooks observe).
    Per-cycle work then touches only those arrays: the VC-allocation pass
    walks the ROUTING array, and switch allocation nominates and grants
    in one flat pass over the ACTIVE array using the arbiters'
    sorted-request fast path, with per-flit statistics accumulated per
    pass.  Iteration order over the sorted arrays equals the reference's
    port-major/VC-minor traversal, so arbitration outcomes, selector
    consultations and RNG draws are bit-identical; this is enforced by
    ``tests/test_router_equivalence.py`` and
    ``tests/test_router_properties.py``.

Link-transport schedules
------------------------
*How* in-flight flits and credits are carried between neighbours has its
own two-implementations-one-semantics split, selected by
:attr:`RouterConfig.link_mode` (see :mod:`repro.network.link`):
``"reference"`` keeps one deque of ``(cycle, vc, payload)`` tuples per
input port, drained tuple-at-a-time; ``"batched"`` (the default) stores
arrivals in cycle-indexed :class:`~repro.network.link.ArrivalWheel`
lanes.  Senders push through prebound receiver closures built at wiring
time (``_forward`` issues no per-flit ``receive_flit`` dispatch; flit
entries are ``(flat_channel, flit)`` pairs, credit entries flat channel
indices applied via ``_out_vcs_flat``), and the drain consumes the
current cycle's lane whole -- the wired-window contract makes lane
membership exact, so no arrival comparisons are needed.  Wakes carry
identical cycles and external pushes fall back to the wheels' ``far``
lists, so the two schedules are bit-identical;
``tests/test_link_equivalence.py`` enforces this across the full kernel
x switch x link cube.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.kernel import no_wake
from repro.network.link import ArrivalWheel
from repro.network.topology import LOCAL_PORT, Topology, port_direction
from repro.router.arbiter import RoundRobinArbiter
from repro.router.channels import (
    InputVirtualChannel,
    OutputPort,
    OutputVirtualChannel,
    VCState,
)
from repro.router.config import RouterConfig
from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.selection.base import OutputPortStatus, PathSelector
from repro.traffic.message import Flit

__all__ = ["Router"]


def _membership_remove(members: List[int], flat: int) -> None:
    """Remove ``flat`` from a sorted membership array if present."""
    index = bisect_left(members, flat)
    if index < len(members) and members[index] == flat:
        del members[index]


def _flit_receiver_for(target: object, target_port: int) -> Callable:
    """``target``'s prebound flit receiver for ``target_port``.

    Routers and network interfaces build their own lane-push closures
    (:meth:`Router.make_flit_receiver`); any other target -- test doubles,
    user components -- is wrapped through its plain ``receive_flit``.
    """
    maker = getattr(target, "make_flit_receiver", None)
    if maker is not None:
        return maker(target_port)
    receive = target.receive_flit

    def receiver(vc: int, flit: Flit, arrival_cycle: int) -> None:
        receive(target_port, vc, flit, arrival_cycle)

    return receiver


def _credit_receiver_for(target: object, target_port: int) -> Callable:
    """``target``'s prebound credit receiver for ``target_port``
    (see :func:`_flit_receiver_for`)."""
    maker = getattr(target, "make_credit_receiver", None)
    if maker is not None:
        return maker(target_port)
    receive = target.receive_credit

    def receiver(vc: int, arrival_cycle: int) -> None:
        receive(target_port, vc, arrival_cycle)

    return receiver


class Router:
    """A single pipelined wormhole router.

    Parameters
    ----------
    node_id:
        The node this router serves.
    topology:
        Network topology (used for neighbor lookup and port geometry).
    config:
        Microarchitectural parameters (VCs, buffers, pipeline, delays,
        switch-allocation schedule).
    routing:
        Routing algorithm providing per-destination port candidates and
        the virtual-channel class partition.
    selector:
        Path-selection heuristic instance owned by this router.
    """

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        config: RouterConfig,
        routing: RoutingAlgorithm,
        selector: PathSelector,
    ) -> None:
        routing.validate(config.vcs_per_port)
        self._node_id = node_id
        self._topology = topology
        self._config = config
        self._pipeline = config.pipeline
        self._routing = routing
        #: Bound memoized-decide entry point (one shared memo per network;
        #: see ``RoutingAlgorithm.decision_cache``).
        self._decide = routing.decide_cached
        self._selector = selector
        self._vc_classes = routing.vc_classes(config.vcs_per_port)

        radix = topology.radix
        self._radix = radix
        self._vcs = config.vcs_per_port
        self._inputs: List[List[InputVirtualChannel]] = [
            [
                InputVirtualChannel(port, vc, config.buffer_depth)
                for vc in range(config.vcs_per_port)
            ]
            for port in range(radix)
        ]
        #: The input channels as one flat array indexed by
        #: ``port * vcs_per_port + vc`` (the batched pass's address space).
        self._channels_flat: List[InputVirtualChannel] = [
            channel for per_port in self._inputs for channel in per_port
        ]
        self._outputs: List[OutputPort] = [
            OutputPort(port, config.vcs_per_port, config.buffer_depth)
            for port in range(radix)
        ]
        # Downstream / upstream wiring filled in by the network assembly.
        self._downstream: List[Optional[Tuple[object, int]]] = [None] * radix
        self._upstream: List[Optional[Tuple[object, int]]] = [None] * radix
        #: Which link-transport schedule carries in-flight flits/credits
        #: (see the module docstring and :mod:`repro.network.link`).
        self._batched_links = config.link_schedule().batched
        # Mailboxes carrying in-flight flits and credits: cycle-indexed
        # arrival wheels under the batched link schedule (flit entries
        # are ``(flat_channel, flit)`` pairs, credit entries flat
        # ``port * vcs + vc`` indices), per-port tuple deques under the
        # reference one.
        if self._batched_links:
            max_link_delay = config.max_link_delay
            wheel_size = 1 + max(
                max_link_delay + config.pipeline.switch_delay,
                config.pipeline.switch_delay,
                max_link_delay,
                config.credit_delay,
            )
            self._flit_wheel = ArrivalWheel(wheel_size)
            self._credit_wheel = ArrivalWheel(wheel_size)
            #: Output virtual channels as one flat array indexed by
            #: ``port * vcs + vc`` (the credit drain's address space).
            self._out_vcs_flat: List[OutputVirtualChannel] = [
                output.vcs[vc]
                for output in self._outputs
                for vc in range(config.vcs_per_port)
            ]
            # Skip the class-level dispatch: the kernel calls the batched
            # drain directly.
            self.deliver = self._deliver_batched_links
        else:
            self._flit_mailboxes: List[Deque[Tuple[int, int, Flit]]] = [
                deque() for _ in range(radix)
            ]
            self._credit_mailboxes: List[Deque[Tuple[int, int]]] = [
                deque() for _ in range(radix)
            ]
        #: Per-output-port flit receivers and per-input-port credit
        #: receivers of the wired neighbours (batched link schedule only;
        #: filled in by ``connect_output``/``set_upstream``).  These are
        #: the targets' prebound lane-push closures, so ``_forward``
        #: appends straight into the outgoing link's lane -- the lane is
        #: the send buffer, consumed in one pass by the downstream drain
        #: -- instead of dispatching ``receive_flit``/``receive_credit``
        #: per flit.
        self._flit_senders: List[Optional[Callable]] = [None] * radix
        self._credit_senders: List[Optional[Callable]] = [None] * radix
        #: Entries currently enqueued across all mailboxes of each kind;
        #: lets ``deliver`` and ``next_event_cycle`` skip the per-port
        #: scans entirely when nothing is in flight.
        self._pending_flits = 0
        self._pending_credits = 0
        # Crossbar arbiters: one per input port (among its VCs) and one per
        # output port (among the input ports).
        self._input_arbiters = [
            RoundRobinArbiter(config.vcs_per_port) for _ in range(radix)
        ]
        self._output_arbiters = [RoundRobinArbiter(radix) for _ in range(radix)]
        #: Wake callback installed by an activity-aware kernel.
        self._wake: Callable[[int], None] = no_wake
        # Kernel active-flag view (see set_active_hint): the default
        # always reads False, so un-registered routers wake on every event.
        self._kernel_active: Sequence[bool] = (False,)
        self._kernel_index = 0
        #: Input virtual channels not in the IDLE state (cheap quiescence
        #: check; kept exact by the three state-transition sites below).
        self._occupied_channels = 0
        #: Sorted flat indices of channels in the ROUTING state (awaiting
        #: an output virtual channel) and in the ACTIVE state (owning one).
        self._routing_members: List[int] = []
        self._active_members: List[int] = []
        #: Whether this cycle's switch stage released an output virtual
        #: channel.  VC allocation runs *before* switch allocation within
        #: ``evaluate``, so a header that failed allocation this cycle may
        #: be unblocked by a tail departing later in the same cycle -- an
        #: event no mailbox wake reports, because it is internal to this
        #: router.  ``next_event_cycle`` consults this flag.
        self._released_output_vc = False

        #: Which busy-path schedule to run (see module docstring).
        self._batched = config.switch_schedule().batched
        # Preallocated scratch of the batched pass (reused every cycle so
        # the hot loop allocates nothing).
        self._out_requests: List[List[InputVirtualChannel]] = [
            [] for _ in range(radix)
        ]
        self._touched_outputs: List[int] = []
        #: Round-robin priority pointers of the batched pass.  They mirror
        #: the :class:`RoundRobinArbiter` pointers bit for bit -- both
        #: start at slot 0 and advance to one past the winner on every
        #: grant -- but live in flat integer arrays so the hot loop reads
        #: them without a method call.  (The arbiter objects remain the
        #: reference schedule's -- and the tests' -- entry point.)
        self._input_priorities: List[int] = [0] * radix
        self._output_priorities: List[int] = [0] * radix

        # Hot-path constants hoisted out of the per-flit loops.
        self._selection_offset = self._pipeline.selection_offset
        self._lookahead = self._pipeline.lookahead
        self._local_delay = self._pipeline.switch_delay
        self._credit_delay = config.credit_delay
        #: Crossbar-to-arrival delay per output port: switch traversal
        #: for the local ejection port, switch plus the (per-dimension)
        #: link delay for network ports.
        switch_delay = self._pipeline.switch_delay
        self._port_delays: List[int] = [self._local_delay] * radix
        for port in range(1, radix):
            dimension = port_direction(port)[0]
            self._port_delays[port] = switch_delay + config.link_delay_for(dimension)
        #: Dateline-crossing mask contribution per output port (see
        #: ``Topology.dateline_bits``); all zeros on meshes, so the mesh
        #: forward path pays one indexed read per header.
        self._dateline_bits: List[int] = [
            0 if port == LOCAL_PORT else topology.dateline_bits(node_id, port)
            for port in range(radix)
        ]
        # Escape-channel pools per output port, indexed by the dateline
        # class the header's mask selects: ``(class0_pool, class1_pool)``.
        # Without a dateline split (meshes) both entries are the whole
        # escape pool, as is the local ejection port's (a message leaving
        # the network needs no dateline ordering).
        classes = self._vc_classes
        if classes.escape_classes is not None:
            escape_pools = classes.escape_classes
        else:
            escape_pools = (classes.escape_vcs, classes.escape_vcs)
        self._escape_pools: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
            (classes.escape_vcs, classes.escape_vcs)
            if port == LOCAL_PORT
            else escape_pools
            for port in range(radix)
        ]
        #: Dimension of each network port: the bit of the dateline mask
        #: that selects the escape class at that port.
        self._port_dimension: List[int] = [
            0 if port == LOCAL_PORT else port_direction(port)[0]
            for port in range(radix)
        ]
        #: Atomic virtual-channel allocation (wrapping topologies): the
        #: downstream buffer capacity a candidate VC must have fully
        #: credited back before a new header may claim it, 0 (disabled)
        #: on meshes.  One message per channel queue is an assumption of
        #: Duato's wormhole deadlock-freedom proof; with FIFO chaining a
        #: header can sit inside an escape buffer behind a foreign
        #: message that re-entered the adaptive network, letting a cycle
        #: of committed adaptive channels block the escape subnetwork
        #: (observed as tornado-on-torus deadlock).
        self._atomic_credits = config.buffer_depth if topology.wraps else 0
        #: Whether the selector actually listens to ``record_use``
        #: notifications (history-based heuristics); detected once so the
        #: per-flit forward path skips the no-op call for the others.
        self._selector_records = (
            getattr(type(selector), "record_use", None) is not PathSelector.record_use
        )

        #: Statistics: flits forwarded through the crossbar and headers routed.
        self.flits_forwarded = 0
        self.headers_routed = 0

    # -- identity and wiring --------------------------------------------------

    @property
    def node_id(self) -> int:
        """Node this router serves."""
        return self._node_id

    @property
    def config(self) -> RouterConfig:
        """Microarchitectural configuration."""
        return self._config

    @property
    def selector(self) -> PathSelector:
        """This router's path-selection heuristic instance."""
        return self._selector

    @property
    def routing(self) -> RoutingAlgorithm:
        """Routing algorithm used by the decision block."""
        return self._routing

    @property
    def switch_mode(self) -> str:
        """The busy-path schedule in use ("reference" or "batched")."""
        return self._config.switch_mode

    def connect_output(self, port: int, target: object, target_port: int) -> None:
        """Attach ``target`` (a router or network interface) downstream of
        ``port``.  ``target`` must expose ``receive_flit(port, vc, flit, cycle)``."""
        self._downstream[port] = (target, target_port)
        self._outputs[port].connected = True
        if self._batched_links:
            self._flit_senders[port] = _flit_receiver_for(target, target_port)

    def set_upstream(self, port: int, target: object, target_port: int) -> None:
        """Record who feeds input ``port`` so credits can be returned to it.
        ``target`` must expose ``receive_credit(port, vc, cycle)``."""
        self._upstream[port] = (target, target_port)
        if self._batched_links:
            self._credit_senders[port] = _credit_receiver_for(target, target_port)

    # -- prebound lane receivers (batched link schedule) -----------------------

    def make_flit_receiver(self, port: int) -> Callable[[int, Flit, int], None]:
        """A prebound fast path of :meth:`receive_flit` for one input port.

        Upstream flushes call the returned ``receiver(vc, flit, arrival)``
        instead of dispatching ``receive_flit`` per flit; it performs the
        identical side effects (lane push and wake).  Falls
        back to wrapping :meth:`receive_flit` under the reference link
        schedule, so mixed-schedule wiring stays correct.
        """
        if not self._batched_links:
            receive = self.receive_flit

            def receiver(vc: int, flit: Flit, arrival_cycle: int) -> None:
                receive(port, vc, flit, arrival_cycle)

            return receiver
        wheel = self._flit_wheel
        slots = wheel.slots
        size = wheel.size
        base = port * self._vcs

        def receiver(vc: int, flit: Flit, arrival_cycle: int) -> None:
            slots[arrival_cycle % size].append((base + vc, flit))
            if not self._kernel_active[self._kernel_index]:
                self._wake(arrival_cycle)

        return receiver

    def make_credit_receiver(self, port: int) -> Callable[[int, int], None]:
        """A prebound fast path of :meth:`receive_credit` for one output
        port's upstream direction; same contract as
        :meth:`make_flit_receiver`."""
        if not self._batched_links:
            receive = self.receive_credit

            def receiver(vc: int, arrival_cycle: int) -> None:
                receive(port, vc, arrival_cycle)

            return receiver
        wheel = self._credit_wheel
        slots = wheel.slots
        size = wheel.size
        base = port * self._vcs

        def receiver(vc: int, arrival_cycle: int) -> None:
            slots[arrival_cycle % size].append(base + vc)
            if not self._kernel_active[self._kernel_index]:
                self._wake(arrival_cycle)

        return receiver

    def input_channel(self, port: int, vc: int) -> InputVirtualChannel:
        """Direct access to an input virtual channel (tests, introspection)."""
        return self._inputs[port][vc]

    def output_port(self, port: int) -> OutputPort:
        """Direct access to an output port (tests, introspection)."""
        return self._outputs[port]

    # -- mailbox interface (called by neighbours and the network interface) ---

    def receive_flit(self, port: int, vc: int, flit: Flit, arrival_cycle: int) -> None:
        """Schedule a flit to appear in input ``(port, vc)`` at ``arrival_cycle``.

        Under the batched link schedule this public method makes no
        assumption about ``arrival_cycle`` and therefore routes through
        the wheel's ``far`` overflow list; the wired simulation path uses
        the prebound window receivers (:meth:`make_flit_receiver`)
        instead.
        """
        if self._batched_links:
            self._flit_wheel.far.append(
                (arrival_cycle, port * self._vcs + vc, flit)
            )
        else:
            self._flit_mailboxes[port].append((arrival_cycle, vc, flit))
            self._pending_flits += 1
        if not self._kernel_active[self._kernel_index]:
            self._wake(arrival_cycle)

    def receive_credit(self, port: int, vc: int, arrival_cycle: int) -> None:
        """Schedule a credit return for output ``(port, vc)`` at ``arrival_cycle``
        (same ``far`` routing as :meth:`receive_flit` when batched)."""
        if self._batched_links:
            self._credit_wheel.far.append((arrival_cycle, port * self._vcs + vc))
        else:
            self._credit_mailboxes[port].append((arrival_cycle, vc))
            self._pending_credits += 1
        if not self._kernel_active[self._kernel_index]:
            self._wake(arrival_cycle)

    def free_input_vcs(self, port: int) -> List[int]:
        """Input VCs of ``port`` that are idle and empty (used by injection)."""
        return [
            vc
            for vc, channel in enumerate(self._inputs[port])
            if channel.state is VCState.IDLE and not channel.buffer
        ]

    # -- per-cycle behaviour ---------------------------------------------------

    def deliver(self, cycle: int) -> None:
        """Absorb flits and credits whose link traversal completes this cycle."""
        # Batched instances bind ``self.deliver`` to the wheel drain at
        # construction, so the kernel never reaches this guard; it keeps
        # explicit class-level calls (``Router.deliver(r, c)``) correct.
        # To instrument the batched drain, patch the class *before*
        # constructing the simulator (see test_router_properties).
        if self._batched_links:
            self._deliver_batched_links(cycle)
            return
        if self._pending_flits:
            absorbed = 0
            inputs = self._inputs
            for port, mailbox in enumerate(self._flit_mailboxes):
                while mailbox and mailbox[0][0] <= cycle:
                    _, vc, flit = mailbox.popleft()
                    absorbed += 1
                    channel = inputs[port][vc]
                    flit.arrival_cycle = cycle
                    buffer = channel.buffer
                    if len(buffer) >= channel.capacity:  # inlined channel.push
                        raise OverflowError(
                            f"input VC ({channel.port},{channel.vc}) overflow: "
                            "credit protocol violated"
                        )
                    buffer.append(flit)
                    if (
                        flit.is_head
                        and channel.state is VCState.IDLE
                        and len(buffer) == 1
                    ):
                        channel.state = VCState.ROUTING
                        channel.ready_cycle = cycle + self._selection_offset
                        self._occupied_channels += 1
                        insort(self._routing_members, port * self._vcs + vc)
            self._pending_flits -= absorbed
        if self._pending_credits:
            absorbed = 0
            outputs = self._outputs
            for port, credits in enumerate(self._credit_mailboxes):
                if not credits:
                    continue
                port_vcs = outputs[port].vcs
                while credits and credits[0][0] <= cycle:
                    _, vc = credits.popleft()
                    absorbed += 1
                    port_vcs[vc].credits += 1
            self._pending_credits -= absorbed

    def _deliver_batched_links(self, cycle: int) -> None:
        """Wheel version of :meth:`deliver`: consume this cycle's lanes whole.

        The wired-window contract (see :mod:`repro.network.link`)
        guarantees the lane at ``cycle % size`` holds exactly the
        arrivals due this cycle, so the drain is one slice per wheel --
        no arrival-cycle comparisons, no per-port scans, no tuple
        popleft loop.  The per-flit state transitions are identical to
        the reference drain; absorption order across ports within one
        cycle is immaterial (distinct lanes feed distinct input channels
        and every per-flit effect is commutative across channels).  The
        ``far`` overflow (external pushes with arbitrary arrivals) is
        checked with one boolean and drained by explicit comparison.
        """
        wheel = self._flit_wheel
        lane = wheel.slots[cycle % wheel.size]
        if lane:
            channels = self._channels_flat
            selection_offset = self._selection_offset
            routing_members = self._routing_members
            idle = VCState.IDLE
            for flat, flit in lane:
                channel = channels[flat]
                flit.arrival_cycle = cycle
                buffer = channel.buffer
                if len(buffer) >= channel.capacity:  # inlined channel.push
                    raise OverflowError(
                        f"input VC ({channel.port},{channel.vc}) overflow: "
                        "credit protocol violated"
                    )
                buffer.append(flit)
                if (
                    flit.is_head
                    and channel.state is idle
                    and len(buffer) == 1
                ):
                    channel.state = VCState.ROUTING
                    channel.ready_cycle = cycle + selection_offset
                    self._occupied_channels += 1
                    insort(routing_members, flat)
            del lane[:]
        if wheel.far:
            self._drain_far_flits(cycle)
        wheel = self._credit_wheel
        lane = wheel.slots[cycle % wheel.size]
        if lane:
            out_vcs = self._out_vcs_flat
            for flat in lane:
                out_vcs[flat].credits += 1
            del lane[:]
        if wheel.far:
            self._drain_far_credits(cycle)

    def _absorb_flit(self, flat: int, flit: Flit, cycle: int) -> None:
        """Move one arrived flit into its input channel (cold far path;
        the wheel drain inlines this body)."""
        channel = self._channels_flat[flat]
        flit.arrival_cycle = cycle
        buffer = channel.buffer
        if len(buffer) >= channel.capacity:
            raise OverflowError(
                f"input VC ({channel.port},{channel.vc}) overflow: "
                "credit protocol violated"
            )
        buffer.append(flit)
        if flit.is_head and channel.state is VCState.IDLE and len(buffer) == 1:
            channel.state = VCState.ROUTING
            channel.ready_cycle = cycle + self._selection_offset
            self._occupied_channels += 1
            insort(self._routing_members, flat)

    def _drain_far_flits(self, cycle: int) -> None:
        """Absorb due ``far`` flit arrivals (external pushes), FIFO order.

        The lane key groups entries by input port, matching the
        reference's one-deque-per-port head-blocking.
        """
        vcs = self._vcs
        for _, flat, flit in self._flit_wheel.drain_far_due(
            cycle, lane_key=lambda entry: entry[1] // vcs
        ):
            self._absorb_flit(flat, flit, cycle)

    def _drain_far_credits(self, cycle: int) -> None:
        """Apply due ``far`` credit returns (external pushes)."""
        vcs = self._vcs
        out_vcs = self._out_vcs_flat
        for _, flat in self._credit_wheel.drain_far_due(
            cycle, lane_key=lambda entry: entry[1] // vcs
        ):
            out_vcs[flat].credits += 1

    def evaluate(self, cycle: int) -> None:
        """Run this cycle's virtual-channel allocation and switch allocation."""
        self._released_output_vc = False
        if self._batched:
            if self._routing_members:
                self._allocate_virtual_channels_batched(cycle)
            if self._active_members:
                self._allocate_switch_batched(cycle)
        else:
            self._allocate_virtual_channels(cycle)
            self._allocate_switch(cycle)

    # -- routing and virtual-channel allocation --------------------------------

    def _route_decision(self, flit: Flit) -> RouteDecision:
        """Use the carried look-ahead decision when valid, else do the lookup."""
        if (
            self._lookahead
            and flit.lookahead_node == self._node_id
            and flit.lookahead_decision is not None
        ):
            return flit.lookahead_decision  # type: ignore[return-value]
        return self._decide(self._node_id, flit.destination)

    def _usable_port(self, port: int) -> bool:
        """A port can be used if a link (or the local interface) is attached."""
        return self._outputs[port].connected

    def _port_status(self, port: int, free_vcs: List[int]) -> OutputPortStatus:
        output = self._outputs[port]
        dimension = -1 if port == LOCAL_PORT else port_direction(port)[0]
        return OutputPortStatus(
            port=port,
            dimension=dimension,
            usage_count=output.usage_count,
            last_used_cycle=output.last_used_cycle,
            total_credits=output.total_credits(),
            busy_vcs=output.busy_vc_count(),
            free_vcs=len(free_vcs),
        )

    def _allocate_virtual_channels(self, cycle: int) -> None:
        """Reference VC-allocation pass: visit every channel of every port."""
        for port in range(self._radix):
            for channel in self._inputs[port]:
                if channel.state is not VCState.ROUTING:
                    continue
                if channel.ready_cycle > cycle or not channel.buffer:
                    continue
                head = channel.buffer[0]
                if not head.is_head:
                    raise AssertionError(
                        f"non-header flit at the head of a ROUTING channel: {head!r}"
                    )
                self._try_allocate(channel, head, cycle)

    def _allocate_virtual_channels_batched(self, cycle: int) -> None:
        """Batched VC-allocation pass: visit only the ROUTING channels.

        The membership array is sorted by flat index, so the traversal
        order -- and therefore the first-come-first-served claiming of
        output virtual channels, selector consultations and RNG draws --
        matches the reference pass exactly.  A snapshot is taken because a
        successful allocation moves the channel to the ACTIVE array.
        """
        channels = self._channels_flat
        for flat in tuple(self._routing_members):
            channel = channels[flat]
            if channel.ready_cycle > cycle or not channel.buffer:
                continue
            head = channel.buffer[0]
            if not head.is_head:
                raise AssertionError(
                    f"non-header flit at the head of a ROUTING channel: {head!r}"
                )
            self._try_allocate(channel, head, cycle)

    def _try_allocate(
        self, channel: InputVirtualChannel, head: Flit, cycle: int
    ) -> bool:
        """Attempt to allocate an output virtual channel for a routed header."""
        decision = self._route_decision(head)

        # Adaptive candidates: ports permitted by the table that currently
        # have a free adaptive-class virtual channel.  On wrapping
        # topologies allocation is atomic: the candidate's downstream
        # buffer must be empty (see ``_atomic_credits``).
        atomic = self._atomic_credits
        adaptive_free: Dict[int, List[int]] = {}
        for port in decision.adaptive_ports:
            if not self._usable_port(port):
                continue
            output = self._outputs[port]
            if atomic:
                free = output.empty_vcs(self._vc_classes.adaptive_vcs, atomic)
            else:
                free = output.free_vcs(self._vc_classes.adaptive_vcs)
            if free:
                adaptive_free[port] = free

        selected_port: Optional[int] = None
        selected_vc: Optional[int] = None
        if adaptive_free:
            if len(adaptive_free) == 1:
                selected_port = next(iter(adaptive_free))
            else:
                statuses = [
                    self._port_status(port, free) for port, free in adaptive_free.items()
                ]
                selected_port = self._selector.select(statuses)
                if selected_port not in adaptive_free:
                    raise AssertionError(
                        f"path selector chose port {selected_port} outside the "
                        f"candidate set {sorted(adaptive_free)}"
                    )
            selected_vc = adaptive_free[selected_port][0]
        elif self._vc_classes.escape_vcs and self._usable_port(decision.escape_port):
            # Fall back to the escape channel (dimension-order
            # subfunction), drawing from the dateline class the header's
            # crossing mask selects for this port's dimension (the whole
            # escape pool on meshes and at the ejection port).
            escape_port = decision.escape_port
            pool = self._escape_pools[escape_port][
                (head.dateline_mask >> self._port_dimension[escape_port]) & 1
            ]
            output = self._outputs[escape_port]
            if atomic:
                free = output.empty_vcs(pool, atomic)
            else:
                free = output.free_vcs(pool)
            if free:
                selected_port = escape_port
                selected_vc = free[0]

        if selected_port is None or selected_vc is None:
            return False

        out_channel = self._outputs[selected_port].vcs[selected_vc]
        out_channel.allocate(channel.port, channel.vc)
        channel.out_port = selected_port
        channel.out_vc = selected_vc
        channel.out_channel = out_channel
        channel.state = VCState.ACTIVE
        flat = channel.port * self._vcs + channel.vc
        _membership_remove(self._routing_members, flat)
        insort(self._active_members, flat)
        self.headers_routed += 1
        return True

    # -- switch (crossbar) allocation -------------------------------------------

    def _allocate_switch(self, cycle: int) -> None:
        """Reference switch-allocation pass: visit every channel, arbitrate
        through the general round-robin entry point."""
        # Stage 1: each input port nominates one of its sendable VCs.
        nominations: Dict[int, InputVirtualChannel] = {}
        for port in range(self._radix):
            requests = []
            for vc, channel in enumerate(self._inputs[port]):
                if channel.state is not VCState.ACTIVE or not channel.buffer:
                    continue
                out_channel = self._outputs[channel.out_port].vcs[channel.out_vc]
                if out_channel.credits <= 0:
                    continue
                requests.append(vc)
            if not requests:
                continue
            winner = self._input_arbiters[port].grant(requests)
            if winner is not None:
                nominations[port] = self._inputs[port][winner]

        if not nominations:
            return

        # Stage 2: each output port grants one nominating input port.
        by_output: Dict[int, List[int]] = {}
        for port, channel in nominations.items():
            by_output.setdefault(channel.out_port, []).append(port)
        for out_port, requesting_inputs in by_output.items():
            winner = self._output_arbiters[out_port].grant(requesting_inputs)
            if winner is None:
                continue
            self._forward(nominations[winner], cycle)
            self.flits_forwarded += 1

    def _allocate_switch_batched(self, cycle: int) -> None:
        """Batched switch-allocation pass: one flat walk of the ACTIVE array.

        The array is sorted by flat ``port * vcs + vc`` index, so channels
        of one input port are contiguous and in ascending VC order -- the
        exact request order the reference pass hands its arbiters.  For a
        sorted request list the rotating-priority grant reduces to "first
        requester at or after the pointer, else the lowest requester"
        (:meth:`RoundRobinArbiter.grant_sorted`); both stages inline that
        reduction against the router's flat priority arrays, and grants
        forward in first-nomination order of the output ports, exactly as
        the reference's insertion-ordered dictionary does.
        """
        active = self._active_members
        channels = self._channels_flat
        vcs = self._vcs
        input_priorities = self._input_priorities
        out_requests = self._out_requests
        touched = self._touched_outputs

        # Stage 1: nominate one sendable VC per input port.  Channels of
        # one port are contiguous in the sorted array, so a single walk
        # tracks the round-robin winner of the current group and flushes
        # the nomination when the group (or the array) ends.
        group_base = -1          # flat index of the current port's VC 0
        priority = 0             # that port's round-robin pointer
        first_flat = -1          # lowest sendable flat of the group
        first_at_or_after = -1   # lowest sendable flat at/after the pointer
        for flat in active:
            base = flat - flat % vcs
            if base != group_base:
                if first_flat >= 0:
                    winner = (
                        first_at_or_after if first_at_or_after >= 0 else first_flat
                    )
                    vc = winner - group_base
                    input_priorities[group_base // vcs] = (vc + 1) % vcs
                    nominated = channels[winner]
                    per_output = out_requests[nominated.out_port]
                    if not per_output:
                        touched.append(nominated.out_port)
                    per_output.append(nominated)
                    first_flat = -1
                    first_at_or_after = -1
                group_base = base
                priority = base + input_priorities[base // vcs]
            channel = channels[flat]
            if channel.buffer and channel.out_channel.credits > 0:
                if first_flat < 0:
                    first_flat = flat
                    if flat >= priority:
                        first_at_or_after = flat
                elif first_at_or_after < 0 and flat >= priority:
                    first_at_or_after = flat
        if first_flat >= 0:
            winner = first_at_or_after if first_at_or_after >= 0 else first_flat
            vc = winner - group_base
            input_priorities[group_base // vcs] = (vc + 1) % vcs
            nominated = channels[winner]
            per_output = out_requests[nominated.out_port]
            if not per_output:
                touched.append(nominated.out_port)
            per_output.append(nominated)

        if not touched:
            return

        # Stage 2: grant one nominating input port per requested output.
        output_priorities = self._output_priorities
        radix = self._radix
        forwarded = 0
        for out_port in touched:
            per_output = out_requests[out_port]
            priority = output_priorities[out_port]
            winner_channel = None
            for nominated in per_output:
                if nominated.port >= priority:
                    winner_channel = nominated
                    break
            if winner_channel is None:
                winner_channel = per_output[0]
            output_priorities[out_port] = (winner_channel.port + 1) % radix
            del per_output[:]
            self._forward(winner_channel, cycle)
            forwarded += 1
        del touched[:]
        self.flits_forwarded += forwarded

    def _forward(self, channel: InputVirtualChannel, cycle: int) -> None:
        """Move the head flit of ``channel`` through the crossbar.

        The caller accounts the flit in ``flits_forwarded`` (per grant in
        the reference pass, per batch in the batched pass).
        """
        flit = channel.pop()
        out_port = channel.out_port
        out_channel = channel.out_channel
        output = self._outputs[out_port]
        out_channel.credits -= 1
        output.usage_count += 1
        output.last_used_cycle = cycle
        if self._selector_records:
            self._selector.record_use(out_port, cycle)

        # Return a credit for the input buffer slot just freed.
        if self._batched_links:
            sender = self._credit_senders[channel.port]
            if sender is not None:
                sender(channel.vc, cycle + self._credit_delay)
        else:
            upstream = self._upstream[channel.port]
            if upstream is not None:
                target, target_port = upstream
                target.receive_credit(
                    target_port, channel.vc, cycle + self._credit_delay
                )

        if flit.is_head:
            flit.hops += 1
            flit.message.hops = flit.hops
            bits = self._dateline_bits[out_port]
            if bits:
                # Crossing this dimension's dateline (wraparound) link:
                # escape requests downstream switch to dateline class 1.
                flit.dateline_mask |= bits
            if self._lookahead and out_port != LOCAL_PORT:
                # Look-ahead routing: compute the decision for the next
                # router now, concurrently with the crossbar traversal, and
                # carry it in the (partially rewritten) header flit.
                next_node = self._topology.neighbor(self._node_id, out_port)
                flit.lookahead_node = next_node
                flit.lookahead_decision = self._decide(next_node, flit.destination)

        downstream = self._downstream[out_port]
        if downstream is None:
            raise AssertionError(
                f"router {self._node_id} forwarded a flit to unconnected port {out_port}"
            )
        delay = self._port_delays[out_port]
        if self._batched_links:
            self._flit_senders[out_port](channel.out_vc, flit, cycle + delay)
        else:
            target, target_port = downstream
            target.receive_flit(target_port, channel.out_vc, flit, cycle + delay)

        if flit.is_tail:
            out_channel.release()
            self._released_output_vc = True
            channel.release()
            self._occupied_channels -= 1
            _membership_remove(
                self._active_members, channel.port * self._vcs + channel.vc
            )
            self._start_next_message(channel, cycle)

    def _start_next_message(self, channel: InputVirtualChannel, cycle: int) -> None:
        """After a tail departs, start routing the next buffered header, if any."""
        if not channel.buffer:
            return
        head = channel.buffer[0]
        if not head.is_head:
            raise AssertionError(
                f"expected a header after a tail on VC ({channel.port},{channel.vc}), "
                f"found {head!r}"
            )
        channel.state = VCState.ROUTING
        channel.ready_cycle = max(
            head.arrival_cycle + self._selection_offset, cycle + 1
        )
        self._occupied_channels += 1
        insort(self._routing_members, channel.port * self._vcs + channel.vc)

    # -- quiescence (activity-aware kernel) ---------------------------------------

    def set_wake(self, callback: Callable[[int], None]) -> None:
        """Install the kernel callback invoked when an event is scheduled
        for this router (a flit or credit posted to one of its mailboxes)."""
        self._wake = callback

    def set_active_hint(self, flags: Sequence[bool], index: int) -> None:
        """Install the kernel's live active-flag view of this router.

        Send paths read ``flags[index]`` before invoking the wake
        callback: when the router is already active the callback would
        return immediately, so one boolean read replaces a call per
        scheduled flit/credit arrival.  Without a kernel the default
        hint reads False, so every event still wakes.
        """
        self._kernel_active = flags
        self._kernel_index = index

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle (``>= cycle``) at which this router has work.

        The kernel calls this right after the router's ``evaluate``, with
        ``cycle`` being the *next* cycle.  Skipped cycles must be provable
        no-ops; the reasoning per input-channel state:

        * ``ACTIVE`` with buffered flits and downstream credits: sendable,
          run now.
        * ``ACTIVE`` but credit-blocked or waiting for flits: switch
          allocation skips it, and the blocking event (a credit or flit
          arrival) lands in a mailbox, which wakes the router.
        * ``ROUTING`` with a future ``ready_cycle``: the pipeline keeps
          the header ineligible until then; sleep until ``ready_cycle``.
        * ``ROUTING`` already past ``ready_cycle``: the allocation attempt
          *this* cycle failed.  Failed attempts are pure no-ops, and their
          inputs (output-VC ownership) change in exactly two ways: a tail
          forwarded by this router's own switch stage later in the same
          cycle (tracked by ``_released_output_vc``, which keeps the
          router awake for the retry), or a tail forwarded on a future
          cycle -- which requires a sendable channel then, and becoming
          sendable takes a mailbox event, which wakes the router.  So
          when no VC was released this cycle, the retry can wait for the
          next wake.

        Mailbox arrivals bound the sleep; ``None`` means fully idle until
        ``receive_flit``/``receive_credit`` wakes the router.

        The batched schedule computes the same value from the membership
        arrays instead of scanning every channel.
        """
        if self._batched:
            return self._next_event_cycle_batched(cycle)
        upcoming: Optional[int] = None
        if self._occupied_channels:
            idle, routing, active = VCState.IDLE, VCState.ROUTING, VCState.ACTIVE
            outputs = self._outputs
            for inputs in self._inputs:
                for channel in inputs:
                    state = channel.state
                    if state is idle:
                        if channel.buffer:  # defensive: cannot normally happen
                            return cycle
                        continue
                    if state is routing:
                        ready = channel.ready_cycle
                        if ready >= cycle:
                            if upcoming is None or ready < upcoming:
                                upcoming = ready
                        elif self._released_output_vc:
                            # The failed allocation may succeed next cycle:
                            # a tail departing through this router's own
                            # switch stage freed an output VC after the
                            # allocation stage ran.
                            return cycle
                        # else: just failed allocation with inputs that can
                        # only change on a wake event; sleep until then.
                    elif state is active:
                        if channel.buffer:
                            out = outputs[channel.out_port].vcs[channel.out_vc]
                            if out.credits > 0:
                                return cycle
                        # else: credit-blocked or mid-message bubble; the
                        # unblocking credit/flit arrival wakes the router.
                    else:  # pragma: no cover - WAITING is unused, be safe
                        return cycle
        return self._earliest_mailbox_arrival(cycle, upcoming)

    def _next_event_cycle_batched(self, cycle: int) -> Optional[int]:
        """Membership-array version of :meth:`next_event_cycle`.

        Returns the identical value: ``cycle`` as soon as any ACTIVE
        channel is sendable (or a past-ready ROUTING channel can retry a
        released output VC), else the minimum of the future ROUTING ready
        cycles and the earliest mailbox arrivals.
        """
        channels = self._channels_flat
        for flat in self._active_members:
            channel = channels[flat]
            if channel.buffer and channel.out_channel.credits > 0:
                return cycle
        upcoming: Optional[int] = None
        released = self._released_output_vc
        for flat in self._routing_members:
            ready = channels[flat].ready_cycle
            if ready >= cycle:
                if upcoming is None or ready < upcoming:
                    upcoming = ready
            elif released:
                return cycle
        return self._earliest_mailbox_arrival(cycle, upcoming)

    def _earliest_mailbox_arrival(
        self, cycle: int, upcoming: Optional[int]
    ) -> Optional[int]:
        """Fold the earliest pending flit/credit arrival into ``upcoming``.

        ``cycle`` anchors the wheels' lane-offset scan; the value equals
        the reference deques' minimum head, so both link schedules report
        identical cycles to the kernel's quiescence pass.
        """
        if self._batched_links:
            arrival = self._flit_wheel.earliest_pending(cycle)
            if arrival is not None and (upcoming is None or arrival < upcoming):
                upcoming = arrival
            arrival = self._credit_wheel.earliest_pending(cycle)
            if arrival is not None and (upcoming is None or arrival < upcoming):
                upcoming = arrival
            return upcoming
        if self._pending_flits:
            for mailbox in self._flit_mailboxes:
                if mailbox:
                    arrival = mailbox[0][0]
                    if upcoming is None or arrival < upcoming:
                        upcoming = arrival
        if self._pending_credits:
            for mailbox in self._credit_mailboxes:
                if mailbox:
                    arrival = mailbox[0][0]
                    if upcoming is None or arrival < upcoming:
                        upcoming = arrival
        return upcoming

    # -- introspection -----------------------------------------------------------

    def is_idle(self) -> bool:
        """True when no flit is buffered or in flight toward this router."""
        if self._batched_links:
            if self._flit_wheel:
                return False
        elif any(self._flit_mailboxes[port] for port in range(self._radix)):
            return False
        for port in range(self._radix):
            for channel in self._inputs[port]:
                if channel.buffer or channel.state is not VCState.IDLE:
                    return False
        return True

    def in_flight_credits(self) -> List[Tuple[int, int]]:
        """``(port, vc)`` of every credit currently in flight toward this
        router, whichever link schedule is active (introspection for the
        conservation tests and debugging)."""
        if self._batched_links:
            vcs = self._vcs
            pairs = [
                (flat // vcs, flat % vcs)
                for lane in self._credit_wheel.slots
                for flat in lane
            ]
            pairs.extend(
                (entry[1] // vcs, entry[1] % vcs) for entry in self._credit_wheel.far
            )
            return pairs
        return [
            (port, vc)
            for port, mailbox in enumerate(self._credit_mailboxes)
            for _, vc in mailbox
        ]

    def __repr__(self) -> str:
        return (
            f"Router(node={self._node_id}, pipeline={self._pipeline.name}, "
            f"vcs={self._config.vcs_per_port}, switch={self._config.switch_mode}, "
            f"link={self._config.link_mode})"
        )
