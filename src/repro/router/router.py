"""The pipelined wormhole router (PROUD / LA-PROUD).

One :class:`Router` models a single node's switch: input virtual-channel
buffers, the routing decision block (routing algorithm + table + path
selection), virtual-channel allocation, the crossbar with two-stage
round-robin switch allocation, credit-based flow control and the output
virtual-channel multiplexers.

Timing model
------------
* A header flit written into an input buffer at cycle ``t`` becomes
  eligible for selection/arbitration at ``t + pipeline.selection_offset``
  (3 cycles for the 5-stage PROUD pipe, 2 for the 4-stage LA-PROUD pipe).
* Body and tail flits use the bypass path and are eligible immediately.
* A flit granted the switch at cycle ``s`` reaches the next router's input
  buffer at ``s + pipeline.switch_delay + link_delay`` (crossbar traversal,
  VC multiplexing, then the link), or ``s + switch_delay`` for the local
  ejection port.

Under no contention a header therefore spends ``depth + link_delay``
cycles per hop -- 6 for PROUD and 5 for LA-PROUD with the paper's
unit-delay links -- which is exactly the contention-free router latency of
Table 2.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.engine.kernel import no_wake
from repro.network.topology import LOCAL_PORT, Topology, port_direction
from repro.router.arbiter import RoundRobinArbiter
from repro.router.channels import (
    InputVirtualChannel,
    OutputPort,
    OutputVirtualChannel,
    VCState,
)
from repro.router.config import RouterConfig
from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.selection.base import OutputPortStatus, PathSelector
from repro.traffic.message import Flit

__all__ = ["Router"]


class Router:
    """A single pipelined wormhole router.

    Parameters
    ----------
    node_id:
        The node this router serves.
    topology:
        Network topology (used for neighbor lookup and port geometry).
    config:
        Microarchitectural parameters (VCs, buffers, pipeline, delays).
    routing:
        Routing algorithm providing per-destination port candidates and
        the virtual-channel class partition.
    selector:
        Path-selection heuristic instance owned by this router.
    """

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        config: RouterConfig,
        routing: RoutingAlgorithm,
        selector: PathSelector,
    ) -> None:
        routing.validate(config.vcs_per_port)
        self._node_id = node_id
        self._topology = topology
        self._config = config
        self._pipeline = config.pipeline
        self._routing = routing
        self._selector = selector
        self._vc_classes = routing.vc_classes(config.vcs_per_port)

        radix = topology.radix
        self._radix = radix
        self._inputs: List[List[InputVirtualChannel]] = [
            [
                InputVirtualChannel(port, vc, config.buffer_depth)
                for vc in range(config.vcs_per_port)
            ]
            for port in range(radix)
        ]
        self._outputs: List[OutputPort] = [
            OutputPort(port, config.vcs_per_port, config.buffer_depth)
            for port in range(radix)
        ]
        # Downstream / upstream wiring filled in by the network assembly.
        self._downstream: List[Optional[Tuple[object, int]]] = [None] * radix
        self._upstream: List[Optional[Tuple[object, int]]] = [None] * radix
        # Mailboxes carrying in-flight flits and credits (per port).
        self._flit_mailboxes: List[Deque[Tuple[int, int, Flit]]] = [
            deque() for _ in range(radix)
        ]
        self._credit_mailboxes: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(radix)
        ]
        # Crossbar arbiters: one per input port (among its VCs) and one per
        # output port (among the input ports).
        self._input_arbiters = [
            RoundRobinArbiter(config.vcs_per_port) for _ in range(radix)
        ]
        self._output_arbiters = [RoundRobinArbiter(radix) for _ in range(radix)]
        #: Wake callback installed by an activity-aware kernel.
        self._wake: Callable[[int], None] = no_wake
        #: Input virtual channels not in the IDLE state (cheap quiescence
        #: check; kept exact by the three state-transition sites below).
        self._occupied_channels = 0
        #: Whether this cycle's switch stage released an output virtual
        #: channel.  VC allocation runs *before* switch allocation within
        #: ``evaluate``, so a header that failed allocation this cycle may
        #: be unblocked by a tail departing later in the same cycle -- an
        #: event no mailbox wake reports, because it is internal to this
        #: router.  ``next_event_cycle`` consults this flag.
        self._released_output_vc = False

        #: Statistics: flits forwarded through the crossbar and headers routed.
        self.flits_forwarded = 0
        self.headers_routed = 0

    # -- identity and wiring --------------------------------------------------

    @property
    def node_id(self) -> int:
        """Node this router serves."""
        return self._node_id

    @property
    def config(self) -> RouterConfig:
        """Microarchitectural configuration."""
        return self._config

    @property
    def selector(self) -> PathSelector:
        """This router's path-selection heuristic instance."""
        return self._selector

    @property
    def routing(self) -> RoutingAlgorithm:
        """Routing algorithm used by the decision block."""
        return self._routing

    def connect_output(self, port: int, target: object, target_port: int) -> None:
        """Attach ``target`` (a router or network interface) downstream of
        ``port``.  ``target`` must expose ``receive_flit(port, vc, flit, cycle)``."""
        self._downstream[port] = (target, target_port)
        self._outputs[port].connected = True

    def set_upstream(self, port: int, target: object, target_port: int) -> None:
        """Record who feeds input ``port`` so credits can be returned to it.
        ``target`` must expose ``receive_credit(port, vc, cycle)``."""
        self._upstream[port] = (target, target_port)

    def input_channel(self, port: int, vc: int) -> InputVirtualChannel:
        """Direct access to an input virtual channel (tests, introspection)."""
        return self._inputs[port][vc]

    def output_port(self, port: int) -> OutputPort:
        """Direct access to an output port (tests, introspection)."""
        return self._outputs[port]

    # -- mailbox interface (called by neighbours and the network interface) ---

    def receive_flit(self, port: int, vc: int, flit: Flit, arrival_cycle: int) -> None:
        """Schedule a flit to appear in input ``(port, vc)`` at ``arrival_cycle``."""
        self._flit_mailboxes[port].append((arrival_cycle, vc, flit))
        self._wake(arrival_cycle)

    def receive_credit(self, port: int, vc: int, arrival_cycle: int) -> None:
        """Schedule a credit return for output ``(port, vc)`` at ``arrival_cycle``."""
        self._credit_mailboxes[port].append((arrival_cycle, vc))
        self._wake(arrival_cycle)

    def free_input_vcs(self, port: int) -> List[int]:
        """Input VCs of ``port`` that are idle and empty (used by injection)."""
        return [
            vc
            for vc, channel in enumerate(self._inputs[port])
            if channel.state is VCState.IDLE and not channel.buffer
        ]

    # -- per-cycle behaviour ---------------------------------------------------

    def deliver(self, cycle: int) -> None:
        """Absorb flits and credits whose link traversal completes this cycle."""
        for port in range(self._radix):
            mailbox = self._flit_mailboxes[port]
            while mailbox and mailbox[0][0] <= cycle:
                _, vc, flit = mailbox.popleft()
                channel = self._inputs[port][vc]
                flit.arrival_cycle = cycle
                channel.push(flit)
                if (
                    flit.is_head
                    and channel.state is VCState.IDLE
                    and len(channel.buffer) == 1
                ):
                    channel.state = VCState.ROUTING
                    channel.ready_cycle = cycle + self._pipeline.selection_offset
                    self._occupied_channels += 1
            credits = self._credit_mailboxes[port]
            while credits and credits[0][0] <= cycle:
                _, vc = credits.popleft()
                self._outputs[port].vcs[vc].credits += 1

    def evaluate(self, cycle: int) -> None:
        """Run this cycle's virtual-channel allocation and switch allocation."""
        self._released_output_vc = False
        self._allocate_virtual_channels(cycle)
        self._allocate_switch(cycle)

    # -- routing and virtual-channel allocation --------------------------------

    def _route_decision(self, flit: Flit) -> RouteDecision:
        """Use the carried look-ahead decision when valid, else do the lookup."""
        if (
            self._pipeline.lookahead
            and flit.lookahead_node == self._node_id
            and flit.lookahead_decision is not None
        ):
            return flit.lookahead_decision  # type: ignore[return-value]
        return self._routing.decide(self._node_id, flit.destination)

    def _usable_port(self, port: int) -> bool:
        """A port can be used if a link (or the local interface) is attached."""
        return self._outputs[port].connected

    def _port_status(self, port: int, free_vcs: List[int]) -> OutputPortStatus:
        output = self._outputs[port]
        dimension = -1 if port == LOCAL_PORT else port_direction(port)[0]
        return OutputPortStatus(
            port=port,
            dimension=dimension,
            usage_count=output.usage_count,
            last_used_cycle=output.last_used_cycle,
            total_credits=output.total_credits(),
            busy_vcs=output.busy_vc_count(),
            free_vcs=len(free_vcs),
        )

    def _allocate_virtual_channels(self, cycle: int) -> None:
        for port in range(self._radix):
            for channel in self._inputs[port]:
                if channel.state is not VCState.ROUTING:
                    continue
                if channel.ready_cycle > cycle or not channel.buffer:
                    continue
                head = channel.buffer[0]
                if not head.is_head:
                    raise AssertionError(
                        f"non-header flit at the head of a ROUTING channel: {head!r}"
                    )
                self._try_allocate(channel, head, cycle)

    def _try_allocate(
        self, channel: InputVirtualChannel, head: Flit, cycle: int
    ) -> bool:
        """Attempt to allocate an output virtual channel for a routed header."""
        decision = self._route_decision(head)

        # Adaptive candidates: ports permitted by the table that currently
        # have a free adaptive-class virtual channel.
        adaptive_free: Dict[int, List[int]] = {}
        for port in decision.adaptive_ports:
            if not self._usable_port(port):
                continue
            free = self._outputs[port].free_vcs(self._vc_classes.adaptive_vcs)
            if free:
                adaptive_free[port] = free

        selected_port: Optional[int] = None
        selected_vc: Optional[int] = None
        if adaptive_free:
            if len(adaptive_free) == 1:
                selected_port = next(iter(adaptive_free))
            else:
                statuses = [
                    self._port_status(port, free) for port, free in adaptive_free.items()
                ]
                selected_port = self._selector.select(statuses)
                if selected_port not in adaptive_free:
                    raise AssertionError(
                        f"path selector chose port {selected_port} outside the "
                        f"candidate set {sorted(adaptive_free)}"
                    )
            selected_vc = adaptive_free[selected_port][0]
        elif self._vc_classes.escape_vcs and self._usable_port(decision.escape_port):
            # Fall back to the escape channel (dimension-order subfunction).
            free = self._outputs[decision.escape_port].free_vcs(
                self._vc_classes.escape_vcs
            )
            if free:
                selected_port = decision.escape_port
                selected_vc = free[0]

        if selected_port is None or selected_vc is None:
            return False

        self._outputs[selected_port].vcs[selected_vc].allocate(channel.port, channel.vc)
        channel.out_port = selected_port
        channel.out_vc = selected_vc
        channel.state = VCState.ACTIVE
        self.headers_routed += 1
        return True

    # -- switch (crossbar) allocation -------------------------------------------

    def _allocate_switch(self, cycle: int) -> None:
        # Stage 1: each input port nominates one of its sendable VCs.
        nominations: Dict[int, InputVirtualChannel] = {}
        for port in range(self._radix):
            requests = []
            for vc, channel in enumerate(self._inputs[port]):
                if channel.state is not VCState.ACTIVE or not channel.buffer:
                    continue
                out_channel = self._outputs[channel.out_port].vcs[channel.out_vc]
                if out_channel.credits <= 0:
                    continue
                requests.append(vc)
            if not requests:
                continue
            winner = self._input_arbiters[port].grant(requests)
            if winner is not None:
                nominations[port] = self._inputs[port][winner]

        if not nominations:
            return

        # Stage 2: each output port grants one nominating input port.
        by_output: Dict[int, List[int]] = {}
        for port, channel in nominations.items():
            by_output.setdefault(channel.out_port, []).append(port)
        for out_port, requesting_inputs in by_output.items():
            winner = self._output_arbiters[out_port].grant(requesting_inputs)
            if winner is None:
                continue
            self._forward(nominations[winner], cycle)

    def _forward(self, channel: InputVirtualChannel, cycle: int) -> None:
        """Move the head flit of ``channel`` through the crossbar."""
        flit = channel.pop()
        out_port = channel.out_port
        out_vc = channel.out_vc
        output = self._outputs[out_port]
        output.vcs[out_vc].credits -= 1
        output.record_use(cycle)
        self._selector.record_use(out_port, cycle)
        self.flits_forwarded += 1

        # Return a credit for the input buffer slot just freed.
        upstream = self._upstream[channel.port]
        if upstream is not None:
            target, target_port = upstream
            target.receive_credit(
                target_port, channel.vc, cycle + self._config.credit_delay
            )

        if flit.is_head:
            flit.hops += 1
            flit.message.hops = flit.hops
            if self._pipeline.lookahead and out_port != LOCAL_PORT:
                # Look-ahead routing: compute the decision for the next
                # router now, concurrently with the crossbar traversal, and
                # carry it in the (partially rewritten) header flit.
                next_node = self._topology.neighbor(self._node_id, out_port)
                flit.lookahead_node = next_node
                flit.lookahead_decision = self._routing.decide(
                    next_node, flit.destination
                )

        downstream = self._downstream[out_port]
        if downstream is None:
            raise AssertionError(
                f"router {self._node_id} forwarded a flit to unconnected port {out_port}"
            )
        target, target_port = downstream
        delay = self._pipeline.switch_delay
        if out_port != LOCAL_PORT:
            delay += self._config.link_delay
        target.receive_flit(target_port, out_vc, flit, cycle + delay)

        if flit.is_tail:
            output.vcs[out_vc].release()
            self._released_output_vc = True
            channel.release()
            self._occupied_channels -= 1
            self._start_next_message(channel, cycle)

    def _start_next_message(self, channel: InputVirtualChannel, cycle: int) -> None:
        """After a tail departs, start routing the next buffered header, if any."""
        if not channel.buffer:
            return
        head = channel.buffer[0]
        if not head.is_head:
            raise AssertionError(
                f"expected a header after a tail on VC ({channel.port},{channel.vc}), "
                f"found {head!r}"
            )
        channel.state = VCState.ROUTING
        channel.ready_cycle = max(
            head.arrival_cycle + self._pipeline.selection_offset, cycle + 1
        )
        self._occupied_channels += 1

    # -- quiescence (activity-aware kernel) ---------------------------------------

    def set_wake(self, callback: Callable[[int], None]) -> None:
        """Install the kernel callback invoked when an event is scheduled
        for this router (a flit or credit posted to one of its mailboxes)."""
        self._wake = callback

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle (``>= cycle``) at which this router has work.

        The kernel calls this right after the router's ``evaluate``, with
        ``cycle`` being the *next* cycle.  Skipped cycles must be provable
        no-ops; the reasoning per input-channel state:

        * ``ACTIVE`` with buffered flits and downstream credits: sendable,
          run now.
        * ``ACTIVE`` but credit-blocked or waiting for flits: switch
          allocation skips it, and the blocking event (a credit or flit
          arrival) lands in a mailbox, which wakes the router.
        * ``ROUTING`` with a future ``ready_cycle``: the pipeline keeps
          the header ineligible until then; sleep until ``ready_cycle``.
        * ``ROUTING`` already past ``ready_cycle``: the allocation attempt
          *this* cycle failed.  Failed attempts are pure no-ops, and their
          inputs (output-VC ownership) change in exactly two ways: a tail
          forwarded by this router's own switch stage later in the same
          cycle (tracked by ``_released_output_vc``, which keeps the
          router awake for the retry), or a tail forwarded on a future
          cycle -- which requires a sendable channel then, and becoming
          sendable takes a mailbox event, which wakes the router.  So
          when no VC was released this cycle, the retry can wait for the
          next wake.

        Mailbox arrivals bound the sleep; ``None`` means fully idle until
        ``receive_flit``/``receive_credit`` wakes the router.
        """
        upcoming: Optional[int] = None
        if self._occupied_channels:
            idle, routing, active = VCState.IDLE, VCState.ROUTING, VCState.ACTIVE
            outputs = self._outputs
            for inputs in self._inputs:
                for channel in inputs:
                    state = channel.state
                    if state is idle:
                        if channel.buffer:  # defensive: cannot normally happen
                            return cycle
                        continue
                    if state is routing:
                        ready = channel.ready_cycle
                        if ready >= cycle:
                            if upcoming is None or ready < upcoming:
                                upcoming = ready
                        elif self._released_output_vc:
                            # The failed allocation may succeed next cycle:
                            # a tail departing through this router's own
                            # switch stage freed an output VC after the
                            # allocation stage ran.
                            return cycle
                        # else: just failed allocation with inputs that can
                        # only change on a wake event; sleep until then.
                    elif state is active:
                        if channel.buffer:
                            out = outputs[channel.out_port].vcs[channel.out_vc]
                            if out.credits > 0:
                                return cycle
                        # else: credit-blocked or mid-message bubble; the
                        # unblocking credit/flit arrival wakes the router.
                    else:  # pragma: no cover - WAITING is unused, be safe
                        return cycle
        for mailboxes in (self._flit_mailboxes, self._credit_mailboxes):
            for mailbox in mailboxes:
                if mailbox:
                    arrival = mailbox[0][0]
                    if upcoming is None or arrival < upcoming:
                        upcoming = arrival
        return upcoming

    # -- introspection -----------------------------------------------------------

    def is_idle(self) -> bool:
        """True when no flit is buffered or in flight toward this router."""
        if any(self._flit_mailboxes[port] for port in range(self._radix)):
            return False
        for port in range(self._radix):
            for channel in self._inputs[port]:
                if channel.buffer or channel.state is not VCState.IDLE:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"Router(node={self._node_id}, pipeline={self._pipeline.name}, "
            f"vcs={self._config.vcs_per_port})"
        )
