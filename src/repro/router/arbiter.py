"""Round-robin arbiters for the crossbar's input and output stages.

A round-robin arbiter grants one of the competing requesters and then
gives that requester the lowest priority for the next arbitration, which
provides strong fairness (no requester can be starved while others are
repeatedly granted).
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

__all__ = ["RoundRobinArbiter"]

RequesterId = TypeVar("RequesterId", bound=int)


class RoundRobinArbiter:
    """A rotating-priority arbiter over a fixed set of requester slots.

    Parameters
    ----------
    num_requesters:
        Number of requester slots (e.g. the number of input ports competing
        for one output port).
    """

    __slots__ = ("_num_requesters", "_next_priority")

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError("an arbiter needs at least one requester slot")
        self._num_requesters = num_requesters
        self._next_priority = 0

    @property
    def num_requesters(self) -> int:
        """Number of requester slots."""
        return self._num_requesters

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        """Grant one requester from ``requests`` (slot indices), or None.

        The slot at the current priority pointer wins if it is requesting;
        otherwise the next requesting slot in cyclic order wins.  The
        pointer then moves one past the winner.
        """
        if not requests:
            return None
        requesting = set(requests)
        for offset in range(self._num_requesters):
            slot = (self._next_priority + offset) % self._num_requesters
            if slot in requesting:
                self._next_priority = (slot + 1) % self._num_requesters
                return slot
        return None

    def grant_sorted(self, requests: Sequence[int]) -> Optional[int]:
        """Grant one requester from an *ascending-sorted* request list.

        Equivalent to :meth:`grant` -- the cyclic scan from the priority
        pointer reduces, for a sorted list, to "first requester at or
        after the pointer, else the lowest requester" -- but without the
        per-call set construction and modulo walk.  This method is the
        *executable specification* of that reduction: the router's
        batched switch-allocation pass inlines the same logic against its
        flat priority arrays (``Router._allocate_switch_batched``), so a
        change here must be mirrored there and vice versa.
        ``tests/test_router_properties.py`` enforces grant_sorted == grant
        at this level, and the router equivalence suite pins the inlined
        copy end to end.
        """
        if not requests:
            return None
        priority = self._next_priority
        winner = requests[0]
        if winner < priority:
            for slot in requests:
                if slot >= priority:
                    winner = slot
                    break
        self._next_priority = (winner + 1) % self._num_requesters
        return winner

    def __repr__(self) -> str:
        return (
            f"RoundRobinArbiter(slots={self._num_requesters}, "
            f"next={self._next_priority})"
        )
