"""Switch-allocation schedules of the router busy path.

The router supports two implementations of its per-cycle busy path
(virtual-channel allocation plus two-stage switch allocation) over one
semantics, mirroring the exhaustive/activity split of the simulation
kernel:

``"reference"``
    The original per-channel object traversal: every input virtual
    channel of every port is visited every cycle and the round-robin
    arbiters are consulted through their general ``grant`` entry point.
    Simple, obviously correct, and kept as the executable specification.

``"batched"``
    The default.  Per-cycle work touches only a maintained set of
    *active* input virtual channels (membership is updated incrementally
    on flit arrival, allocation and tail departure -- the same
    state-transition sites the kernel's quiescence hooks observe),
    nominations and round-robin grants are computed in one flat pass over
    the sorted membership arrays, and per-flit statistics churn is
    accumulated per pass instead of per flit.

Both schedules must produce bit-identical :class:`~repro.core.results.
SimulationResult`\\ s; ``tests/test_router_equivalence.py`` enforces this
across a topology x routing x VC x load grid and
``tests/test_router_properties.py`` checks the router invariants (flit
conservation, credit conservation, arbiter fairness, in-order delivery)
under both.

The schedules are registered under the ``"switch"`` registry kind so
:class:`~repro.core.config.SimulationConfig.switch_mode` is validated
eagerly and the schedule's provenance is folded into result-cache keys
like every other pluggable component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry import SWITCH_MODES, register

__all__ = ["BATCHED", "REFERENCE", "SWITCH_MODE_NAMES", "SwitchSchedule", "switch_schedule_by_name"]


@dataclass(frozen=True)
class SwitchSchedule:
    """One named implementation of the router busy path.

    Parameters
    ----------
    name:
        Report name ("reference" or "batched").
    batched:
        Whether the router should run the flat batched allocation pass
        instead of the per-channel reference traversal.
    """

    name: str
    batched: bool


#: The per-channel object-traversal reference implementation.
REFERENCE = SwitchSchedule(name="reference", batched=False)

#: The flat active-set allocation pass (default).
BATCHED = SwitchSchedule(name="batched", batched=True)

register("switch", REFERENCE.name, obj=REFERENCE, provenance=f"{__name__}:REFERENCE")
register("switch", BATCHED.name, obj=BATCHED, provenance=f"{__name__}:BATCHED")

#: Built-in schedule names.
SWITCH_MODE_NAMES = (BATCHED.name, REFERENCE.name)


def switch_schedule_by_name(name: str) -> SwitchSchedule:
    """Look up a registered switch schedule by its report name."""
    schedule = SWITCH_MODES.get(name)
    if not isinstance(schedule, SwitchSchedule):
        raise ValueError(
            f"switch mode {name!r} is registered but is not a SwitchSchedule: "
            f"{schedule!r}"
        )
    return schedule
