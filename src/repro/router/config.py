"""Router configuration record.

Collects the microarchitectural parameters of Table 2 of the paper in one
validated dataclass shared by the router, the network assembly and the
top-level simulation configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.router.pipeline import PROUD, PipelineTiming

__all__ = ["RouterConfig"]


@dataclass(frozen=True)
class RouterConfig:
    """Microarchitectural parameters of every router in the network.

    Parameters
    ----------
    vcs_per_port:
        Virtual channels per physical channel (the paper uses 4).
    buffer_depth:
        Flit buffer depth of each input virtual channel.  The paper quotes
        a 20-flit input buffer per physical channel, i.e. 5 flits per
        virtual channel with 4 VCs, which is the default here.
    pipeline:
        PROUD (5-stage) or LA-PROUD (4-stage) timing, see
        :mod:`repro.router.pipeline`.
    link_delay:
        Cycles to traverse a link between two routers (1 in the paper).
    link_delays:
        Optional per-dimension link delays overriding ``link_delay`` for
        router-to-router links: entry ``d`` is the traversal time of
        every dimension-``d`` link (e.g. slow TSV Z-links on a stacked
        3-D torus).  ``None`` keeps the uniform ``link_delay``; the
        injection link between a network interface and its router always
        uses ``link_delay``.
    credit_delay:
        Cycles for a credit to travel back to the upstream router.
    switch_mode:
        Busy-path schedule: ``"batched"`` (default) runs VC and switch
        allocation as one flat pass over the maintained active-channel
        set; ``"reference"`` keeps the per-channel traversal as the
        executable specification.  Both are bit-identical; see
        :mod:`repro.router.switch`.
    link_mode:
        Link-transport schedule: ``"batched"`` (default) stores in-flight
        flits/credits in per-link arrival lanes drained by due-span
        slices, with sends flushed once per evaluation pass;
        ``"reference"`` keeps the per-flit mailbox tuple deques as the
        executable specification.  Both are bit-identical; see
        :mod:`repro.network.link`.
    """

    vcs_per_port: int = 4
    buffer_depth: int = 5
    pipeline: PipelineTiming = field(default_factory=lambda: PROUD)
    link_delay: int = 1
    link_delays: Optional[Tuple[int, ...]] = None
    credit_delay: int = 1
    switch_mode: str = "batched"
    link_mode: str = "batched"

    def __post_init__(self) -> None:
        if self.vcs_per_port < 1:
            raise ValueError("at least one virtual channel per port is required")
        if self.buffer_depth < 1:
            raise ValueError("virtual-channel buffers need at least one flit slot")
        if self.link_delay < 1:
            raise ValueError("links need at least one cycle of delay")
        if self.link_delays is not None and any(d < 1 for d in self.link_delays):
            raise ValueError(
                "every per-dimension link delay needs at least one cycle, "
                f"got link_delays={self.link_delays}"
            )
        if self.credit_delay < 1:
            raise ValueError("credit return needs at least one cycle of delay")
        # Resolve eagerly so a typo fails at configuration time, with the
        # registry's standard unknown-name message.
        self.switch_schedule()
        self.link_schedule()

    def link_delay_for(self, dimension: int) -> int:
        """Traversal time of a dimension-``dimension`` router link."""
        if self.link_delays is not None and dimension < len(self.link_delays):
            return self.link_delays[dimension]
        return self.link_delay

    @property
    def max_link_delay(self) -> int:
        """The slowest router-link delay (sizes the arrival wheels)."""
        if self.link_delays:
            return max(self.link_delay, *self.link_delays)
        return self.link_delay

    def switch_schedule(self):
        """The registered :class:`~repro.router.switch.SwitchSchedule`."""
        from repro.router.switch import switch_schedule_by_name

        return switch_schedule_by_name(self.switch_mode)

    def link_schedule(self):
        """The registered :class:`~repro.network.link.LinkSchedule`."""
        from repro.network.link import link_schedule_by_name

        return link_schedule_by_name(self.link_mode)

    def with_pipeline(self, pipeline: PipelineTiming) -> "RouterConfig":
        """A copy of this configuration with a different pipeline."""
        return replace(self, pipeline=pipeline)
