"""Wormhole router microarchitecture.

The paper's router model (PROUD, "Pipelined ROUter Design") is an
input-buffered wormhole router with virtual channels, credit-based flow
control, a crossbar with per-port arbitration and a table-driven routing
decision block.  This subpackage implements that microarchitecture at the
flit level:

* :mod:`repro.router.pipeline` -- the PROUD (5-stage) and LA-PROUD
  (4-stage) pipeline timing models.
* :mod:`repro.router.channels` -- input/output virtual-channel state
  (buffers, allocation, credits).
* :mod:`repro.router.arbiter` -- round-robin arbiters used for the
  crossbar's input and output stages.
* :mod:`repro.router.config` -- the router configuration record.
* :mod:`repro.router.switch` -- the switch-allocation schedules
  (batched default, per-channel reference).
* :mod:`repro.router.router` -- the router itself, tying routing tables,
  the routing algorithm, path selection and the switch together.
"""

from repro.router.arbiter import RoundRobinArbiter
from repro.router.channels import InputVirtualChannel, OutputPort, OutputVirtualChannel, VCState
from repro.router.config import RouterConfig
from repro.router.pipeline import LA_PROUD, PROUD, PipelineTiming, pipeline_by_name
from repro.router.router import Router
from repro.router.switch import SWITCH_MODE_NAMES, SwitchSchedule, switch_schedule_by_name

__all__ = [
    "InputVirtualChannel",
    "LA_PROUD",
    "OutputPort",
    "OutputVirtualChannel",
    "PROUD",
    "PipelineTiming",
    "RoundRobinArbiter",
    "Router",
    "RouterConfig",
    "SWITCH_MODE_NAMES",
    "SwitchSchedule",
    "VCState",
    "pipeline_by_name",
    "switch_schedule_by_name",
]
