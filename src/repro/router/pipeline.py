"""PROUD and LA-PROUD pipeline timing models (Figures 1 and 2 of the paper).

The PROUD pipeline has five stages on the header path::

    sync/demux/buffer/decode -> table lookup -> selection+arbitration
        -> crossbar routing/buffering -> VC mux/sync

LA-PROUD removes the serial dependence between table lookup and
selection/arbitration by performing the lookup *for the next router*
concurrently with this router's arbitration, giving a four-stage header
path.  Middle and tail flits bypass the lookup and arbitration stages in
both designs.

Only two derived quantities matter to the flit-level simulation:

* ``selection_offset`` -- cycles between a header flit being written into
  the input buffer and the cycle in which it may be granted
  selection/arbitration (the stages preceding the crossbar); and
* ``switch_delay`` -- cycles from the grant to the flit being driven onto
  the outgoing link (crossbar traversal plus VC multiplexing).

With a one-cycle link, a header therefore spends ``depth + link_delay``
cycles per hop when the network is idle: 6 cycles for PROUD, 5 for
LA-PROUD, matching Table 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry import PIPELINES, register

__all__ = ["LA_PROUD", "PROUD", "PipelineTiming", "pipeline_by_name"]


@dataclass(frozen=True)
class PipelineTiming:
    """Timing parameters of one pipelined router organisation.

    Parameters
    ----------
    name:
        Report name ("proud" or "la-proud").
    depth:
        Number of pipeline stages seen by a header flit under no
        contention (the paper's contention-free router latency in cycles).
    lookahead:
        Whether the router performs look-ahead routing, i.e. computes the
        routing decision for the *next* router and carries it in the
        header flit.
    """

    name: str
    depth: int
    lookahead: bool

    def __post_init__(self) -> None:
        if self.depth < 3:
            raise ValueError(
                "a pipelined router needs at least buffer, switch and output "
                f"stages; got depth={self.depth}"
            )

    @property
    def selection_offset(self) -> int:
        """Cycles from buffer write to selection/arbitration eligibility."""
        return self.depth - 2

    @property
    def switch_delay(self) -> int:
        """Cycles from the switch-allocation grant to the flit leaving the
        router (crossbar traversal plus VC multiplexing)."""
        return 2

    def hop_latency(self, link_delay: int) -> int:
        """Contention-free per-hop header latency including the link."""
        return self.depth + link_delay


#: The paper's five-stage pipeline without look-ahead.
PROUD = PipelineTiming(name="proud", depth=5, lookahead=False)

#: The paper's four-stage pipeline with look-ahead routing.
LA_PROUD = PipelineTiming(name="la-proud", depth=4, lookahead=True)

register("pipeline", PROUD.name, obj=PROUD,
         provenance=f"{__name__}:PROUD")
register("pipeline", LA_PROUD.name, obj=LA_PROUD,
         provenance=f"{__name__}:LA_PROUD")


def pipeline_by_name(name: str) -> PipelineTiming:
    """Look up a registered pipeline timing by its report name.

    User code can register additional :class:`PipelineTiming` instances
    via ``repro.registry.register("pipeline", name, obj=timing)``.
    """
    timing = PIPELINES.get(name)
    return timing
