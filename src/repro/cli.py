"""Command-line interface for the LAPSES reproduction.

Five subcommands cover the common workflows:

``study``
    Run a declarative study: a JSON spec file or the name of a built-in
    study (``figure5`` ... ``figure7``, ``sweep``, ``campaign``).  This
    is the primary entry point; ``--plugin MODULE`` imports user code
    that registers extra components (see :mod:`repro.registry`) before
    the spec is loaded, and ``--list`` shows everything registered.
``run``
    Simulate a single configuration and print its summary.
``sweep``
    Run a latency-versus-load sweep for one configuration.
``experiment``
    Regenerate one of the paper's tables/figures (figure5, table3,
    figure6, table4, table5, figure7) at a chosen scale.
``campaign``
    Run every paper experiment and print the Markdown report.
``lint``
    Run the house-style linter (:mod:`repro.analysis`): determinism,
    cache-key drift, wake-contract and registry/spec checks.

``run``/``sweep``/``experiment``/``campaign`` are thin wrappers that
build the equivalent study spec and execute it through the same path as
``study``.  Every simulation-backed subcommand accepts ``--workers N``
(simulate N points at a time on a process pool; default serial) and
``--cache-dir PATH`` (persist results as JSON keyed by the configuration
hash, so repeated points are served from disk).  Results are
bit-identical for any worker count because every simulation is seeded by
its configuration.

The console script ``lapses`` (installed with the package) and
``python -m repro.cli`` both dispatch to :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional, Sequence

from repro import registry
from repro.core.config import SimulationConfig
from repro.core.results import format_rows
from repro.exec.backend import ExecutionBackend, make_backend
from repro.registry import STUDIES, load_plugin
from repro.scenario import Study, StudyResult, load_study, run_study
from repro.scenario import builtin as builtin_studies
from repro.selection.heuristics import SELECTOR_NAMES

__all__ = ["build_parser", "main"]

#: Experiment names accepted by the ``experiment`` subcommand.
EXPERIMENTS = ("figure5", "table3", "figure6", "table4", "table5", "figure7")

_SCALES = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "paper": SimulationConfig.paper,
}


def _parse_dims(text: str) -> tuple:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid mesh size {text!r}; expected e.g. 8x8")
    if not dims:
        raise argparse.ArgumentTypeError("mesh size needs at least one dimension")
    return dims


def _parse_loads(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid load list {text!r}; expected e.g. 0.1,0.2")


def _parse_patterns(text: str) -> List[str]:
    patterns = [part.strip() for part in text.split(",") if part.strip()]
    if not patterns:
        raise argparse.ArgumentTypeError("expected at least one traffic pattern")
    return patterns


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count {text!r}")
    if workers < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return workers


def _add_exec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_parse_workers, default=1, metavar="N",
                        help="simulate N points in parallel on a process pool "
                             "(default: 1 = serial; results are identical either way)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persist results as JSON under PATH keyed by the "
                             "configuration hash; cached points are not re-simulated")


def _backend_from_args(args: argparse.Namespace) -> ExecutionBackend:
    try:
        return make_backend(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as error:
        raise SystemExit(f"lapses: cannot use cache directory {args.cache_dir!r}: {error}")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mesh", type=_parse_dims, default=(8, 8), metavar="KxK",
                        help="mesh size, e.g. 16x16 (default 8x8)")
    parser.add_argument("--traffic", default="uniform",
                        help="traffic pattern (uniform, transpose, bit-reversal, shuffle, ...)")
    parser.add_argument("--load", type=float, default=0.2,
                        help="normalized load (1.0 = bisection saturation)")
    parser.add_argument("--message-length", type=int, default=20,
                        help="message length in flits (paper default: 20)")
    parser.add_argument("--pipeline", choices=("proud", "la-proud"), default="la-proud",
                        help="router pipeline: 5-stage PROUD or 4-stage LA-PROUD")
    parser.add_argument("--routing", default="duato",
                        choices=("duato", "dimension-order", "north-last",
                                 "west-first", "negative-first"),
                        help="routing algorithm")
    parser.add_argument("--table", default="economical",
                        choices=("full", "economical", "meta-row", "meta-block", "interval"),
                        help="routing-table storage organisation")
    parser.add_argument("--selector", default="static-xy", choices=SELECTOR_NAMES,
                        help="path-selection heuristic")
    parser.add_argument("--vcs", type=int, default=4,
                        help="virtual channels per physical channel")
    parser.add_argument("--switch-mode", choices=("batched", "reference"),
                        default="batched", dest="switch_mode",
                        help="router busy-path schedule: flat batched pass "
                             "(default) or the per-channel reference")
    parser.add_argument("--link-mode", choices=("batched", "reference"),
                        default="batched", dest="link_mode",
                        help="link-transport schedule: per-link arrival lanes "
                             "(default) or the per-flit mailbox reference")
    parser.add_argument("--core-mode", choices=("objects", "flat"),
                        default="flat", dest="core_mode",
                        help="core schedule: flat struct-of-arrays core "
                             "(default) or the per-component object network")
    parser.add_argument("--messages", type=int, default=1200,
                        help="measured messages per data point")
    parser.add_argument("--warmup", type=int, default=150,
                        help="warm-up messages excluded from statistics")
    parser.add_argument("--seed", type=int, default=1, help="master random seed")
    parser.add_argument("--replications", type=int, default=1,
                        help="seed-offset replicate runs per point; >1 reports "
                             "means with 95%% confidence intervals")
    parser.add_argument("--seed-stride", type=int, default=1,
                        help="seed increment between consecutive replicates")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        mesh_dims=args.mesh,
        traffic=args.traffic,
        normalized_load=args.load,
        message_length=args.message_length,
        pipeline=args.pipeline,
        routing=args.routing,
        table=args.table,
        selector=args.selector,
        vcs_per_port=args.vcs,
        switch_mode=args.switch_mode,
        link_mode=args.link_mode,
        core_mode=args.core_mode,
        measure_messages=args.messages,
        warmup_messages=args.warmup,
        seed=args.seed,
        replications=args.replications,
        seed_stride=args.seed_stride,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="lapses",
        description="LAPSES adaptive-router reproduction (HPCA 1999)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    study_parser = subparsers.add_parser(
        "study", help="run a declarative study from a JSON spec or built-in name"
    )
    study_parser.add_argument(
        "spec", nargs="?", default=None,
        help="path to a JSON study spec, or a built-in study name "
             "(see --list)")
    study_parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help="import MODULE (dotted path or .py file) before loading the "
             "spec, so user-registered components are available; worker "
             "processes import it too (repeatable)")
    study_parser.add_argument(
        "--list", action="store_true", dest="list_studies",
        help="list the built-in studies and every registered component, "
             "then exit")
    study_parser.add_argument("--output", default=None, metavar="FILE",
                              help="also write the report to FILE")
    _add_exec_arguments(study_parser)

    run_parser = subparsers.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)
    _add_exec_arguments(run_parser)

    sweep_parser = subparsers.add_parser("sweep", help="latency-versus-load sweep")
    _add_config_arguments(sweep_parser)
    _add_exec_arguments(sweep_parser)
    sweep_parser.add_argument("--loads", type=_parse_loads, default=[0.1, 0.2, 0.3, 0.4],
                              metavar="L1,L2,...", help="normalized loads to sweep")

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument("name", choices=EXPERIMENTS,
                                   help="which table/figure to regenerate")
    experiment_parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                                   help="simulation scale (default: tiny)")
    experiment_parser.add_argument("--seed", type=int, default=1, help="master random seed")
    _add_exec_arguments(experiment_parser)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run every paper experiment and print the Markdown report"
    )
    campaign_parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                                 help="simulation scale (default: tiny)")
    campaign_parser.add_argument("--seed", type=int, default=1, help="master random seed")
    campaign_parser.add_argument("--loads", type=_parse_loads, default=[0.15, 0.4],
                                 metavar="L1,L2,...",
                                 help="(low, high) normalized loads for the latency experiments")
    campaign_parser.add_argument("--patterns", type=_parse_patterns,
                                 default=["uniform", "transpose"], metavar="P1,P2,...",
                                 help="traffic patterns for the simulation-backed experiments")
    campaign_parser.add_argument("--output", default=None, metavar="FILE",
                                 help="also write the Markdown report to FILE")
    _add_exec_arguments(campaign_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the house-style linter (determinism, cache-key, "
             "wake-contract and registry/spec checks)",
    )
    from repro.analysis.runner import add_lint_arguments

    add_lint_arguments(lint_parser)
    return parser


def _study_needs_backend(study: Study) -> bool:
    """Whether running ``study`` submits any simulations."""
    if study.kind == "grid":
        return True
    if study.kind == "suite":
        return any(_study_needs_backend(member) for member in study.members)
    return False


def _render_study(outcome: StudyResult, precision: int = 2) -> str:
    """The printable report of one study outcome."""
    if outcome.study.kind == "suite":
        return outcome.to_markdown()
    return format_rows(
        outcome.rows, columns=outcome.study.report.columns, precision=precision
    )


def _write_output(text: str, output: Optional[str]) -> None:
    if not output:
        return
    try:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as error:
        raise SystemExit(f"lapses: cannot write report to {output!r}: {error}")


def _print_backend_summary(label: str, backend: ExecutionBackend) -> None:
    summary = f"{label}: {backend.simulations_run} simulations run"
    if backend.cache is not None:
        summary += (
            f", {backend.cache.hits} served from cache ({backend.cache.cache_dir})"
        )
    print(summary, file=sys.stderr)


def _list_studies() -> int:
    print("Built-in studies (run with: study <name>):")
    for name in STUDIES.names():
        study = STUDIES.get(name)()
        print(f"  {name:<10} {study.title}")
    print()
    print("Registered components:")
    for kind, entries in registry.describe_registries().items():
        if kind == "study":
            continue
        names = ", ".join(entry["name"] for entry in entries)
        print(f"  {kind:<10} {names}")
    return 0


def _command_study(args: argparse.Namespace) -> int:
    # Plugins load first so --list shows their components and spec files
    # can name them.
    for plugin in args.plugin:
        try:
            load_plugin(plugin)
        except (ImportError, OSError) as error:
            raise SystemExit(f"lapses: cannot load plugin {plugin!r}: {error}")
    if args.list_studies:
        return _list_studies()
    if args.spec is None:
        raise SystemExit("lapses: study needs a spec file or built-in name (or --list)")
    try:
        study = load_study(args.spec)
    except ValueError as error:
        raise SystemExit(f"lapses: {error}")
    # Pre-load the spec's own plugins (run_study would too, but failing
    # here turns a traceback into a clean CLI error).
    for plugin in study.all_plugins():
        try:
            load_plugin(plugin)
        except (ImportError, OSError) as error:
            raise SystemExit(f"lapses: cannot load plugin {plugin!r}: {error}")
    if _study_needs_backend(study):
        plugins = study.all_plugins() + tuple(args.plugin)
        try:
            backend = make_backend(
                workers=args.workers, cache_dir=args.cache_dir, plugins=plugins
            )
        except OSError as error:
            raise SystemExit(
                f"lapses: cannot use cache directory {args.cache_dir!r}: {error}"
            )
        with backend:
            outcome = _run_study_or_exit(study, backend)
        text = _render_study(outcome)
        print(text)
        _write_output(text, args.output)
        _print_backend_summary(f"study {study.name}", backend)
    else:
        outcome = _run_study_or_exit(study, None)
        text = _render_study(outcome)
        print(text)
        _write_output(text, args.output)
    return 0


def _run_study_or_exit(study: Study, backend: Optional[ExecutionBackend]) -> StudyResult:
    """Run a study, converting spec-level failures into clean CLI errors.

    Expansion and execution raise ``ValueError`` for bad component names
    (the eager config validation) and unknown reporters/analytics, and
    ``TypeError`` for reporter/analytic options that do not match the
    registered callable's signature -- all user-spec mistakes, not bugs.
    """
    try:
        return run_study(study, backend=backend)
    except (ValueError, TypeError) as error:
        raise SystemExit(f"lapses: cannot run study {study.name!r}: {error}")


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    study = builtin_studies.single_run_study(config)
    with _backend_from_args(args) as backend:
        outcome = run_study(study, backend=backend)
    print(format_rows(outcome.rows, precision=2))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    study = builtin_studies.sweep_study(config, loads=args.loads)
    with _backend_from_args(args) as backend:
        outcome = run_study(study, backend=backend)
    print(format_rows(outcome.rows, precision=3))
    return 0


def _experiment_study(name: str, base: SimulationConfig) -> Study:
    if name == "figure5":
        return builtin_studies.lookahead_study(base)
    if name == "table3":
        return builtin_studies.message_length_study(base)
    if name == "figure6":
        return builtin_studies.path_selection_study(base)
    if name == "table4":
        return builtin_studies.table_storage_study(base, include_full_table=True)
    if name == "table5":
        return builtin_studies.cost_table_study(
            num_nodes=base.num_nodes, n_dims=len(base.mesh_dims)
        )
    if name == "figure7":
        return builtin_studies.es_programming_study()
    raise ValueError(f"unknown experiment {name!r}")  # pragma: no cover


def _command_experiment(args: argparse.Namespace) -> int:
    # FutureWarning, not DeprecationWarning: the default filter hides the
    # latter outside __main__, so the installed console script would never
    # show the migration notice.
    warnings.warn(
        "the 'experiment' subcommand is a wrapper over the study path; "
        f"prefer 'study {args.name}' (or a JSON spec file)",
        FutureWarning,
        stacklevel=2,
    )
    base = _SCALES[args.scale](seed=args.seed)
    study = _experiment_study(args.name, base)
    # table5 and figure7 are analytical: no simulations, so no backend (and
    # no cache directory is created for them).
    if _study_needs_backend(study):
        with _backend_from_args(args) as backend:
            outcome = run_study(study, backend=backend)
    else:
        outcome = run_study(study)
    print(format_rows(outcome.rows, precision=2))
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    # campaign_study interprets the list as (low, high): table3 samples only
    # the low load and figure6 only the high one, so more than two loads
    # would silently produce mismatched grids across experiments.
    if not 1 <= len(args.loads) <= 2:
        raise SystemExit(
            "lapses: campaign --loads expects one or two loads (low[,high]), "
            f"got {len(args.loads)}"
        )
    warnings.warn(
        "the 'campaign' subcommand is a wrapper over the study path; "
        "prefer 'study campaign' (or a JSON spec file)",
        FutureWarning,
        stacklevel=2,
    )
    base = _SCALES[args.scale](seed=args.seed)
    study = builtin_studies.campaign_study(
        base,
        loads_low_high=tuple(args.loads),
        traffic_patterns=tuple(args.patterns),
    )
    with _backend_from_args(args) as backend:
        outcome = run_study(study, backend=backend)
    text = outcome.to_markdown()
    # Print before writing: a bad --output path must not discard the report.
    print(text)
    _write_output(text, args.output)
    _print_backend_summary("campaign", backend)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "study":
        return _command_study(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "lint":
        from repro.analysis.runner import run_from_args

        return run_from_args(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
