"""Command-line interface for the LAPSES reproduction.

Three subcommands cover the common workflows:

``run``
    Simulate a single configuration and print its summary.
``sweep``
    Run a latency-versus-load sweep for one configuration.
``experiment``
    Regenerate one of the paper's tables/figures (figure5, table3,
    figure6, table4, table5, figure7) at a chosen scale.

The console script ``lapses`` (installed with the package) and
``python -m repro.cli`` both dispatch to :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.experiments import (
    run_cost_table,
    run_es_programming_example,
    run_lookahead_comparison,
    run_message_length_study,
    run_path_selection_study,
    run_table_storage_study,
)
from repro.core.results import format_rows
from repro.core.simulator import NetworkSimulator
from repro.core.sweep import run_load_sweep
from repro.selection.heuristics import SELECTOR_NAMES

__all__ = ["build_parser", "main"]

#: Experiment names accepted by the ``experiment`` subcommand.
EXPERIMENTS = ("figure5", "table3", "figure6", "table4", "table5", "figure7")

_SCALES = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "paper": SimulationConfig.paper,
}


def _parse_dims(text: str) -> tuple:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid mesh size {text!r}; expected e.g. 8x8")
    if not dims:
        raise argparse.ArgumentTypeError("mesh size needs at least one dimension")
    return dims


def _parse_loads(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid load list {text!r}; expected e.g. 0.1,0.2")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mesh", type=_parse_dims, default=(8, 8), metavar="KxK",
                        help="mesh size, e.g. 16x16 (default 8x8)")
    parser.add_argument("--traffic", default="uniform",
                        help="traffic pattern (uniform, transpose, bit-reversal, shuffle, ...)")
    parser.add_argument("--load", type=float, default=0.2,
                        help="normalized load (1.0 = bisection saturation)")
    parser.add_argument("--message-length", type=int, default=20,
                        help="message length in flits (paper default: 20)")
    parser.add_argument("--pipeline", choices=("proud", "la-proud"), default="la-proud",
                        help="router pipeline: 5-stage PROUD or 4-stage LA-PROUD")
    parser.add_argument("--routing", default="duato",
                        choices=("duato", "dimension-order", "north-last",
                                 "west-first", "negative-first"),
                        help="routing algorithm")
    parser.add_argument("--table", default="economical",
                        choices=("full", "economical", "meta-row", "meta-block", "interval"),
                        help="routing-table storage organisation")
    parser.add_argument("--selector", default="static-xy", choices=SELECTOR_NAMES,
                        help="path-selection heuristic")
    parser.add_argument("--vcs", type=int, default=4,
                        help="virtual channels per physical channel")
    parser.add_argument("--messages", type=int, default=1200,
                        help="measured messages per data point")
    parser.add_argument("--warmup", type=int, default=150,
                        help="warm-up messages excluded from statistics")
    parser.add_argument("--seed", type=int, default=1, help="master random seed")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        mesh_dims=args.mesh,
        traffic=args.traffic,
        normalized_load=args.load,
        message_length=args.message_length,
        pipeline=args.pipeline,
        routing=args.routing,
        table=args.table,
        selector=args.selector,
        vcs_per_port=args.vcs,
        measure_messages=args.messages,
        warmup_messages=args.warmup,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="lapses",
        description="LAPSES adaptive-router reproduction (HPCA 1999)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)

    sweep_parser = subparsers.add_parser("sweep", help="latency-versus-load sweep")
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--loads", type=_parse_loads, default=[0.1, 0.2, 0.3, 0.4],
                              metavar="L1,L2,...", help="normalized loads to sweep")

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument("name", choices=EXPERIMENTS,
                                   help="which table/figure to regenerate")
    experiment_parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                                   help="simulation scale (default: tiny)")
    experiment_parser.add_argument("--seed", type=int, default=1, help="master random seed")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = NetworkSimulator(config).run()
    print(format_rows([result.as_dict()], precision=2))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    points = run_load_sweep(config, args.loads)
    rows = [
        {
            "load": point.normalized_load,
            "latency": point.result.latency_label(),
            "network_latency": point.result.summary.avg_network_latency,
            "throughput": point.result.summary.throughput,
            "saturated": point.saturated,
        }
        for point in points
    ]
    print(format_rows(rows, precision=3))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    base = _SCALES[args.scale](seed=args.seed)
    name = args.name
    if name == "figure5":
        rows = run_lookahead_comparison(base)
    elif name == "table3":
        rows = run_message_length_study(base)
    elif name == "figure6":
        rows = run_path_selection_study(base)
    elif name == "table4":
        rows = run_table_storage_study(base, include_full_table=True)
    elif name == "table5":
        rows = run_cost_table(num_nodes=base.num_nodes, n_dims=len(base.mesh_dims))
    elif name == "figure7":
        rows = run_es_programming_example()
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown experiment {name!r}")
    print(format_rows(rows, precision=2))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
