"""Command-line interface for the LAPSES reproduction.

Four subcommands cover the common workflows:

``run``
    Simulate a single configuration and print its summary.
``sweep``
    Run a latency-versus-load sweep for one configuration.
``experiment``
    Regenerate one of the paper's tables/figures (figure5, table3,
    figure6, table4, table5, figure7) at a chosen scale.
``campaign``
    Run every paper experiment and print the Markdown report.

Every simulation-backed subcommand accepts ``--workers N`` (simulate N
points at a time on a process pool; default serial) and ``--cache-dir
PATH`` (persist results as JSON keyed by the configuration hash, so
repeated points are served from disk).  Results are bit-identical for any
worker count because every simulation is seeded by its configuration.

The console script ``lapses`` (installed with the package) and
``python -m repro.cli`` both dispatch to :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.campaign import run_campaign
from repro.core.config import SimulationConfig
from repro.core.experiments import (
    run_cost_table,
    run_es_programming_example,
    run_lookahead_comparison,
    run_message_length_study,
    run_path_selection_study,
    run_table_storage_study,
)
from repro.core.results import format_rows
from repro.core.sweep import run_load_sweep
from repro.exec.backend import ExecutionBackend, make_backend
from repro.selection.heuristics import SELECTOR_NAMES

__all__ = ["build_parser", "main"]

#: Experiment names accepted by the ``experiment`` subcommand.
EXPERIMENTS = ("figure5", "table3", "figure6", "table4", "table5", "figure7")

_SCALES = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "paper": SimulationConfig.paper,
}


def _parse_dims(text: str) -> tuple:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid mesh size {text!r}; expected e.g. 8x8")
    if not dims:
        raise argparse.ArgumentTypeError("mesh size needs at least one dimension")
    return dims


def _parse_loads(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid load list {text!r}; expected e.g. 0.1,0.2")


def _parse_patterns(text: str) -> List[str]:
    patterns = [part.strip() for part in text.split(",") if part.strip()]
    if not patterns:
        raise argparse.ArgumentTypeError("expected at least one traffic pattern")
    return patterns


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count {text!r}")
    if workers < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return workers


def _add_exec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_parse_workers, default=1, metavar="N",
                        help="simulate N points in parallel on a process pool "
                             "(default: 1 = serial; results are identical either way)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persist results as JSON under PATH keyed by the "
                             "configuration hash; cached points are not re-simulated")


def _backend_from_args(args: argparse.Namespace) -> ExecutionBackend:
    try:
        return make_backend(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as error:
        raise SystemExit(f"lapses: cannot use cache directory {args.cache_dir!r}: {error}")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mesh", type=_parse_dims, default=(8, 8), metavar="KxK",
                        help="mesh size, e.g. 16x16 (default 8x8)")
    parser.add_argument("--traffic", default="uniform",
                        help="traffic pattern (uniform, transpose, bit-reversal, shuffle, ...)")
    parser.add_argument("--load", type=float, default=0.2,
                        help="normalized load (1.0 = bisection saturation)")
    parser.add_argument("--message-length", type=int, default=20,
                        help="message length in flits (paper default: 20)")
    parser.add_argument("--pipeline", choices=("proud", "la-proud"), default="la-proud",
                        help="router pipeline: 5-stage PROUD or 4-stage LA-PROUD")
    parser.add_argument("--routing", default="duato",
                        choices=("duato", "dimension-order", "north-last",
                                 "west-first", "negative-first"),
                        help="routing algorithm")
    parser.add_argument("--table", default="economical",
                        choices=("full", "economical", "meta-row", "meta-block", "interval"),
                        help="routing-table storage organisation")
    parser.add_argument("--selector", default="static-xy", choices=SELECTOR_NAMES,
                        help="path-selection heuristic")
    parser.add_argument("--vcs", type=int, default=4,
                        help="virtual channels per physical channel")
    parser.add_argument("--messages", type=int, default=1200,
                        help="measured messages per data point")
    parser.add_argument("--warmup", type=int, default=150,
                        help="warm-up messages excluded from statistics")
    parser.add_argument("--seed", type=int, default=1, help="master random seed")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        mesh_dims=args.mesh,
        traffic=args.traffic,
        normalized_load=args.load,
        message_length=args.message_length,
        pipeline=args.pipeline,
        routing=args.routing,
        table=args.table,
        selector=args.selector,
        vcs_per_port=args.vcs,
        measure_messages=args.messages,
        warmup_messages=args.warmup,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="lapses",
        description="LAPSES adaptive-router reproduction (HPCA 1999)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)
    _add_exec_arguments(run_parser)

    sweep_parser = subparsers.add_parser("sweep", help="latency-versus-load sweep")
    _add_config_arguments(sweep_parser)
    _add_exec_arguments(sweep_parser)
    sweep_parser.add_argument("--loads", type=_parse_loads, default=[0.1, 0.2, 0.3, 0.4],
                              metavar="L1,L2,...", help="normalized loads to sweep")

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument("name", choices=EXPERIMENTS,
                                   help="which table/figure to regenerate")
    experiment_parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                                   help="simulation scale (default: tiny)")
    experiment_parser.add_argument("--seed", type=int, default=1, help="master random seed")
    _add_exec_arguments(experiment_parser)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run every paper experiment and print the Markdown report"
    )
    campaign_parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                                 help="simulation scale (default: tiny)")
    campaign_parser.add_argument("--seed", type=int, default=1, help="master random seed")
    campaign_parser.add_argument("--loads", type=_parse_loads, default=[0.15, 0.4],
                                 metavar="L1,L2,...",
                                 help="(low, high) normalized loads for the latency experiments")
    campaign_parser.add_argument("--patterns", type=_parse_patterns,
                                 default=["uniform", "transpose"], metavar="P1,P2,...",
                                 help="traffic patterns for the simulation-backed experiments")
    campaign_parser.add_argument("--output", default=None, metavar="FILE",
                                 help="also write the Markdown report to FILE")
    _add_exec_arguments(campaign_parser)
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    with _backend_from_args(args) as backend:
        result = backend.run_one(config)
    print(format_rows([result.as_dict()], precision=2))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    with _backend_from_args(args) as backend:
        points = run_load_sweep(config, args.loads, backend=backend)
    rows = [
        {
            "load": point.normalized_load,
            "latency": point.result.latency_label(),
            "network_latency": point.result.summary.avg_network_latency,
            "throughput": point.result.summary.throughput,
            "saturated": point.saturated,
        }
        for point in points
    ]
    print(format_rows(rows, precision=3))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    base = _SCALES[args.scale](seed=args.seed)
    name = args.name
    # table5 and figure7 are analytical: no simulations, so no backend (and
    # no cache directory is created for them).
    if name == "table5":
        rows = run_cost_table(num_nodes=base.num_nodes, n_dims=len(base.mesh_dims))
    elif name == "figure7":
        rows = run_es_programming_example()
    else:
        with _backend_from_args(args) as backend:
            if name == "figure5":
                rows = run_lookahead_comparison(base, backend=backend)
            elif name == "table3":
                rows = run_message_length_study(base, backend=backend)
            elif name == "figure6":
                rows = run_path_selection_study(base, backend=backend)
            elif name == "table4":
                rows = run_table_storage_study(
                    base, include_full_table=True, backend=backend
                )
            else:  # pragma: no cover - argparse restricts the choices
                raise ValueError(f"unknown experiment {name!r}")
    print(format_rows(rows, precision=2))
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    # run_campaign interprets the list as (low, high): table3 samples only
    # the low load and figure6 only the high one, so more than two loads
    # would silently produce mismatched grids across experiments.
    if not 1 <= len(args.loads) <= 2:
        raise SystemExit(
            "lapses: campaign --loads expects one or two loads (low[,high]), "
            f"got {len(args.loads)}"
        )
    base = _SCALES[args.scale](seed=args.seed)
    with _backend_from_args(args) as backend:
        report = run_campaign(
            base,
            loads_low_high=tuple(args.loads),
            traffic_patterns=tuple(args.patterns),
            backend=backend,
        )
        simulated = backend.simulations_run
        cache = backend.cache
    text = report.to_markdown()
    # Print before writing: a bad --output path must not discard the report.
    print(text)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as error:
            raise SystemExit(f"lapses: cannot write report to {args.output!r}: {error}")
    summary = f"campaign: {simulated} simulations run"
    if cache is not None:
        summary += f", {cache.hits} served from cache ({cache.cache_dir})"
    print(summary, file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "campaign":
        return _command_campaign(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
