"""Concrete path-selection heuristics.

Static policies
---------------
* :class:`StaticDimensionOrderSelector` (STATIC-XY) -- prefer the lowest
  dimension (X before Y), the policy of [Duato et al. 1997] used as the
  baseline in the paper.
* :class:`RandomSelector` -- uniform random choice (Chaos-router style).
* :class:`FirstFreeSelector` -- first candidate with a free virtual
  channel (Servernet-II style).

Traffic-sensitive policies
--------------------------
* :class:`MinMuxSelector` (MIN-MUX) -- fewest currently multiplexed
  virtual channels on the physical channel [Duato 1993].
* :class:`LeastFrequentlyUsedSelector` (LFU) -- lowest cumulative usage
  count (proposed by the paper).
* :class:`LeastRecentlyUsedSelector` (LRU) -- least recently used port
  (proposed by the paper).
* :class:`MaxCreditSelector` (MAX-CREDIT) -- most flow-control credits,
  i.e. most free buffer space downstream (proposed by the paper).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, Optional, Sequence

from repro.registry import SELECTORS, register
from repro.selection.base import OutputPortStatus, PathSelector

__all__ = [
    "FirstFreeSelector",
    "LeastFrequentlyUsedSelector",
    "LeastRecentlyUsedSelector",
    "MaxCreditSelector",
    "MinMuxSelector",
    "RandomSelector",
    "SELECTOR_NAMES",
    "StaticDimensionOrderSelector",
    "make_selector",
]


@register("selector")
class StaticDimensionOrderSelector(PathSelector):
    """STATIC-XY: always prefer the lowest dimension (X first)."""

    name = "static-xy"

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return min(candidates, key=self._static_order).port


@register("selector")
class RandomSelector(PathSelector):
    """Uniform random selection among the candidates."""

    name = "random"

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return self._rng.choice(list(candidates)).port


@register("selector")
class FirstFreeSelector(PathSelector):
    """First candidate offered (candidates are already known to be free)."""

    name = "first-free"

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return candidates[0].port


@register("selector")
class MinMuxSelector(PathSelector):
    """MIN-MUX: pick the physical channel with the fewest busy virtual channels."""

    name = "min-mux"

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return min(
            candidates, key=lambda s: (s.busy_vcs,) + self._static_order(s)
        ).port


@register("selector")
class LeastFrequentlyUsedSelector(PathSelector):
    """LFU: pick the port with the lowest cumulative usage count.

    The usage counters are maintained by the selector itself from the
    router's ``record_use`` notifications, mirroring the per-output-port
    hardware counters the paper describes.
    """

    name = "lfu"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        super().__init__(rng)
        self._usage: Dict[int, int] = defaultdict(int)

    def record_use(self, port: int, cycle: int) -> None:
        self._usage[port] += 1

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return min(
            candidates,
            key=lambda s: (self._usage[s.port],) + self._static_order(s),
        ).port


@register("selector")
class LeastRecentlyUsedSelector(PathSelector):
    """LRU: pick the port that was used farthest in the past."""

    name = "lru"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        super().__init__(rng)
        self._last_used: Dict[int, int] = defaultdict(lambda: -1)

    def record_use(self, port: int, cycle: int) -> None:
        self._last_used[port] = cycle

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return min(
            candidates,
            key=lambda s: (self._last_used[s.port],) + self._static_order(s),
        ).port


@register("selector")
class MaxCreditSelector(PathSelector):
    """MAX-CREDIT: pick the port with the most flow-control credits.

    A large credit count means plenty of free buffer space at the
    downstream router, which indicates low congestion on that path.
    """

    name = "max-credit"

    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        return min(
            candidates,
            key=lambda s: (-s.total_credits,) + self._static_order(s),
        ).port


#: Built-in selector names (plugins registered later do not appear here; use
#: :meth:`repro.registry.SELECTORS.names` for the live list).
SELECTOR_NAMES = tuple(sorted(SELECTORS.names()))


def make_selector(name: str, rng: Optional[random.Random] = None) -> PathSelector:
    """Instantiate a path selector by its report name.

    Looks ``name`` up in :data:`repro.registry.SELECTORS`, so
    user-registered heuristics are constructed exactly like the built-ins.
    Every router gets its own instance because the history-based
    heuristics carry per-router state.
    """
    factory = SELECTORS.get(name)
    return factory(rng)
