"""Path-selection heuristics (Section 4 of the paper).

When the routing algorithm offers several candidate output ports, the
router must pick exactly one.  The paper proposes three traffic-sensitive
heuristics (LRU, LFU, MAX-CREDIT) and compares them with the static
dimension-order preference (STATIC-XY) and the minimum-multiplexing-degree
heuristic of Duato (MIN-MUX).  RANDOM and FIRST-FREE are included as the
other static policies mentioned in Section 4.1.

Each router instantiates its own heuristic object (`PathSelector` state is
per-router, like the hardware counters would be) via
:func:`make_selector`.
"""

from repro.selection.base import OutputPortStatus, PathSelector
from repro.selection.heuristics import (
    FirstFreeSelector,
    LeastFrequentlyUsedSelector,
    LeastRecentlyUsedSelector,
    MaxCreditSelector,
    MinMuxSelector,
    RandomSelector,
    StaticDimensionOrderSelector,
    SELECTOR_NAMES,
    make_selector,
)

__all__ = [
    "FirstFreeSelector",
    "LeastFrequentlyUsedSelector",
    "LeastRecentlyUsedSelector",
    "MaxCreditSelector",
    "MinMuxSelector",
    "OutputPortStatus",
    "PathSelector",
    "RandomSelector",
    "SELECTOR_NAMES",
    "StaticDimensionOrderSelector",
    "make_selector",
]
