"""Path-selection interface.

A :class:`PathSelector` lives inside one router.  At virtual-channel
allocation time the router hands it the status of every candidate output
port (only ports that currently have a free, usable virtual channel are
offered) and the selector returns the port to use.  The router also
notifies the selector whenever a flit is actually forwarded through an
output port, which is how the usage-history heuristics (LRU, LFU) maintain
their counters.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["OutputPortStatus", "PathSelector"]


@dataclass(frozen=True)
class OutputPortStatus:
    """Snapshot of one candidate output port offered to the selector.

    Attributes
    ----------
    port:
        Output-port index.
    dimension:
        Dimension the port travels along (0 for X, 1 for Y, ...); the local
        port reports -1.
    usage_count:
        Number of flits ever forwarded through the port (the LFU counter).
    last_used_cycle:
        Cycle of the most recent flit forwarded through the port, -1 if the
        port has never been used (the LRU "age" information).
    total_credits:
        Sum of available credits over the port's virtual channels, i.e. the
        amount of free buffer space at the downstream router (MAX-CREDIT).
    busy_vcs:
        Number of the port's virtual channels currently allocated to a
        message -- the degree of virtual-channel multiplexing (MIN-MUX).
    free_vcs:
        Number of candidate virtual channels currently free on this port.
    """

    port: int
    dimension: int
    usage_count: int
    last_used_cycle: int
    total_credits: int
    busy_vcs: int
    free_vcs: int


class PathSelector(ABC):
    """Per-router path-selection heuristic."""

    #: Name used in experiment reports ("static-xy", "lru", ...).
    name: str = "selector"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(0)

    @abstractmethod
    def select(self, candidates: Sequence[OutputPortStatus]) -> int:
        """Pick one output port from the non-empty candidate list."""

    def record_use(self, port: int, cycle: int) -> None:
        """Called by the router when a flit is forwarded through ``port``.

        The default implementation ignores the notification; history-based
        heuristics override it.
        """

    @staticmethod
    def _static_order(status: OutputPortStatus) -> tuple:
        """Tie-break key: lowest dimension first, then lowest port index.

        All heuristics resolve ties the same way the STATIC-XY policy
        would, so two heuristics only differ when their actual metric
        differs.
        """
        return (status.dimension, status.port)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
